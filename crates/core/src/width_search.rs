//! The incremental `#`-hypertree width sweep.
//!
//! Every width-`k` probe of a query needs the same expensive preamble: the
//! exact core of `color(Q)` (NP-hard), its uncolored version `Q'`, the
//! frontier hypergraph and the combined cover. Before PR 5,
//! `sharp_hypertree_width` recomputed all of it for every `k`; a
//! [`WidthSearch`] computes it **once** (under the `plan.core` span) and
//! then drives a single [`GhwSearch`] across the whole `k = 1, 2, …`
//! sweep, so combo layers extend incrementally and blocks refuted at
//! width `k` carry their negative verdicts into `k+1` (see
//! `cqcount_decomp::tp` and DESIGN.md §Planner).
//!
//! [`sharp_hypertree_decomposition`](crate::sharp::sharp_hypertree_decomposition),
//! [`sharp_hypertree_width`](crate::sharp::sharp_hypertree_width),
//! [`count_via_sharp_decomposition`](crate::pipeline::count_via_sharp_decomposition)
//! and [`prepare_plan`](crate::planner::prepare_plan) are all thin wrappers
//! over this type; budgeted planning checks its budget between widths, so
//! the budget meters the whole sweep.

use crate::sharp::{atom_nodesets, sharp_cover, SharpDecomposition};
use cqcount_decomp::GhwSearch;
use cqcount_hypergraph::Hypergraph;
use cqcount_query::color::{color, uncolor};
use cqcount_query::core_of::core_exact;
use cqcount_query::ConjunctiveQuery;

/// One query's width sweep: core, cover and frontier computed once, the
/// decomposition engine shared across widths.
pub struct WidthSearch {
    colored_core: ConjunctiveQuery,
    qprime: ConjunctiveQuery,
    frontier: Hypergraph,
    search: GhwSearch,
}

impl WidthSearch {
    /// Runs the width-independent preamble: exact core of `color(q)`,
    /// uncoloring, frontier hypergraph and the combined cover.
    pub fn new(q: &ConjunctiveQuery) -> WidthSearch {
        let sp = cqcount_obs::trace::span("plan.core");
        let colored_core = core_exact(&color(q));
        let qprime = uncolor(&colored_core);
        let free = q.free_nodes();
        let (cover, frontier) = sharp_cover(&qprime, &free);
        let resources = atom_nodesets(&qprime);
        // Engine construction (primal graph, memo shards) stays inside the
        // span so `plan.*` sub-spans cover the whole decomposition stage.
        let search = GhwSearch::new(&cover, &resources);
        if sp.is_armed() {
            sp.add("core_atoms", qprime.atoms().len() as u64);
            sp.add("cover_edges", cover.edges().len() as u64);
            sp.add("frontier_edges", frontier.edges().len() as u64);
        }
        drop(sp);
        WidthSearch {
            colored_core,
            qprime,
            frontier,
            search,
        }
    }

    /// The core's uncolored sub-query `Q'`.
    pub fn qprime(&self) -> &ConjunctiveQuery {
        &self.qprime
    }

    /// Probes width exactly `k`, reusing everything learned at smaller
    /// widths this sweep.
    pub fn decomposition_at(&mut self, k: usize) -> Option<SharpDecomposition> {
        let hypertree = self.search.at_most(k)?;
        let sp = cqcount_obs::trace::span("plan.witness");
        let width = hypertree.width();
        if sp.is_armed() {
            sp.add("width", width as u64);
            sp.add("vertices", hypertree.len() as u64);
        }
        Some(SharpDecomposition {
            colored_core: self.colored_core.clone(),
            qprime: self.qprime.clone(),
            frontier: self.frontier.clone(),
            hypertree,
            width,
        })
    }

    /// Sweeps `k = 1..=max_k`; returns the first admitting width and its
    /// witness.
    pub fn find_up_to(&mut self, max_k: usize) -> Option<(usize, SharpDecomposition)> {
        (1..=max_k).find_map(|k| self.decomposition_at(k).map(|sd| (k, sd)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_query::parse_query;

    #[test]
    fn sweep_matches_single_width_probes() {
        let q = parse_query("ans(A, C) :- s1(A, B), s2(B, C), s3(C, D), s4(D, A).").unwrap();
        let mut ws = WidthSearch::new(&q);
        assert!(ws.decomposition_at(1).is_none());
        let sd = ws.decomposition_at(2).expect("Q1 has #-htw 2");
        assert_eq!(sd.width, 2);
        let fresh = crate::sharp::sharp_hypertree_decomposition(&q, 2).unwrap();
        assert_eq!(sd.hypertree.chi, fresh.hypertree.chi);
        assert_eq!(sd.hypertree.lambda, fresh.hypertree.lambda);
    }

    #[test]
    fn find_up_to_reports_the_admitting_width() {
        let q =
            parse_query("ans(X0, X1, X2) :- r(X0, Y1, Y2), s(Y0, Y1, Y2), w1(X1, Y1), w2(X2, Y2).")
                .unwrap();
        let mut ws = WidthSearch::new(&q);
        let (k, sd) = ws.find_up_to(5).expect("C.1 has #-htw 3");
        assert_eq!(k, 3);
        assert_eq!(sd.width, 3);
    }
}
