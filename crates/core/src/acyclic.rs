//! Counting over quantifier-free acyclic instances (the classical
//! subroutine, \[57\]/\[63\]): a Yannakakis-style dynamic program over a join
//! tree, multiplying child counts and summing per shared-column key.

use cqcount_arith::Natural;
use cqcount_hypergraph::{join_forest, Hypergraph};
use cqcount_relational::consistency::full_reduce;
use cqcount_relational::{Bindings, FxHashMap, Tuple};

/// Counts the number of tuples in the natural join of the given views —
/// i.e. the number of assignments over the union of their columns — in time
/// polynomial in the total view size, provided the views' column sets form
/// an α-acyclic hypergraph. Returns `None` if they do not.
///
/// All columns are treated as output columns; to count with projection, run
/// the Theorem 3.7 pipeline ([`crate::pipeline`]) or the `#`-relation
/// algorithm ([`crate::ps`]) instead.
pub fn count_acyclic_full(views: &[Bindings]) -> Option<Natural> {
    // Column hypergraph (views with no columns become isolated "unit"
    // factors — they contribute factor 1 if nonempty, 0 if empty).
    let mut h = Hypergraph::new();
    for v in views {
        h.add_edge(v.cols().iter().copied().collect());
    }
    if views.iter().any(|v| v.is_empty()) {
        return Some(Natural::ZERO);
    }
    let colful: Vec<&Bindings> = views.iter().filter(|v| !v.cols().is_empty()).collect();
    let forest = join_forest(&h)?;
    // `h` only has edges for col-ful views; align indices.
    debug_assert_eq!(forest.len(), colful.len());

    let mut reduced: Vec<Bindings> = colful.iter().map(|v| (*v).clone()).collect();
    full_reduce(&mut reduced, &forest.parent, &forest.order);
    if reduced.iter().any(Bindings::is_empty) {
        return Some(Natural::ZERO);
    }

    count_over_tree(&reduced, &forest.parent, &forest.children, &forest.order).into()
}

/// The DP core, reusable with an externally supplied tree (the pipeline
/// hands in decomposition trees directly). Requires globally consistent
/// views (run `full_reduce` first) whose column sets satisfy the join-tree
/// property along the given tree; counts the join size.
pub fn count_over_tree(
    views: &[Bindings],
    parent: &[Option<usize>],
    children: &[Vec<usize>],
    order: &[usize],
) -> Natural {
    if views.is_empty() {
        return Natural::ONE;
    }
    if views.iter().any(Bindings::is_empty) {
        return Natural::ZERO;
    }
    // For each vertex, after processing: a map from the projection of its
    // tuples onto the columns shared with the parent, to the summed count.
    let mut up_maps: Vec<FxHashMap<Tuple, Natural>> = vec![FxHashMap::default(); views.len()];
    let mut root_product = Natural::ONE;

    for &v in order {
        let shared_with_parent: Vec<u32> = match parent[v] {
            Some(p) => views[v]
                .cols()
                .iter()
                .copied()
                .filter(|c| views[p].cols().contains(c))
                .collect(),
            None => Vec::new(),
        };
        let key_positions: Vec<usize> = (0..views[v].cols().len())
            .filter(|&i| shared_with_parent.contains(&views[v].cols()[i]))
            .collect();

        // Child maps keyed on cols shared between v and each child.
        let child_info: Vec<(Vec<usize>, &FxHashMap<Tuple, Natural>)> = children[v]
            .iter()
            .map(|&c| {
                let shared: Vec<u32> = views[v]
                    .cols()
                    .iter()
                    .copied()
                    .filter(|col| views[c].cols().contains(col))
                    .collect();
                let pos: Vec<usize> = (0..views[v].cols().len())
                    .filter(|&i| shared.contains(&views[v].cols()[i]))
                    .collect();
                (pos, &up_maps[c])
            })
            .collect();

        let mut my_map: FxHashMap<Tuple, Natural> = FxHashMap::default();
        let mut my_total = Natural::ZERO;
        for row in views[v].rows() {
            let mut cnt = Natural::ONE;
            for (pos, cmap) in &child_info {
                let key: Tuple = pos.iter().map(|&p| row[p]).collect();
                match cmap.get(&key) {
                    Some(c) => cnt *= c,
                    None => {
                        cnt = Natural::ZERO;
                        break;
                    }
                }
            }
            if cnt.is_zero() {
                continue;
            }
            if parent[v].is_some() {
                let key: Tuple = key_positions.iter().map(|&p| row[p]).collect();
                *my_map.entry(key).or_insert(Natural::ZERO) += &cnt;
            } else {
                my_total += &cnt;
            }
        }
        if parent[v].is_none() {
            root_product *= my_total;
        }
        up_maps[v] = my_map;
    }
    root_product
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_relational::Value;

    fn b(cols: &[u32], rows: &[&[u32]]) -> Bindings {
        Bindings::from_rows(
            cols.to_vec(),
            rows.iter()
                .map(|r| r.iter().map(|&x| Value(x)).collect())
                .collect(),
        )
    }

    fn brute_join_count(views: &[Bindings]) -> Natural {
        let mut acc = Bindings::unit();
        for v in views {
            acc = acc.join(v);
        }
        Natural::from(acc.len())
    }

    #[test]
    fn path_join() {
        let views = vec![
            b(&[1, 2], &[&[1, 10], &[2, 20]]),
            b(&[2, 3], &[&[10, 100], &[10, 101], &[20, 200]]),
        ];
        assert_eq!(count_acyclic_full(&views), Some(3u64.into()));
        assert_eq!(
            count_acyclic_full(&views).unwrap(),
            brute_join_count(&views)
        );
    }

    #[test]
    fn star_join_multiplies() {
        // center {1}, three satellites each with 2 extensions: 1 * 2^3 = 8
        let views = vec![
            b(&[1], &[&[7]]),
            b(&[1, 2], &[&[7, 1], &[7, 2]]),
            b(&[1, 3], &[&[7, 1], &[7, 2]]),
            b(&[1, 4], &[&[7, 1], &[7, 2]]),
        ];
        assert_eq!(count_acyclic_full(&views), Some(8u64.into()));
    }

    #[test]
    fn dangling_tuples_do_not_count() {
        let views = vec![
            b(&[1, 2], &[&[1, 10], &[2, 20], &[3, 30]]),
            b(&[2, 3], &[&[10, 5]]),
        ];
        assert_eq!(count_acyclic_full(&views), Some(1u64.into()));
    }

    #[test]
    fn empty_view_gives_zero() {
        let views = vec![b(&[1], &[&[1]]), Bindings::empty(vec![1])];
        assert_eq!(count_acyclic_full(&views), Some(Natural::ZERO));
    }

    #[test]
    fn cyclic_views_rejected() {
        let views = vec![
            b(&[1, 2], &[&[0, 0]]),
            b(&[2, 3], &[&[0, 0]]),
            b(&[1, 3], &[&[0, 0]]),
        ];
        assert_eq!(count_acyclic_full(&views), None);
    }

    #[test]
    fn disconnected_components_multiply() {
        let views = vec![b(&[1], &[&[1], &[2]]), b(&[9], &[&[5], &[6], &[7]])];
        assert_eq!(count_acyclic_full(&views), Some(6u64.into()));
    }

    #[test]
    fn no_views_counts_one() {
        assert_eq!(count_acyclic_full(&[]), Some(Natural::ONE));
    }

    #[test]
    fn matches_brute_force_on_random_trees() {
        // A few deterministic pseudo-random acyclic schemas.
        let cases = vec![
            vec![
                b(&[1, 2], &[&[1, 1], &[1, 2], &[2, 1]]),
                b(&[2, 3], &[&[1, 1], &[2, 2], &[2, 3]]),
                b(&[2, 4], &[&[1, 9], &[2, 9], &[2, 8]]),
                b(&[4, 5], &[&[9, 0], &[8, 0], &[8, 1]]),
            ],
            vec![
                b(&[1, 2, 3], &[&[1, 1, 1], &[1, 2, 1], &[2, 2, 2]]),
                b(&[3, 4], &[&[1, 5], &[2, 5], &[2, 6]]),
            ],
        ];
        for views in cases {
            assert_eq!(
                count_acyclic_full(&views).unwrap(),
                brute_join_count(&views)
            );
        }
    }
}
