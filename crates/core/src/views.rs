//! The view framework of Section 3: view sets, legal databases and
//! counting from materialized views.
//!
//! A *view set* `V` for `Q` contains, for each query atom, a *query view*
//! over the same variables, plus arbitrary further views. A database for
//! the views is *legal* w.r.t. `Q` when (i) every query view is at most its
//! atom's relation and (ii) every view is at least the projection of the
//! answer set onto its variables — "all original constraints are there, and
//! views are not more restrictive than the query".
//!
//! Given a legal database and a `#`-decomposition w.r.t. `V`
//! (Definition 1.4), [`count_with_view_set`] counts the answers in
//! polynomial time (Theorem 3.7 / Corollary 3.8), *without touching the
//! base relations beyond the query views*.

use crate::acyclic::count_over_tree;
use crate::sharp::{sharp_decomposition_wrt_views, SharpDecomposition};
use cqcount_arith::Natural;
use cqcount_hypergraph::{Hypergraph, NodeSet};
use cqcount_query::canonical::atom_bindings;
use cqcount_query::hom::for_each_homomorphism_to_db;
use cqcount_query::{ConjunctiveQuery, Var};
use cqcount_relational::consistency::full_reduce;
use cqcount_relational::{Bindings, Database};

/// A view set for a query: named views over variable scopes. Query views
/// (one per atom, same scope) are created automatically by
/// [`ViewSet::for_query`].
#[derive(Clone, Debug)]
pub struct ViewSet {
    views: Vec<(String, Vec<Var>)>,
}

impl ViewSet {
    /// The minimal view set of `q`: one query view `w#i` per atom, over the
    /// atom's variables.
    pub fn for_query(q: &ConjunctiveQuery) -> ViewSet {
        let views = q
            .atoms()
            .iter()
            .enumerate()
            .map(|(i, a)| (format!("w#{i}"), a.vars()))
            .collect();
        ViewSet { views }
    }

    /// Adds a view over the given variables; returns its name.
    pub fn add_view(&mut self, name: &str, vars: Vec<Var>) {
        self.views.push((name.to_owned(), vars));
    }

    /// The views (name, scope).
    pub fn views(&self) -> &[(String, Vec<Var>)] {
        &self.views
    }

    /// The view hypergraph `H_V`.
    pub fn hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new();
        for (_, vars) in &self.views {
            h.add_edge(vars.iter().map(|v| v.node()).collect());
        }
        h
    }

    /// The *standard view extension* of `db` (Section 4): every query view
    /// `w#i` gets its atom's relation; every other view over scope `S` gets
    /// `π_S(⋈ of a greedy atom cover of S)` — sound and complete, hence
    /// legal.
    pub fn standard_extension(&self, q: &ConjunctiveQuery, db: &Database) -> Vec<Bindings> {
        let atom_views: Vec<Bindings> = q.atoms().iter().map(|a| atom_bindings(a, db)).collect();
        let atom_scopes: Vec<NodeSet> = q
            .atoms()
            .iter()
            .map(|a| a.vars().iter().map(|v| v.node()).collect())
            .collect();
        self.views
            .iter()
            .map(|(name, vars)| {
                if let Some(idx) = name
                    .strip_prefix("w#")
                    .and_then(|s| s.parse::<usize>().ok())
                {
                    if idx < atom_views.len() && q.atoms()[idx].vars() == *vars {
                        return atom_views[idx].clone();
                    }
                }
                // greedy cover of the scope by atoms
                let scope: NodeSet = vars.iter().map(|v| v.node()).collect();
                let mut need = scope.clone();
                let mut acc = Bindings::unit();
                while !need.is_empty() {
                    let best = (0..atom_scopes.len())
                        .max_by_key(|&i| atom_scopes[i].intersection(&need).len())
                        .expect("query has atoms");
                    if atom_scopes[best].intersection(&need).is_empty() {
                        break; // scope variable in no atom: view stays partial
                    }
                    acc = acc.join(&atom_views[best]);
                    need = need.difference(&atom_scopes[best]);
                }
                let cols: Vec<u32> = scope.to_vec();
                acc.project(&cols)
            })
            .collect()
    }

    /// Checks legality (Section 3) of view relations w.r.t. `q` on `db`:
    /// (i) each query view is contained in its atom's evaluation;
    /// (ii) each view contains `π_scope(Q^D)`.
    ///
    /// Condition (ii) is verified by enumerating the solutions — this is a
    /// *testing* facility (legality is semantic), not part of the counting
    /// path.
    pub fn is_legal(&self, q: &ConjunctiveQuery, db: &Database, relations: &[Bindings]) -> bool {
        assert_eq!(relations.len(), self.views.len());
        // (i) query views ⊆ atom evaluations
        for (i, (name, vars)) in self.views.iter().enumerate() {
            if let Some(idx) = name
                .strip_prefix("w#")
                .and_then(|s| s.parse::<usize>().ok())
            {
                if idx < q.atoms().len() && q.atoms()[idx].vars() == *vars {
                    let atom_rel = atom_bindings(&q.atoms()[idx], db);
                    for row in relations[i].rows() {
                        if !atom_rel.contains(row) {
                            return false;
                        }
                    }
                }
            }
        }
        // (ii) views ⊇ projections of the answer-extension set
        let mut ok = true;
        for_each_homomorphism_to_db(q, db, |h| {
            for ((_, vars), rel) in self.views.iter().zip(relations) {
                let row: Vec<_> = rel.cols().iter().map(|c| h[&Var(*c)]).collect();
                let _ = vars;
                if !rel.contains(&row) {
                    ok = false;
                    return false;
                }
            }
            true
        });
        ok
    }
}

/// Corollary 3.8 with explicit view relations: searches for a
/// `#`-decomposition of `q` w.r.t. the view set (over *some* core of
/// `color(q)`, Theorem 3.6) and counts from the given (legal) view
/// relations alone — semijoin reduction to global consistency along the
/// decomposition tree, projection onto the free variables, acyclic DP.
/// Returns `None` if `q` is not `#`-covered w.r.t. `V`.
pub fn count_with_view_set(
    q: &ConjunctiveQuery,
    views: &ViewSet,
    relations: &[Bindings],
) -> Option<(Natural, SharpDecomposition)> {
    assert_eq!(relations.len(), views.views().len());
    let sd = sharp_decomposition_wrt_views(q, &views.hypergraph())?;
    // λ of the tree projection indexes view hyperedges (in ViewSet order).
    let mut bag_views: Vec<Bindings> = sd
        .hypertree
        .chi
        .iter()
        .zip(&sd.hypertree.lambda)
        .map(|(bag, lam)| {
            let cols: Vec<u32> = bag.to_vec();
            let src = &relations[lam[0]];
            src.project(&cols)
        })
        .collect();
    // Enforce the *query views* too: semijoin every bag with each query
    // view it covers (the proof's pairwise-consistency enforcement uses all
    // views; along the acyclic tree the full reducer finishes the job).
    for (i, (name, _)) in views.views().iter().enumerate() {
        if !name.starts_with("w#") {
            continue;
        }
        for bag_view in bag_views.iter_mut() {
            let qcols: &[u32] = relations[i].cols();
            if qcols.iter().all(|c| bag_view.cols().contains(c)) {
                *bag_view = bag_view.semijoin(&relations[i]);
            }
        }
    }
    full_reduce(&mut bag_views, &sd.hypertree.parent, &sd.hypertree.order);
    if bag_views.iter().any(Bindings::is_empty) {
        return Some((Natural::ZERO, sd));
    }
    let free_cols: Vec<u32> = q.free().iter().map(|v| v.node()).collect();
    let projected: Vec<Bindings> = bag_views.iter().map(|v| v.project(&free_cols)).collect();
    let n = count_over_tree(
        &projected,
        &sd.hypertree.parent,
        &sd.hypertree.children,
        &sd.hypertree.order,
    );
    Some((n, sd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::count_brute_force;
    use cqcount_query::parse_program;

    fn setup(src: &str) -> (ConjunctiveQuery, Database) {
        let (q, db) = parse_program(src).unwrap();
        (q.unwrap(), db)
    }

    #[test]
    fn standard_extension_is_legal() {
        let (q, db) = setup(
            "r(a, x). r(b, y). s(x, 1). s(y, 2). s(y, 3).
             ans(X) :- r(X, Y), s(Y, Z).",
        );
        let mut vs = ViewSet::for_query(&q);
        let x = q.find_var("X").unwrap();
        let y = q.find_var("Y").unwrap();
        vs.add_view("xy", vec![x, y]);
        let rels = vs.standard_extension(&q, &db);
        assert!(vs.is_legal(&q, &db, &rels));
    }

    #[test]
    fn illegal_when_view_too_restrictive() {
        let (q, db) = setup(
            "r(a, x). r(b, y). s(x, 1). s(y, 2).
             ans(X) :- r(X, Y), s(Y, Z).",
        );
        let vs = ViewSet::for_query(&q);
        let mut rels = vs.standard_extension(&q, &db);
        // Drop a tuple from the first query view: misses solutions.
        let keep: Vec<Vec<cqcount_relational::Value>> =
            rels[0].rows().iter().skip(1).map(|t| t.to_vec()).collect();
        rels[0] = Bindings::from_rows(rels[0].cols().to_vec(), keep);
        assert!(!vs.is_legal(&q, &db, &rels));
    }

    #[test]
    fn counting_from_views_matches_brute_force() {
        // Q0 with the Example 3.5 view scopes.
        let (q, db) = setup(
            "mw(m1, w1, 10). mw(m2, w1, 20). mw(m1, w2, 30).
             wt(w1, t1). wt(w2, t2).
             wi(w1, i1). wi(w2, i2).
             pt(p1, t1). pt(p1, t2). pt(p2, t1).
             st(t1, u1). st(t2, u2).
             rr(u1, res1). rr(t1, res1). rr(u2, res2). rr(t2, res2).
             ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D),
                             st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).",
        );
        let var = |n: &str| q.find_var(n).unwrap();
        let mut vs = ViewSet::for_query(&q);
        vs.add_view("bcd", vec![var("B"), var("C"), var("D")]);
        vs.add_view("dfh", vec![var("D"), var("F"), var("H")]);
        let rels = vs.standard_extension(&q, &db);
        assert!(vs.is_legal(&q, &db, &rels));
        let (n, sd) = count_with_view_set(&q, &vs, &rels).expect("#-covered");
        assert_eq!(n, count_brute_force(&q, &db));
        assert!(sd.width >= 1);
    }

    #[test]
    fn not_covered_without_frontier_view() {
        // The star query's frontier is {X1, X2}; with only the query views
        // (all containing Y), no view covers the frontier edge... actually
        // the frontier {X1,X2} must fit in a single view: r(Y,X1), s(Y,X2)
        // scopes don't contain both X1 and X2.
        let (q, _) = setup("ans(X1, X2) :- r(Y, X1), s(Y, X2).");
        let vs = ViewSet::for_query(&q);
        let rels: Vec<Bindings> = vs
            .views()
            .iter()
            .map(|(_, vars)| Bindings::empty(vars.iter().map(|v| v.node()).collect()))
            .collect();
        assert!(count_with_view_set(&q, &vs, &rels).is_none());
    }

    #[test]
    fn covered_after_adding_frontier_view() {
        let (q, db) = setup(
            "r(y1, a). r(y1, b). r(y2, c). s(y1, u). s(y2, v).
             ans(X1, X2) :- r(Y, X1), s(Y, X2).",
        );
        let mut vs = ViewSet::for_query(&q);
        let x1 = q.find_var("X1").unwrap();
        let x2 = q.find_var("X2").unwrap();
        let y = q.find_var("Y").unwrap();
        vs.add_view("big", vec![y, x1, x2]);
        let rels = vs.standard_extension(&q, &db);
        let (n, _) = count_with_view_set(&q, &vs, &rels).expect("#-covered now");
        assert_eq!(n, count_brute_force(&q, &db));
    }

    #[test]
    fn zero_count_flows_through() {
        let (q, db) = setup("r(a, b). ans(X) :- r(X, Y), s(Y, Z).");
        let mut vs = ViewSet::for_query(&q);
        let x = q.find_var("X").unwrap();
        let y = q.find_var("Y").unwrap();
        let z = q.find_var("Z").unwrap();
        vs.add_view("all", vec![x, y, z]);
        let rels = vs.standard_extension(&q, &db);
        let (n, _) = count_with_view_set(&q, &vs, &rels).expect("covered");
        assert_eq!(n, Natural::ZERO);
    }
}
