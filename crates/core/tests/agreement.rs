//! The master correctness oracle: on random (query, database) instances,
//! every counting algorithm in the crate must agree with brute-force
//! enumeration.

use cqcount_core::prelude::*;
use cqcount_query::{ConjunctiveQuery, Term};
use cqcount_relational::Database;
use proptest::prelude::*;

/// A random conjunctive query: up to 5 atoms over ≤ 6 variables, arities
/// 1..3, relation names drawn from a small pool (so symbols repeat, which
/// exercises the non-simple-query machinery), and a random free set.
fn arb_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (0usize..4, proptest::collection::vec(0u32..6, 1..4));
    (
        proptest::collection::vec(atom, 1..6),
        proptest::collection::vec(any::<bool>(), 6),
    )
        .prop_map(|(atoms, free_flags)| {
            let mut q = ConjunctiveQuery::new();
            let vars: Vec<_> = (0..6).map(|i| q.var(&format!("V{i}"))).collect();
            for (rel, args) in atoms {
                let terms = args.iter().map(|&a| Term::Var(vars[a as usize])).collect();
                q.add_atom(&format!("r{}a{}", rel, args.len()), terms);
            }
            let free: Vec<_> = vars
                .iter()
                .zip(&free_flags)
                .filter(|(_, &f)| f)
                .map(|(&v, _)| v)
                .collect();
            q.set_free(free);
            q
        })
}

/// A random database over the same relation pool with a small domain.
fn arb_database() -> impl Strategy<Value = Database> {
    let fact = (0usize..4, proptest::collection::vec(0u32..4, 1..4));
    proptest::collection::vec(fact, 0..25).prop_map(|facts| {
        let mut db = Database::new();
        for (rel, args) in facts {
            let vals = args.iter().map(|a| db.value(&format!("c{a}"))).collect();
            db.add_tuple(&format!("r{}a{}", rel, args.len()), vals);
        }
        db
    })
}

/// Makes the database compatible with the query: every relation the query
/// mentions exists with the right arity (fills missing ones with a couple
/// of tuples so queries aren't trivially empty).
fn align(q: &ConjunctiveQuery, db: &Database) -> Database {
    let mut out = Database::new();
    for a in q.atoms() {
        out.ensure_relation(&a.rel, a.terms.len());
    }
    // copy compatible facts
    for (name, rel) in db.relations() {
        if let Some(existing) = out.relation(name) {
            if existing.arity() != rel.arity() {
                continue;
            }
        } else {
            continue;
        }
        for t in rel.iter() {
            let names: Vec<String> = t
                .iter()
                .map(|v| db.interner().name(*v).to_owned())
                .collect();
            let vals = names.iter().map(|n| out.value(n)).collect();
            out.add_tuple(name, vals);
        }
    }
    // seed any empty relation with a constant tuple and a diverse one
    let rel_specs: Vec<(String, usize)> = q
        .atoms()
        .iter()
        .map(|a| (a.rel.clone(), a.terms.len()))
        .collect();
    for (name, arity) in rel_specs {
        if out.relation(&name).is_some_and(|r| r.is_empty()) {
            let t1: Vec<_> = (0..arity).map(|_| out.value("c0")).collect();
            out.add_tuple(&name, t1);
            let t2: Vec<_> = (0..arity).map(|i| out.value(&format!("c{}", i % 3))).collect();
            out.add_tuple(&name, t2);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_algorithms_agree(q in arb_query(), db in arb_database()) {
        let db = align(&q, &db);
        let expected = count_brute_force(&q, &db);

        // Independent baseline.
        prop_assert_eq!(count_via_full_join(&q, &db), expected.clone());

        // Theorem 1.3 pipeline (always applicable at width ≤ #atoms).
        let (n, sd) = count_via_sharp_decomposition(&q, &db, q.atoms().len().max(1))
            .expect("width ≤ #atoms always suffices");
        prop_assert_eq!(&n, &expected, "#-pipeline (width {})", sd.width);

        // Pichler–Skritek over a plain GHD of the full query hypergraph.
        let resources: Vec<cqcount_hypergraph::NodeSet> = q
            .atoms()
            .iter()
            .map(|a| a.vars().iter().map(|v| v.node()).collect())
            .collect();
        let (_, ht) = cqcount_decomp::ghw_exact(&q.hypergraph(), &resources, q.atoms().len())
            .expect("ghw ≤ #atoms");
        prop_assert_eq!(count_pichler_skritek(&q, &db, &ht), expected.clone(), "PS");

        // Durand–Mengel (may need larger width; always ≤ #atoms here since
        // one bag with all atoms covers everything).
        let dm = count_durand_mengel(&q, &db, q.atoms().len().max(1))
            .expect("full-width DM decomposition exists");
        prop_assert_eq!(dm, expected.clone(), "Durand–Mengel");

        // Hybrid with unconstrained threshold.
        let (hy, hd) = count_hybrid(&q, &db, q.atoms().len().max(1), usize::MAX)
            .expect("hybrid with S̄ = free always exists at full width");
        prop_assert_eq!(&hy, &expected, "hybrid (bound {})", hd.bound);

        // Planner.
        prop_assert_eq!(count_auto(&q, &db), expected.clone());

        // Polynomial-delay enumeration: emits exactly the distinct answers.
        let answers = enumerate_answers(&q, &db, q.atoms().len().max(1))
            .expect("decomposition exists at full width");
        prop_assert_eq!(
            cqcount_arith::Natural::from(answers.len()),
            expected.clone(),
            "enumeration cardinality"
        );
        let free: Vec<cqcount_query::Var> = q.free().into_iter().collect();
        let distinct: std::collections::BTreeSet<Vec<cqcount_relational::Value>> = answers
            .iter()
            .map(|a| free.iter().map(|v| a[v]).collect())
            .collect();
        prop_assert_eq!(
            cqcount_arith::Natural::from(distinct.len()),
            expected,
            "enumeration emits no duplicates"
        );
    }

    /// The #-relation algorithm with every variable free must equal the
    /// acyclic join-count DP on the bag views.
    #[test]
    fn ps_all_free_equals_join_count(q in arb_query(), db in arb_database()) {
        let db = align(&q, &db);
        let all: Vec<_> = q.vars_in_atoms().into_iter().collect();
        let qf = q.requantify(all);
        prop_assert_eq!(
            count_auto(&qf, &db),
            count_brute_force(&qf, &db)
        );
    }

    /// Monotonicity sanity: adding tuples never decreases the count.
    #[test]
    fn count_is_monotone_in_data(q in arb_query(), db in arb_database()) {
        let small = align(&q, &db);
        let mut big = small.clone();
        // add one extra tuple to every relation
        let specs: Vec<(String, usize)> = q
            .atoms()
            .iter()
            .map(|a| (a.rel.clone(), a.terms.len()))
            .collect();
        for (name, arity) in specs {
            let t: Vec<_> = (0..arity).map(|_| big.value("fresh")).collect();
            big.add_tuple(&name, t);
        }
        prop_assert!(count_brute_force(&q, &small) <= count_brute_force(&q, &big));
    }
}
