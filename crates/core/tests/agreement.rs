//! The master correctness oracle: on random (query, database) instances,
//! every counting algorithm in the crate must agree with brute-force
//! enumeration. Instances come from the workspace PRNG under fixed seeds;
//! `exhaustive-tests` raises the case count.

use cqcount_arith::prng::Rng;
use cqcount_core::prelude::*;
use cqcount_query::{ConjunctiveQuery, Term};
use cqcount_relational::Database;

const CASES: usize = if cfg!(feature = "exhaustive-tests") {
    384
} else {
    96
};

/// A random conjunctive query: up to 5 atoms over ≤ 6 variables, arities
/// 1..3, relation names drawn from a small pool (so symbols repeat, which
/// exercises the non-simple-query machinery), and a random free set.
fn arb_query(rng: &mut Rng) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new();
    let vars: Vec<_> = (0..6).map(|i| q.var(&format!("V{i}"))).collect();
    let atoms = rng.range_usize(1, 6);
    for _ in 0..atoms {
        let rel = rng.range_usize(0, 4);
        let arity = rng.range_usize(1, 4);
        let terms = (0..arity)
            .map(|_| Term::Var(vars[rng.range_usize(0, 6)]))
            .collect();
        q.add_atom(&format!("r{rel}a{arity}"), terms);
    }
    let free: Vec<_> = vars.iter().filter(|_| rng.chance(0.5)).copied().collect();
    q.set_free(free);
    q
}

/// A random database over the same relation pool with a small domain.
fn arb_database(rng: &mut Rng) -> Database {
    let mut db = Database::new();
    let facts = rng.range_usize(0, 25);
    for _ in 0..facts {
        let rel = rng.range_usize(0, 4);
        let arity = rng.range_usize(1, 4);
        let vals = (0..arity)
            .map(|_| db.value(&format!("c{}", rng.range_u32(0, 4))))
            .collect();
        db.add_tuple(&format!("r{rel}a{arity}"), vals);
    }
    db
}

/// Makes the database compatible with the query: every relation the query
/// mentions exists with the right arity (fills missing ones with a couple
/// of tuples so queries aren't trivially empty).
fn align(q: &ConjunctiveQuery, db: &Database) -> Database {
    let mut out = Database::new();
    for a in q.atoms() {
        out.ensure_relation(&a.rel, a.terms.len());
    }
    // copy compatible facts
    for (name, rel) in db.relations() {
        if let Some(existing) = out.relation(name) {
            if existing.arity() != rel.arity() {
                continue;
            }
        } else {
            continue;
        }
        for t in rel.iter() {
            let names: Vec<String> = t
                .iter()
                .map(|v| db.interner().name(*v).to_owned())
                .collect();
            let vals = names.iter().map(|n| out.value(n)).collect();
            out.add_tuple(name, vals);
        }
    }
    // seed any empty relation with a constant tuple and a diverse one
    let rel_specs: Vec<(String, usize)> = q
        .atoms()
        .iter()
        .map(|a| (a.rel.clone(), a.terms.len()))
        .collect();
    for (name, arity) in rel_specs {
        if out.relation(&name).is_some_and(|r| r.is_empty()) {
            let t1: Vec<_> = (0..arity).map(|_| out.value("c0")).collect();
            out.add_tuple(&name, t1);
            let t2: Vec<_> = (0..arity)
                .map(|i| out.value(&format!("c{}", i % 3)))
                .collect();
            out.add_tuple(&name, t2);
        }
    }
    out
}

#[test]
fn all_algorithms_agree() {
    let mut rng = Rng::seed_from_u64(0x51);
    for case in 0..CASES {
        let q = arb_query(&mut rng);
        let db = align(&q, &arb_database(&mut rng));
        let expected = count_brute_force(&q, &db);

        // Independent baseline.
        assert_eq!(count_via_full_join(&q, &db), expected, "case {case}");

        // Theorem 1.3 pipeline (always applicable at width ≤ #atoms).
        let (n, sd) = count_via_sharp_decomposition(&q, &db, q.atoms().len().max(1))
            .expect("width ≤ #atoms always suffices");
        assert_eq!(n, expected, "#-pipeline (width {}) case {case}", sd.width);

        // Pichler–Skritek over a plain GHD of the full query hypergraph.
        let resources: Vec<cqcount_hypergraph::NodeSet> = q
            .atoms()
            .iter()
            .map(|a| a.vars().iter().map(|v| v.node()).collect())
            .collect();
        let (_, ht) = cqcount_decomp::ghw_exact(&q.hypergraph(), &resources, q.atoms().len())
            .expect("ghw ≤ #atoms");
        assert_eq!(
            count_pichler_skritek(&q, &db, &ht),
            expected,
            "PS case {case}"
        );

        // Durand–Mengel (may need larger width; always ≤ #atoms here since
        // one bag with all atoms covers everything).
        let dm = count_durand_mengel(&q, &db, q.atoms().len().max(1))
            .expect("full-width DM decomposition exists");
        assert_eq!(dm, expected, "Durand–Mengel case {case}");

        // Hybrid with unconstrained threshold.
        let (hy, hd) = count_hybrid(&q, &db, q.atoms().len().max(1), usize::MAX)
            .expect("hybrid with S̄ = free always exists at full width");
        assert_eq!(hy, expected, "hybrid (bound {}) case {case}", hd.bound);

        // Planner.
        assert_eq!(count_auto(&q, &db), expected, "case {case}");

        // Polynomial-delay enumeration: emits exactly the distinct answers.
        let answers = enumerate_answers(&q, &db, q.atoms().len().max(1))
            .expect("decomposition exists at full width");
        assert_eq!(
            cqcount_arith::Natural::from(answers.len()),
            expected,
            "enumeration cardinality case {case}"
        );
        let free: Vec<cqcount_query::Var> = q.free().into_iter().collect();
        let distinct: std::collections::BTreeSet<Vec<cqcount_relational::Value>> = answers
            .iter()
            .map(|a| free.iter().map(|v| a[v]).collect())
            .collect();
        assert_eq!(
            cqcount_arith::Natural::from(distinct.len()),
            expected,
            "enumeration emits no duplicates case {case}"
        );
    }
}

/// The #-relation algorithm with every variable free must equal the
/// acyclic join-count DP on the bag views.
#[test]
fn ps_all_free_equals_join_count() {
    let mut rng = Rng::seed_from_u64(0x52);
    for _ in 0..CASES {
        let q = arb_query(&mut rng);
        let db = align(&q, &arb_database(&mut rng));
        let all: Vec<_> = q.vars_in_atoms().into_iter().collect();
        let qf = q.requantify(all);
        assert_eq!(count_auto(&qf, &db), count_brute_force(&qf, &db));
    }
}

/// Monotonicity sanity: adding tuples never decreases the count.
#[test]
fn count_is_monotone_in_data() {
    let mut rng = Rng::seed_from_u64(0x53);
    for _ in 0..CASES {
        let q = arb_query(&mut rng);
        let small = align(&q, &arb_database(&mut rng));
        let mut big = small.clone();
        // add one extra tuple to every relation
        let specs: Vec<(String, usize)> = q
            .atoms()
            .iter()
            .map(|a| (a.rel.clone(), a.terms.len()))
            .collect();
        for (name, arity) in specs {
            let t: Vec<_> = (0..arity).map(|_| big.value("fresh")).collect();
            big.add_tuple(&name, t);
        }
        assert!(count_brute_force(&q, &small) <= count_brute_force(&q, &big));
    }
}

/// The ISSUE's end-to-end determinism properties: the full counting
/// pipeline returns identical results (count, width, and decomposition
/// shape) whether run sequentially or on a multi-lane pool, and two
/// parallel runs are identical to each other.
#[test]
fn sharp_pipeline_deterministic_across_threads() {
    let mut rng = Rng::seed_from_u64(0x54);
    for case in 0..CASES.min(32) {
        let q = arb_query(&mut rng);
        let db = align(&q, &arb_database(&mut rng));
        let cap = q.atoms().len().max(1);
        let run = || count_via_sharp_decomposition(&q, &db, cap);

        let seq = cqcount_exec::with_threads(1, run);
        let par1 = cqcount_exec::with_threads(8, run);
        let par2 = cqcount_exec::with_threads(8, run);

        let unpack = |r: Option<(cqcount_arith::Natural, _)>| {
            r.map(|(n, sd): (_, cqcount_core::SharpDecomposition)| (n, sd.width))
        };
        let (s, p1, p2) = (unpack(seq), unpack(par1), unpack(par2));
        // parallel runs are mutually identical AND match the sequential run
        assert_eq!(p1, p2, "two parallel runs diverged, case {case}");
        assert_eq!(s, p1, "sequential vs parallel diverged, case {case}");
    }
}
