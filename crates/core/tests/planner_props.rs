//! Seeded property tests for the parallel planner (PR 5): on random
//! cyclic queries, the parallel width sweep must agree exactly — width
//! and count — with the `CQCOUNT_THREADS=1` sequential reference and with
//! brute-force enumeration.
//!
//! Gated behind `exhaustive-tests` (they decompose and brute-force dozens
//! of random instances): `cargo test -p cqcount-core --features
//! exhaustive-tests --test planner_props`.
#![cfg(feature = "exhaustive-tests")]

use cqcount_core::prelude::*;
use cqcount_core::width_search::WidthSearch;
use cqcount_exec::with_threads;
use cqcount_workloads::random::{
    random_cyclic_query, random_database, random_query, RandomCqConfig, RandomDbConfig,
};

#[test]
fn parallel_width_sweep_matches_sequential_reference() {
    for atoms in [8usize, 10, 12] {
        for seed in 0..8u64 {
            let q = random_cyclic_query(atoms, seed);
            let seq = with_threads(1, || {
                WidthSearch::new(&q)
                    .find_up_to(4)
                    .map(|(k, sd)| (k, sd.hypertree.chi.clone(), sd.hypertree.lambda.clone()))
            });
            let par = with_threads(8, || {
                WidthSearch::new(&q)
                    .find_up_to(4)
                    .map(|(k, sd)| (k, sd.hypertree.chi.clone(), sd.hypertree.lambda.clone()))
            });
            assert_eq!(seq, par, "atoms = {atoms}, seed = {seed}");
        }
    }
}

#[test]
fn counts_through_either_witness_match_brute_force() {
    let qcfg = RandomCqConfig {
        atoms: 5,
        vars: 5,
        max_arity: 2,
        rels: 3,
        free_prob: 0.5,
    };
    let dbcfg = RandomDbConfig {
        domain: 4,
        tuples_per_rel: 8,
    };
    let mut decomposed = 0usize;
    for seed in 0..40u64 {
        let q = random_query(&qcfg, seed);
        if q.free().is_empty() {
            continue;
        }
        let db = random_database(&q, &dbcfg, seed ^ 0xdead);
        let expected = count_brute_force(&q, &db);
        for threads in [1usize, 8] {
            let got = with_threads(threads, || {
                WidthSearch::new(&q)
                    .find_up_to(3)
                    .map(|(_, sd)| count_with_decomposition(&sd.qprime, &db, &sd.hypertree))
            });
            if let Some(n) = got {
                decomposed += 1;
                assert_eq!(n, expected, "seed = {seed}, threads = {threads}");
            }
        }
    }
    assert!(
        decomposed > 20,
        "too few decomposable instances: {decomposed}"
    );
}

#[test]
fn cyclic_counts_agree_across_thread_counts() {
    let dbcfg = RandomDbConfig {
        domain: 3,
        tuples_per_rel: 6,
    };
    for seed in 0..4u64 {
        let q = random_cyclic_query(8, seed);
        let db = random_database(&q, &dbcfg, seed.wrapping_mul(31) + 1);
        let expected = count_brute_force(&q, &db);
        for threads in [1usize, 8] {
            let (n, sd) = with_threads(threads, || {
                count_via_sharp_decomposition(&q, &db, 4).expect("cycle+chords fits width 4")
            });
            assert_eq!(n, expected, "seed = {seed}, threads = {threads}");
            assert!(sd.width <= 4);
        }
    }
}
