//! Kernel-parity property tests: the leapfrog worst-case-optimal kernel
//! and the binary sort-merge fold must count identically on seeded cyclic
//! queries, and both must agree with brute-force enumeration. Seeded loops
//! per the in-repo convention; `exhaustive-tests` raises the seed count.

use cqcount_core::prelude::*;
use cqcount_workloads::random::{random_cyclic_query, random_database, RandomDbConfig};

const SEEDS: u64 = if cfg!(feature = "exhaustive-tests") {
    24
} else {
    4
};

#[test]
fn wcoj_and_sort_merge_count_identically_on_cyclic_queries() {
    for seed in 0..SEEDS {
        let q = random_cyclic_query(6, seed);
        let db = random_database(
            &q,
            &RandomDbConfig {
                tuples_per_rel: 40,
                domain: 6,
            },
            seed ^ 0x9e37,
        );
        let Some(sd) = sharp_hypertree_decomposition(&q, 3) else {
            continue; // width > 3: out of scope for this kernel test
        };
        let merge =
            count_with_decomposition_kernel(&sd.qprime, &db, &sd.hypertree, JoinKernel::SortMerge);
        let wcoj =
            count_with_decomposition_kernel(&sd.qprime, &db, &sd.hypertree, JoinKernel::Wcoj);
        let auto =
            count_with_decomposition_kernel(&sd.qprime, &db, &sd.hypertree, JoinKernel::Auto);
        assert_eq!(wcoj, merge, "kernels disagree on seed {seed}");
        assert_eq!(auto, merge, "auto kernel disagrees on seed {seed}");
        // Round-trip the database through the store: every relation comes
        // back frozen, so the kernel intersects the pages in place (the
        // trie-direct path) — the counts must not change.
        let bytes = cqcount_relational::store::encode_store(&db, 1, 0);
        let frozen = cqcount_relational::store::load_store_bytes(&bytes)
            .expect("store round-trip")
            .db;
        let frozen_wcoj =
            count_with_decomposition_kernel(&sd.qprime, &frozen, &sd.hypertree, JoinKernel::Wcoj);
        assert_eq!(
            frozen_wcoj, merge,
            "frozen-trie path disagrees on seed {seed}"
        );
        assert_eq!(
            merge,
            count_brute_force(&q, &db),
            "decomposition count wrong on seed {seed}"
        );
    }
}

#[test]
fn wcoj_handles_triangles_with_shared_and_constant_atoms() {
    // A cyclic query whose bag joins mix plain atoms (frozen-trie
    // eligible after a store round-trip) with repeated-variable and
    // constant atoms (bindings path): the kernel must canonicalize both.
    let (q, db) = {
        let (q, db) = cqcount_query::parse_program(
            "e(a, b). e(b, c). e(c, a). e(a, a). p(a). p(b).
             ans(X, Y) :- e(X, Y), e(Y, Z), e(Z, X), e(X, X), p(X).",
        )
        .unwrap();
        (q.unwrap(), db)
    };
    let sd = sharp_hypertree_decomposition(&q, 3).expect("small cyclic query decomposes");
    let brute = count_brute_force(&q, &db);
    for kernel in [JoinKernel::SortMerge, JoinKernel::Wcoj, JoinKernel::Auto] {
        assert_eq!(
            count_with_decomposition_kernel(&sd.qprime, &db, &sd.hypertree, kernel),
            brute,
            "{kernel:?}"
        );
    }
}
