//! Property tests for the width-comparison theory of Appendix A
//! (Theorem A.3, Lemma A.4, Corollary A.5) and Remark 4.4. Instances come
//! from the workspace PRNG under fixed seeds; `exhaustive-tests` raises the
//! case count.

use cqcount_arith::prng::Rng;
use cqcount_core::prelude::*;
use cqcount_query::color::{color, uncolor};
use cqcount_query::core_of::core_exact;
use cqcount_query::{quantified_star_size, ConjunctiveQuery, Term};

const CASES: usize = if cfg!(feature = "exhaustive-tests") {
    192
} else {
    48
};

fn arb_query(rng: &mut Rng) -> ConjunctiveQuery {
    let mut q = ConjunctiveQuery::new();
    let vars: Vec<_> = (0..5).map(|i| q.var(&format!("V{i}"))).collect();
    let atoms = rng.range_usize(1, 5);
    for _ in 0..atoms {
        let rel = rng.range_usize(0, 3);
        let arity = rng.range_usize(1, 4);
        let terms = (0..arity)
            .map(|_| Term::Var(vars[rng.range_usize(0, 5)]))
            .collect();
        q.add_atom(&format!("r{rel}a{arity}"), terms);
    }
    let free: Vec<_> = vars.iter().filter(|_| rng.chance(0.5)).copied().collect();
    q.set_free(free);
    q
}

fn ghw_of(q: &ConjunctiveQuery, cap: usize) -> Option<usize> {
    let resources: Vec<cqcount_hypergraph::NodeSet> = q
        .atoms()
        .iter()
        .map(|a| a.vars().iter().map(|v| v.node()).collect())
        .collect();
    cqcount_decomp::ghw_exact(&q.hypergraph(), &resources, cap).map(|(w, _)| w)
}

/// Lemma A.4: the cores of the colorings of queries with #-htw ≤ k have
/// ghw ≤ k and quantified star size ≤ k.
#[test]
fn lemma_a4_core_widths_bounded_by_sharp_width() {
    let mut rng = Rng::seed_from_u64(0x61);
    for _ in 0..CASES {
        let q = arb_query(&mut rng);
        let cap = q.atoms().len().max(1);
        let sharp = sharp_hypertree_width(&q, cap).expect("width ≤ #atoms");
        let qprime = uncolor(&core_exact(&color(&q)));
        let core_ghw = ghw_of(&qprime, cap).expect("ghw of core exists");
        assert!(core_ghw <= sharp, "ghw(core) {core_ghw} > #-htw {sharp}");
        let core_star = quantified_star_size(&qprime);
        assert!(core_star <= sharp, "star(core) {core_star} > #-htw {sharp}");
    }
}

/// Theorem A.3 (quantitative direction): #-htw ≤ ghw(core) · star(core)
/// — via the constructed decomposition; we check the weaker product
/// bound on the core.
#[test]
fn theorem_a3_product_bound() {
    let mut rng = Rng::seed_from_u64(0x62);
    for _ in 0..CASES {
        let q = arb_query(&mut rng);
        let cap = q.atoms().len().max(1);
        let sharp = sharp_hypertree_width(&q, cap).expect("exists");
        let qprime = uncolor(&core_exact(&color(&q)));
        let core_ghw = ghw_of(&qprime, cap).unwrap();
        let core_star = quantified_star_size(&qprime).max(1);
        assert!(
            sharp <= core_ghw * core_star,
            "#-htw {sharp} > ghw(core)·star(core) = {core_ghw}·{core_star}"
        );
    }
}

/// The Durand–Mengel width (no coring) is never smaller than the
/// paper's width (which cores first): Example A.2's separation is the
/// strict case.
#[test]
fn dm_width_dominates_sharp_width() {
    let mut rng = Rng::seed_from_u64(0x63);
    for _ in 0..CASES {
        let q = arb_query(&mut rng);
        let cap = q.atoms().len().max(1);
        let sharp = sharp_hypertree_width(&q, cap).expect("exists");
        if let Some((dm, _)) = durand_mengel_width(&q, cap) {
            assert!(dm >= sharp, "DM {dm} < #-htw {sharp}");
        }
    }
}

/// Remark 4.4: fractional hypertree width ≤ generalized hypertree width
/// (an integral cover is a fractional one).
#[test]
fn fhw_at_most_ghw() {
    let mut rng = Rng::seed_from_u64(0x64);
    for _ in 0..CASES {
        let q = arb_query(&mut rng);
        let cap = q.atoms().len().max(1);
        let h = q.hypergraph();
        if h.num_nodes() == 0 || h.num_nodes() > 8 {
            continue;
        }
        let ghw = ghw_of(&q, cap).unwrap();
        let k = cqcount_arith::Rational::from(ghw as i64);
        assert!(
            cqcount_decomp::fractional_hypertree_width_at_most(&h, k).is_some(),
            "fhw must be ≤ ghw = {ghw}"
        );
    }
}

/// The width search is monotone: #-htw found at k implies found at k+1.
#[test]
fn sharp_width_monotone() {
    let mut rng = Rng::seed_from_u64(0x65);
    for _ in 0..CASES {
        let q = arb_query(&mut rng);
        let cap = q.atoms().len().max(1);
        let w = sharp_hypertree_width(&q, cap).unwrap();
        for k in w..=cap {
            assert!(sharp_hypertree_decomposition(&q, k).is_some());
        }
    }
}
