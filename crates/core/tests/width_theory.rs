//! Property tests for the width-comparison theory of Appendix A
//! (Theorem A.3, Lemma A.4, Corollary A.5) and Remark 4.4.

use cqcount_core::prelude::*;
use cqcount_query::color::{color, uncolor};
use cqcount_query::core_of::core_exact;
use cqcount_query::{quantified_star_size, ConjunctiveQuery, Term};
use proptest::prelude::*;

fn arb_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = (0usize..3, proptest::collection::vec(0u32..5, 1..4));
    (
        proptest::collection::vec(atom, 1..5),
        proptest::collection::vec(any::<bool>(), 5),
    )
        .prop_map(|(atoms, free_flags)| {
            let mut q = ConjunctiveQuery::new();
            let vars: Vec<_> = (0..5).map(|i| q.var(&format!("V{i}"))).collect();
            for (rel, args) in atoms {
                let terms = args.iter().map(|&a| Term::Var(vars[a as usize])).collect();
                q.add_atom(&format!("r{}a{}", rel, args.len()), terms);
            }
            let free: Vec<_> = vars
                .iter()
                .zip(&free_flags)
                .filter(|(_, &f)| f)
                .map(|(&v, _)| v)
                .collect();
            q.set_free(free);
            q
        })
}

fn ghw_of(q: &ConjunctiveQuery, cap: usize) -> Option<usize> {
    let resources: Vec<cqcount_hypergraph::NodeSet> = q
        .atoms()
        .iter()
        .map(|a| a.vars().iter().map(|v| v.node()).collect())
        .collect();
    cqcount_decomp::ghw_exact(&q.hypergraph(), &resources, cap).map(|(w, _)| w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma A.4: the cores of the colorings of queries with #-htw ≤ k have
    /// ghw ≤ k and quantified star size ≤ k.
    #[test]
    fn lemma_a4_core_widths_bounded_by_sharp_width(q in arb_query()) {
        let cap = q.atoms().len().max(1);
        let sharp = sharp_hypertree_width(&q, cap).expect("width ≤ #atoms");
        let qprime = uncolor(&core_exact(&color(&q)));
        let core_ghw = ghw_of(&qprime, cap).expect("ghw of core exists");
        prop_assert!(core_ghw <= sharp, "ghw(core) {core_ghw} > #-htw {sharp}");
        let core_star = quantified_star_size(&qprime);
        prop_assert!(core_star <= sharp, "star(core) {core_star} > #-htw {sharp}");
    }

    /// Theorem A.3 (quantitative direction): #-htw ≤ ghw(core) · star(core)
    /// — via the constructed decomposition; we check the weaker product
    /// bound on the core.
    #[test]
    fn theorem_a3_product_bound(q in arb_query()) {
        let cap = q.atoms().len().max(1);
        let sharp = sharp_hypertree_width(&q, cap).expect("exists");
        let qprime = uncolor(&core_exact(&color(&q)));
        let core_ghw = ghw_of(&qprime, cap).unwrap();
        let core_star = quantified_star_size(&qprime).max(1);
        prop_assert!(
            sharp <= core_ghw * core_star,
            "#-htw {sharp} > ghw(core)·star(core) = {core_ghw}·{core_star}"
        );
    }

    /// The Durand–Mengel width (no coring) is never smaller than the
    /// paper's width (which cores first): Example A.2's separation is the
    /// strict case.
    #[test]
    fn dm_width_dominates_sharp_width(q in arb_query()) {
        let cap = q.atoms().len().max(1);
        let sharp = sharp_hypertree_width(&q, cap).expect("exists");
        if let Some((dm, _)) = durand_mengel_width(&q, cap) {
            prop_assert!(dm >= sharp, "DM {dm} < #-htw {sharp}");
        }
    }

    /// Remark 4.4: fractional hypertree width ≤ generalized hypertree width
    /// (an integral cover is a fractional one).
    #[test]
    fn fhw_at_most_ghw(q in arb_query()) {
        let cap = q.atoms().len().max(1);
        let h = q.hypergraph();
        if h.num_nodes() == 0 || h.num_nodes() > 8 {
            return Ok(());
        }
        let ghw = ghw_of(&q, cap).unwrap();
        let k = cqcount_arith::Rational::from(ghw as i64);
        prop_assert!(
            cqcount_decomp::fractional_hypertree_width_at_most(&h, k).is_some(),
            "fhw must be ≤ ghw = {ghw}"
        );
    }

    /// The width search is monotone: #-htw found at k implies found at k+1.
    #[test]
    fn sharp_width_monotone(q in arb_query()) {
        let cap = q.atoms().len().max(1);
        let w = sharp_hypertree_width(&q, cap).unwrap();
        for k in w..=cap {
            prop_assert!(sharp_hypertree_decomposition(&q, k).is_some());
        }
    }
}
