//! Flight-recorder forensics e2e tests: retention exactness (only the
//! faulted or over-threshold requests are kept), bounded memory under an
//! error flood, exact retention replay under the chaos profile, and the
//! acceptance scenario — an injected WAL fsync stall whose span tree,
//! throughput dip, and watchdog incident are all recovered *after the
//! fact* over protocol v8, with no pre-arranged `PROFILE`.

use cqcount_query::parse_database;
use cqcount_server::faults::FaultProfile;
use cqcount_server::protocol::Request;
use cqcount_server::{
    serve, Client, ClientError, ClientOptions, DurabilityPolicy, PipelinedClient, Response,
    ServerConfig, ServerHandle, SpanNode,
};
use std::path::Path;

/// A width-2 cycle query (the triangle) over [`cycle_facts`]: cold counts
/// do real planning and kernel work.
const CYCLE_Q: &str = "ans(X, Y, Z) :- r(X, Y), s(Y, Z), t(Z, X).";

/// The sparse triangle instance from the observability e2e tests
/// (count 30 at `n = 30`).
fn cycle_facts(n: u64) -> String {
    let mut s = String::new();
    for i in 0..n {
        for d in [1, 2, 5] {
            s.push_str(&format!("r(v{}, v{}).\n", i, (i + d) % n));
            s.push_str(&format!("s(v{}, v{}).\n", i, (i + 2 * d) % n));
            s.push_str(&format!("t(v{}, v{}).\n", i, (i + 3 * d) % n));
        }
    }
    s
}

/// Forensics servers in these tests disable the timing-driven subsystems
/// they are not asserting on, so retained sets are exact.
fn quiet_forensics(recorder_threshold_us: u64) -> ServerConfig {
    ServerConfig {
        recorder_threshold_us,
        history_interval_ms: 0,
        watchdog_stall_ms: 0,
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig) -> ServerHandle {
    let db = parse_database(&cycle_facts(30)).unwrap();
    serve(config, vec![("main".into(), db)]).expect("bind loopback")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(handle.local_addr()).expect("connect")
}

/// Depth-first search for the longest span named `name` in a tree.
fn longest_span<'a>(node: &'a SpanNode, name: &str) -> Option<&'a SpanNode> {
    let mut best: Option<&SpanNode> = None;
    if node.name == name {
        best = Some(node);
    }
    for child in &node.children {
        if let Some(hit) = longest_span(child, name) {
            if best.is_none_or(|b| hit.duration_ns > b.duration_ns) {
                best = Some(hit);
            }
        }
    }
    best
}

/// A threshold no real request crosses: retention below is driven purely
/// by errors, degradation, and faults — never by latency.
const NEVER_SLOW_US: u64 = 60_000_000;

/// Only the requests with a retention-worthy outcome are kept: good
/// counts (cold and warm) leave nothing behind, errored ones are all
/// retained, in order, with full span attribution.
#[test]
fn recorder_retains_exactly_the_faulted_requests() {
    let handle = start(quiet_forensics(NEVER_SLOW_US));
    let mut c = connect(&handle);

    // One cold count and two warm repeats: all good, none retained.
    for _ in 0..3 {
        assert_eq!(c.count("main", CYCLE_Q, 0).unwrap().value, "30");
    }
    // Three requests against a database that does not exist: typed
    // errors, every one retained.
    for i in 0..3 {
        match c.count("nosuch", CYCLE_Q, 0).unwrap_err() {
            ClientError::Server { code, .. } => {
                assert_eq!(code, cqcount_server::ErrorCode::UnknownDb, "request {i}")
            }
            other => panic!("expected a typed error, got {other}"),
        }
    }

    let flight = c.flight(0).unwrap();
    assert_eq!(
        flight.traces.len(),
        3,
        "exactly the three errored requests are retained: {:?}",
        flight
            .traces
            .iter()
            .map(|t| (&t.op, &t.reason))
            .collect::<Vec<_>>()
    );
    for (i, trace) in flight.traces.iter().enumerate() {
        assert_eq!(trace.op, "count");
        assert_eq!(trace.reason, "error");
        assert_eq!(trace.threshold_us, NEVER_SLOW_US);
        assert_eq!(trace.root.name, "request");
        assert!(
            trace
                .root
                .tags
                .iter()
                .any(|(k, v)| k == "op" && v == "count"),
            "retained root keeps its opcode tag"
        );
        if i > 0 {
            assert!(trace.seq > flight.traces[i - 1].seq, "oldest-first order");
        }
    }
    assert!(flight.incidents.is_empty(), "no watchdog, no incidents");

    let stats = c.stats().unwrap();
    assert_eq!(stats.recorder_retained, 3);
    assert_eq!(stats.watchdog_stalls, 0);
    handle.shutdown();
}

/// With the threshold floored at 1µs and no live p99 yet, the very first
/// cold count is "slow" by definition and is retained with the threshold
/// it was judged against.
#[test]
fn slow_requests_retain_against_the_threshold_floor() {
    let handle = start(quiet_forensics(1));
    let mut c = connect(&handle);
    assert_eq!(c.count("main", CYCLE_Q, 0).unwrap().value, "30");

    let flight = c.flight(0).unwrap();
    assert_eq!(flight.traces.len(), 1);
    let trace = &flight.traces[0];
    assert_eq!(trace.op, "count");
    assert_eq!(trace.reason, "slow");
    assert_eq!(
        trace.threshold_us, 1,
        "no per-opcode p99 exists yet, so the configured floor is the threshold"
    );
    assert!(trace.latency_us > trace.threshold_us);
    // The retained tree is a real execution trace, not a stub.
    assert!(
        longest_span(&trace.root, "server.plan").is_some(),
        "retained cold count should show its planning span"
    );
    handle.shutdown();
}

/// A degraded plan is retained even when it is fast and succeeds.
#[test]
fn degraded_plans_are_retained() {
    let handle = start(ServerConfig {
        plan_budget_ms: Some(0),
        ..quiet_forensics(NEVER_SLOW_US)
    });
    let mut c = connect(&handle);
    let reply = c.count("main", CYCLE_Q, 0).unwrap();
    assert_eq!(reply.value, "30");
    assert!(reply.degraded, "planning at 0ms must degrade");

    let flight = c.flight(0).unwrap();
    assert_eq!(flight.traces.len(), 1);
    assert_eq!(flight.traces[0].reason, "degraded");
    assert_eq!(flight.traces[0].op, "count");
    handle.shutdown();
}

/// Flood size: the acceptance criterion's 100k under `exhaustive-tests`,
/// a fast-but-representative 20k in tier-1.
fn flood_len() -> u64 {
    if cfg!(feature = "exhaustive-tests") {
        100_000
    } else {
        20_000
    }
}

/// Every request in a sustained error flood is retention-worthy, yet the
/// recorder keeps exactly its ring capacity — the newest traces — while
/// the retained *counter* sees them all.
#[test]
fn recorder_memory_stays_bounded_under_an_error_flood() {
    const RING_CAP: usize = 8;
    let handle = start(ServerConfig {
        recorder_cap: RING_CAP,
        queue_cap: 1_024,
        ..quiet_forensics(NEVER_SLOW_US)
    });
    let n = flood_len();

    let mut pipe = PipelinedClient::connect(handle.local_addr()).expect("connect");
    let req = Request::Count {
        db: "nosuch".into(),
        query: CYCLE_Q.into(),
        budget_ms: 0,
    };
    let mut errors = 0u64;
    let mut sent = 0u64;
    while sent < n {
        // Chunked well below the queue cap and the per-connection inflight
        // window, so nothing is answered `Overloaded` inline.
        let burst = 256.min(n - sent);
        for _ in 0..burst {
            pipe.submit(&req).unwrap();
        }
        pipe.flush().unwrap();
        for _ in 0..burst {
            let (_, response) = pipe.recv().unwrap();
            match response {
                Response::Error { code, .. } => {
                    assert_eq!(code, cqcount_server::ErrorCode::UnknownDb);
                    errors += 1;
                }
                other => panic!("expected UnknownDb for every flood request, got {other:?}"),
            }
        }
        sent += burst;
    }
    assert_eq!(errors, n);

    let mut c = connect(&handle);
    let flight = c.flight(0).unwrap();
    assert_eq!(
        flight.traces.len(),
        RING_CAP,
        "the ring holds exactly its capacity after {n} retention-worthy requests"
    );
    // The survivors are the newest n-RING_CAP+1 ..= n, in order.
    for (i, trace) in flight.traces.iter().enumerate() {
        assert_eq!(trace.seq, n - RING_CAP as u64 + 1 + i as u64);
        assert_eq!(trace.reason, "error");
    }
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.recorder_retained, n,
        "the counter saw every retention"
    );
    handle.shutdown();
}

/// 45 structurally distinct (distinct canonical fingerprint) four-atom
/// chain queries — the relation sequence is `k` in base 3 over {r, s, t}.
/// Every one is a cold cache miss, so every request crosses the worker
/// pool where job-level faults (cap trips, panics) are drawn.
fn chain_query(k: usize) -> String {
    let atoms: Vec<String> = (0..4)
        .map(|i| {
            let rel = ["r", "s", "t"][(k / 3usize.pow(i)) % 3];
            format!("{rel}(X{i}, X{})", i + 1)
        })
        .collect();
    format!("ans(X0, X4) :- {}.", atoms.join(", "))
}

fn chaos_retention_run(seed: u64) -> Vec<(u64, String, String)> {
    let handle = start(ServerConfig {
        fault_profile: FaultProfile {
            label: "forensic-chaos",
            io_gap: 24,
            short_weight: 6,
            latency_weight: 2,
            disconnect_weight: 1,
            latency_max_ms: 1,
            worker_panic_p: 0.10,
            cap_trip_p: 0.15,
        },
        fault_seed: seed,
        read_timeout_ms: 5_000,
        write_timeout_ms: 5_000,
        ..quiet_forensics(NEVER_SLOW_US)
    });
    let mut client = Client::connect_with(
        handle.local_addr(),
        ClientOptions {
            retries: 8,
            backoff_base_ms: 2,
            io_timeout_ms: 5_000,
            retry_seed: 99,
            ..ClientOptions::default()
        },
    )
    .expect("connect");
    for k in 0..45 {
        // Outcomes themselves are chaos.rs's business; here only the
        // retained record matters. Transport errors must still be fully
        // absorbed by the retry budget.
        match client.count("main", &chain_query(k), 0) {
            Ok(_) | Err(ClientError::Server { .. }) => {}
            Err(other) => panic!("untyped failure under chaos: {other}"),
        }
    }
    let flight = client.flight(0).unwrap();
    handle.shutdown();
    flight
        .traces
        .iter()
        .map(|t| (t.seq, t.op.clone(), t.reason.clone()))
        .collect()
}

/// Under the chaos profile the retained set is part of the deterministic
/// replay surface: same seed, same workload → byte-identical retention
/// sequence (ops, reasons, and sequence numbers).
#[test]
fn chaos_retention_replays_exactly_under_the_same_seed() {
    let run_a = chaos_retention_run(42);
    assert!(
        !run_a.is_empty(),
        "45 cold counts at cap_trip_p 0.15 must retain something"
    );
    for (_, op, reason) in &run_a {
        assert_eq!(op, "count");
        assert_eq!(
            reason, "error",
            "only typed faults retain at a 60s threshold"
        );
    }
    let run_b = chaos_retention_run(42);
    assert_eq!(run_a, run_b, "seed 42 must replay exactly");
}

/// Scratch data dir (std-only tempdir, mirroring tests/durability.rs).
struct Scratch(std::path::PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("cqforensics_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The acceptance scenario: a mixed COUNT/MUTATE workload with one
/// injected WAL fsync stall. Nothing is pre-arranged — no `PROFILE`, no
/// trace log — yet after the fact, protocol v8 recovers (1) the retained
/// span tree of the slow mutation with `wal.fsync` dominating, (2) the
/// HISTORY samples bracketing the throughput dip, and (3) the watchdog
/// incident for the stalled worker.
#[test]
fn fsync_stall_forensics_end_to_end() {
    const STALL_MS: u64 = 400;
    let scratch = Scratch::new("e2e");
    let db = parse_database("e(a, b). e(b, c). e(c, a).").unwrap();
    let handle = serve(
        ServerConfig {
            data_dir: Some(scratch.path().to_path_buf()),
            durability: DurabilityPolicy::Always,
            // Installing the initial database consumes fsync #1; inserts
            // then consume #2, #3, #4, ... — the third insert stalls.
            wal_fsync_stall: Some((4, STALL_MS)),
            // 50ms floors out scheduler noise on debug builds while
            // staying far under the injected stall.
            recorder_threshold_us: 50_000,
            history_interval_ms: 50,
            history_cap: 256,
            watchdog_stall_ms: 100,
            ..ServerConfig::default()
        },
        vec![("main".into(), db)],
    )
    .expect("bind loopback");
    let mut c = connect(&handle);

    let edge_q = "ans(X, Y) :- e(X, Y).";
    assert_eq!(c.count("main", edge_q, 0).unwrap().value, "3");
    for i in 0..6 {
        // Insert #3 (fsync #4) blocks ~400ms inside the WAL sync; the
        // serial client rides it out and the workload resumes.
        let receipt = c
            .insert("main", "e", &[&format!("n{i}"), &format!("m{i}")])
            .unwrap();
        assert_eq!(receipt.changed, 1);
        assert_eq!(
            c.count("main", edge_q, 0).unwrap().value,
            (4 + i).to_string()
        );
    }
    // Let the sampler take a few post-stall snapshots before we look.
    std::thread::sleep(std::time::Duration::from_millis(150));

    // (1) The slow mutation's span tree, recovered from the recorder.
    let flight = c.flight(0).unwrap();
    let stalled = flight
        .traces
        .iter()
        .filter(|t| t.reason == "slow")
        .max_by_key(|t| t.latency_us)
        .expect("the stalled insert must be retained");
    assert_eq!(stalled.op, "insert");
    assert!(
        stalled.latency_us >= (STALL_MS - 100) * 1_000,
        "retained latency {}µs should carry the injected stall",
        stalled.latency_us
    );
    let fsync = longest_span(&stalled.root, "wal.fsync").expect("tree attributes the fsync");
    assert!(
        fsync.duration_ns >= (STALL_MS - 100) * 1_000_000,
        "wal.fsync span {}ns should absorb the stall",
        fsync.duration_ns
    );
    assert!(
        fsync.duration_ns * 2 >= stalled.root.duration_ns,
        "wal.fsync ({}ns) should dominate the request ({}ns)",
        fsync.duration_ns,
        stalled.root.duration_ns
    );
    assert!(
        longest_span(&stalled.root, "wal.append").is_some(),
        "the append leg is attributed too"
    );

    // (3) The watchdog flagged the wedged worker and filed an incident.
    assert!(
        flight
            .incidents
            .iter()
            .any(|i| i.kind == "stall" && i.detail.contains("worker-")),
        "expected a worker stall incident, got {:?}",
        flight.incidents
    );
    let stats = c.stats().unwrap();
    assert!(stats.watchdog_stalls >= 1);
    assert!(stats.recorder_retained >= 1);

    // (2) HISTORY brackets the throughput dip: a flat stretch of
    // `served` while the worker was wedged, with progress after it.
    let history = c.history(0, 0).unwrap();
    assert_eq!(history.interval_ms, 50);
    assert!(
        history.samples.len() >= 4,
        "a ~700ms run at 50ms sampling yields several samples, got {}",
        history.samples.len()
    );
    assert_eq!(
        history.next_seq,
        history.samples.last().unwrap().seq + 1,
        "the reply hands back the polling cursor"
    );
    let served: Vec<u64> = history
        .samples
        .iter()
        .map(|s| {
            s.entries
                .iter()
                .find(|(name, _)| name == "cqcount_requests_served_total")
                .map(|(_, v)| *v)
                .expect("every sample carries the served counter")
        })
        .collect();
    assert!(
        served.windows(2).all(|w| w[0] <= w[1]),
        "a counter series is non-decreasing: {served:?}"
    );
    let dip = served
        .windows(2)
        .position(|w| w[0] == w[1] && w[0] >= 1)
        .expect("the stall freezes served across adjacent samples");
    assert!(
        *served.last().unwrap() > served[dip],
        "the workload resumed after the dip: {served:?}"
    );
    handle.shutdown();
}
