//! Seeded chaos runs: a real server with fault injection active, a serial
//! retrying client, and the acceptance bar from the issue — zero wrong
//! counts (every COUNT succeeds, possibly degraded or retried, or returns
//! a typed error) and a fault-event sequence that replays exactly under
//! the same seed.

use cqcount_core::count_brute_force;
use cqcount_query::{parse_database, parse_program};
use cqcount_server::faults::{FaultEvent, FaultKind, FaultProfile};
use cqcount_server::{serve, Client, ClientError, ClientOptions, ServerConfig, ServerHandle};

const FIXTURE: &str = include_str!("../fixtures/example11.cq");

/// The paper's Example 1.1 query Q0 (count 5 on the fixture).
const Q0: &str = "ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D), \
                  st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).";

/// Two cheaper companions so the run is not all cache hits.
const Q1: &str = "ans(B, D) :- wt(B, D), st(D, F).";
const Q2: &str = "ans(A) :- mw(A, B, I), wi(B, E).";

/// The chaos mix from the acceptance criteria: short I/O + latency + the
/// occasional mid-frame disconnect, plus forced worker panics. Probabilities
/// are tuned so a ~45-request run reliably sees every kind.
fn chaos_profile() -> FaultProfile {
    FaultProfile {
        label: "test-chaos",
        io_gap: 24,
        short_weight: 6,
        latency_weight: 2,
        disconnect_weight: 1,
        latency_max_ms: 1,
        worker_panic_p: 0.10,
        cap_trip_p: 0.0,
    }
}

fn start(profile: FaultProfile, seed: u64) -> ServerHandle {
    let db = parse_database(FIXTURE).unwrap();
    serve(
        ServerConfig {
            fault_profile: profile,
            fault_seed: seed,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            ..ServerConfig::default()
        },
        vec![("main".into(), db)],
    )
    .expect("bind loopback")
}

fn retrying_client(handle: &ServerHandle) -> Client {
    Client::connect_with(
        handle.local_addr(),
        ClientOptions {
            retries: 8,
            backoff_base_ms: 2,
            io_timeout_ms: 5_000,
            retry_seed: 99,
            ..ClientOptions::default()
        },
    )
    .expect("connect")
}

fn expected(query: &str) -> String {
    let (q, db) = parse_program(&format!("{FIXTURE}\n{query}")).unwrap();
    count_brute_force(&q.unwrap(), &db).to_string()
}

/// One scripted serial run: 45 counts cycling three queries, recording a
/// per-request outcome. Transport errors that survive 8 retries would show
/// up as panics here — that, too, is the acceptance criterion.
fn scripted_run(seed: u64) -> (Vec<String>, Vec<FaultEvent>) {
    let handle = start(chaos_profile(), seed);
    let mut client = retrying_client(&handle);
    let answers = [expected(Q0), expected(Q1), expected(Q2)];
    let mut outcomes = Vec::new();
    for i in 0..45 {
        let query = [Q0, Q1, Q2][i % 3];
        match client.count("main", query, 0) {
            Ok(reply) => {
                assert_eq!(
                    reply.value,
                    answers[i % 3],
                    "request {i}: wrong count under chaos (seed {seed})"
                );
                outcomes.push(format!("ok:{}", reply.value));
            }
            // A typed server error is an acceptable outcome; a transport
            // error that out-lasted the retry budget is not.
            Err(ClientError::Server { code, .. }) => outcomes.push(format!("err:{code:?}")),
            Err(other) => panic!("request {i}: untyped failure under chaos: {other}"),
        }
    }
    let events = handle.fault_events();
    handle.shutdown();
    (outcomes, events)
}

#[test]
fn chaos_run_produces_zero_wrong_counts_and_replays_exactly() {
    let (outcomes_a, events_a) = scripted_run(42);

    // The profile actually bit: every acceptance fault kind appeared.
    let kinds: Vec<FaultKind> = events_a.iter().map(|e| e.kind).collect();
    assert!(
        kinds
            .iter()
            .any(|k| matches!(k, FaultKind::ShortRead | FaultKind::ShortWrite)),
        "no short I/O injected: {events_a:?}"
    );
    assert!(kinds.contains(&FaultKind::Latency), "no latency injected");
    assert!(
        kinds.contains(&FaultKind::WorkerPanic),
        "no worker panic injected"
    );

    // Same seed, same script → identical event sequence and outcomes.
    let (outcomes_b, events_b) = scripted_run(42);
    assert_eq!(events_a, events_b, "seed 42 must replay exactly");
    assert_eq!(outcomes_a, outcomes_b);

    // A different seed takes a different path.
    let (_, events_c) = scripted_run(43);
    assert_ne!(events_a, events_c, "different seeds should differ");
}

#[test]
fn flaky_network_with_retries_matches_the_fault_free_answer() {
    // The CI chaos-smoke scenario, in-process: flaky-net (network faults
    // only) against a retrying client gets exactly the clean answers.
    let handle = start(FaultProfile::flaky_net(), 7);
    let mut client = retrying_client(&handle);
    for (query, want) in [(Q0, expected(Q0)), (Q1, expected(Q1)), (Q2, expected(Q2))] {
        for _ in 0..6 {
            let reply = client
                .count("main", query, 0)
                .unwrap_or_else(|e| panic!("flaky-net must be fully absorbed by retries: {e}"));
            assert_eq!(reply.value, want);
            assert!(!reply.degraded, "flaky-net does not degrade plans");
        }
    }
    assert!(handle.faults_injected() > 0, "profile never fired");
    // Writing the stats reply itself can inject more faults, so the
    // handle's later reading only ever runs ahead of the snapshot.
    let stats = client.stats().unwrap();
    assert!(stats.faults_injected > 0);
    assert!(handle.faults_injected() >= stats.faults_injected);
    handle.shutdown();
}

#[test]
fn degraded_planning_stays_exact_under_chaos() {
    // Planning budget tripped on every cold plan *and* the network is
    // flaky: the degradation ladder and the retry loop compose.
    let db = parse_database(FIXTURE).unwrap();
    let handle = serve(
        ServerConfig {
            fault_profile: FaultProfile::flaky_net(),
            fault_seed: 11,
            plan_budget_ms: Some(0),
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            ..ServerConfig::default()
        },
        vec![("main".into(), db)],
    )
    .expect("bind loopback");
    let mut client = retrying_client(&handle);

    let reply = client.count("main", Q0, 0).expect("retried to success");
    assert_eq!(reply.value, expected(Q0));
    assert!(reply.degraded, "planning at 0ms must degrade");

    let stats = client.stats().unwrap();
    assert!(stats.degraded >= 1);
    handle.shutdown();
}

#[test]
fn forced_cap_trips_surface_as_typed_budget_errors() {
    let db = parse_database(FIXTURE).unwrap();
    let handle = serve(
        ServerConfig {
            fault_profile: FaultProfile {
                label: "cap-trips",
                cap_trip_p: 1.0,
                ..FaultProfile::off()
            },
            fault_seed: 5,
            ..ServerConfig::default()
        },
        vec![("main".into(), db)],
    )
    .expect("bind loopback");
    // No retries: BudgetExceeded is not retryable, the first answer stands.
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    match client.count("main", Q0, 0).unwrap_err() {
        ClientError::Server { code, .. } => {
            assert_eq!(code, cqcount_server::ErrorCode::BudgetExceeded)
        }
        other => panic!("expected a typed budget error, got {other}"),
    }
    let stats = client.stats().unwrap();
    assert!(stats.budget_exceeded >= 1);
    assert!(stats.faults_injected >= 1);
    handle.shutdown();
}
