//! Durability e2e tests (protocol v7): WAL + snapshot recovery through
//! full server restarts, torn-tail truncation at arbitrary byte offsets,
//! injected disk failures degrading to read-only, `SYNC` semantics, and
//! the `RELOAD`-vs-`MUTATE` race. Crash-by-`abort()` recovery lives in
//! `crash_recovery.rs` (it needs a subprocess); everything here restarts
//! in-process, which exercises the identical recovery path.

use cqcount_arith::prng::Rng;
use cqcount_core::count_brute_force;
use cqcount_query::{parse_database, parse_program, ConjunctiveQuery};
use cqcount_relational::Database;
use cqcount_server::protocol::{CacheTier, DbSummary, ErrorCode};
use cqcount_server::{serve, Client, ClientError, DurabilityPolicy, ServerConfig, ServerHandle};
use std::path::{Path, PathBuf};

/// A unique scratch dir per test, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("cqdur_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn durable_config(dir: &Path, policy: DurabilityPolicy, snapshot_every: u64) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        durability: policy,
        snapshot_every,
        ..ServerConfig::default()
    }
}

fn start(config: ServerConfig, facts: &str) -> ServerHandle {
    let db = parse_database(facts).unwrap();
    serve(config, vec![("main".into(), db)]).expect("bind loopback")
}

fn parse_query(facts: &str, query: &str) -> ConjunctiveQuery {
    let (q, _) = parse_program(&format!("{facts}\n{query}")).unwrap();
    q.unwrap()
}

fn db_summary(client: &mut Client, name: &str) -> DbSummary {
    client
        .stats()
        .unwrap()
        .dbs
        .into_iter()
        .find(|d| d.name == name)
        .expect("db present in stats")
}

/// A seeded mutation stream applied both to the server and to a local
/// mirror. Returns a mirror snapshot after every *effective* op (the WAL
/// logs one record per effective batch; no-ops append nothing), with the
/// pre-stream state at index 0 — so index i is the state a recovery that
/// replayed i records must land on.
fn apply_stream(
    client: &mut Client,
    mirror: &mut Database,
    rng: &mut Rng,
    nops: usize,
) -> Vec<Database> {
    let mut states = vec![mirror.clone()];
    for _ in 0..nops {
        let insert = rng.below(4) < 3;
        let a = format!("v{}", rng.below(7));
        let b = format!("v{}", rng.below(7));
        let receipt = if insert {
            client.insert("main", "r", &[&a, &b]).unwrap()
        } else {
            client.delete("main", "r", &[&a, &b]).unwrap()
        };
        let local = if insert {
            mirror.insert_tuple("r", &[&a, &b]).unwrap()
        } else {
            mirror.delete_tuple("r", &[&a, &b]).unwrap()
        };
        assert_eq!(receipt.changed, local as u64, "receipt/mirror divergence");
        assert_eq!(receipt.mutation_seq, mirror.mutation_seq());
        if local {
            states.push(mirror.clone());
        }
    }
    states
}

const FACTS: &str = "r(v0, v1). r(v1, v2). s(v1, v0). s(v2, v2).";
const QUERY: &str = "ans(A, B, C) :- r(A, B), s(B, C).";

/// Restart with no snapshot threshold: every batch must come back from
/// WAL replay alone, with the exact mutation sequence.
#[test]
fn restart_replays_wal_tail_exactly() {
    let scratch = Scratch::new("replay");
    let mut mirror = parse_database(FACTS).unwrap();
    let mut rng = Rng::seed_from_u64(11);
    let seq = {
        let handle = start(
            durable_config(scratch.path(), DurabilityPolicy::Always, 0),
            FACTS,
        );
        let mut client = Client::connect(handle.local_addr()).unwrap();
        apply_stream(&mut client, &mut mirror, &mut rng, 40);
        let d = db_summary(&mut client, "main");
        assert!(d.persisted, "db must report persistence");
        assert_eq!(d.durable_seq, d.mutation_seq, "always fsyncs every batch");
        d.mutation_seq
        // handle drops: graceful shutdown
    };
    assert_eq!(seq, mirror.mutation_seq());

    // Restart from disk only — no initial database at all. The stats
    // fingerprint is computed at install, which for a recovered db *is*
    // its recovered content.
    let handle = serve(
        durable_config(scratch.path(), DurabilityPolicy::Always, 0),
        vec![],
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let d = db_summary(&mut client, "main");
    assert_eq!(d.mutation_seq, seq, "recovered sequence must match");
    assert_eq!(
        d.fingerprint,
        mirror.fingerprint(),
        "recovered content must match the mirror"
    );
    assert!(d.recovered_records > 0, "all state came from WAL replay");
    let q = parse_query(FACTS, QUERY);
    let reply = client.count("main", QUERY, 0).unwrap();
    assert_eq!(reply.value, count_brute_force(&q, &mirror).to_string());
}

/// A small snapshot threshold truncates the log: recovery loads the
/// snapshot and replays only the records past it.
#[test]
fn snapshot_bounds_replay() {
    let scratch = Scratch::new("snap");
    let mut mirror = parse_database(FACTS).unwrap();
    let mut rng = Rng::seed_from_u64(22);
    {
        let handle = start(
            durable_config(scratch.path(), DurabilityPolicy::Batch, 8),
            FACTS,
        );
        let mut client = Client::connect(handle.local_addr()).unwrap();
        apply_stream(&mut client, &mut mirror, &mut rng, 30);
    }
    let handle = serve(
        durable_config(scratch.path(), DurabilityPolicy::Batch, 8),
        vec![],
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let d = db_summary(&mut client, "main");
    assert_eq!(d.mutation_seq, mirror.mutation_seq());
    assert_eq!(d.fingerprint, mirror.fingerprint());
    assert!(
        d.recovered_records < 8,
        "snapshots must bound replay, got {} records",
        d.recovered_records
    );
}

/// Cuts the WAL at *every* byte offset of its tail region and restarts:
/// recovery must never panic and must land exactly on the state after
/// some acked prefix of batches (the longest whose records survived
/// whole). Uses `off` so the full stream is in the log.
#[test]
fn torn_tail_recovers_a_clean_prefix_at_every_offset() {
    let scratch = Scratch::new("torn");
    let mut mirror = parse_database(FACTS).unwrap();
    let mut rng = Rng::seed_from_u64(33);
    let nops = 12;
    let states = {
        let handle = start(
            durable_config(scratch.path(), DurabilityPolicy::Off, 0),
            FACTS,
        );
        let mut client = Client::connect(handle.local_addr()).unwrap();
        apply_stream(&mut client, &mut mirror, &mut rng, nops)
    };
    // The per-db dir is the only subdirectory; the WAL lives inside it.
    let db_dir = std::fs::read_dir(scratch.path())
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_type().unwrap().is_dir())
        .expect("db dir")
        .path();
    let wal = std::fs::read(db_dir.join("wal.log")).unwrap();
    assert!(!wal.is_empty(), "off policy still writes the log");

    // Record boundaries, re-derived from the framing (uleb len | crc | body),
    // so each cut knows which prefix of batches must survive.
    let mut ends = vec![0usize];
    let mut pos = 0usize;
    while pos < wal.len() {
        let mut len = 0u64;
        let mut shift = 0;
        loop {
            let b = wal[pos];
            pos += 1;
            len |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                break;
            }
            shift += 7;
        }
        pos += 4 + len as usize;
        ends.push(pos);
    }
    assert_eq!(
        ends.len(),
        states.len(),
        "one record per effective batch (no-ops append nothing)"
    );
    assert!(ends.len() > 4, "the stream must produce enough records");

    // Every byte offset in the last three records' span, plus 0.
    let start_cut = ends[ends.len() - 4];
    let cuts: Vec<usize> = std::iter::once(0).chain(start_cut..wal.len()).collect();
    for cut in cuts {
        std::fs::write(db_dir.join("wal.log"), &wal[..cut]).unwrap();
        let prefix = ends.iter().filter(|&&e| e <= cut && e > 0).count();
        let handle = serve(
            durable_config(scratch.path(), DurabilityPolicy::Off, 0),
            vec![],
        )
        .unwrap();
        let mut client = Client::connect(handle.local_addr()).unwrap();
        let d = db_summary(&mut client, "main");
        assert_eq!(
            d.fingerprint,
            states[prefix].fingerprint(),
            "cut at byte {cut}: expected the state after {prefix} records"
        );
        assert_eq!(d.mutation_seq, states[prefix].mutation_seq());
        handle.shutdown();
        // Recovery truncated the file to the last whole record; restore
        // the full log for the next cut.
        assert!(std::fs::metadata(db_dir.join("wal.log")).unwrap().len() <= cut as u64);
    }
}

/// Flipping a byte *inside* an interior record is corruption, not a torn
/// tail: recovery truncates at the previous record boundary and still
/// serves, never panics.
#[test]
fn corrupt_interior_record_truncates_and_serves() {
    let scratch = Scratch::new("corrupt");
    let mut mirror = parse_database(FACTS).unwrap();
    let mut rng = Rng::seed_from_u64(44);
    let states = {
        let handle = start(
            durable_config(scratch.path(), DurabilityPolicy::Off, 0),
            FACTS,
        );
        let mut client = Client::connect(handle.local_addr()).unwrap();
        apply_stream(&mut client, &mut mirror, &mut rng, 10)
    };
    let db_dir = std::fs::read_dir(scratch.path())
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_type().unwrap().is_dir())
        .unwrap()
        .path();
    let mut wal = std::fs::read(db_dir.join("wal.log")).unwrap();
    let mid = wal.len() / 2;
    wal[mid] ^= 0xff;
    std::fs::write(db_dir.join("wal.log"), &wal).unwrap();

    let handle = serve(
        durable_config(scratch.path(), DurabilityPolicy::Off, 0),
        vec![],
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let d = db_summary(&mut client, "main");
    let prefix = states
        .iter()
        .position(|s| s.fingerprint() == d.fingerprint)
        .expect("recovered state must be the state after some record prefix");
    assert!(
        prefix < states.len() - 1,
        "a corrupted interior byte cannot preserve the full stream"
    );
    // The served count is the brute-force count of whatever prefix
    // recovery landed on — never a torn/garbled hybrid.
    let q = parse_query(FACTS, QUERY);
    let reply = client.count("main", QUERY, 0).unwrap();
    assert_eq!(
        reply.value,
        count_brute_force(&q, &states[prefix]).to_string()
    );
}

/// Injected WAL write failures: the failing batch rolls back atomically,
/// the database degrades to read-only (`ErrorCode::ReadOnly`, not
/// retryable), counts keep serving, and a successful `SYNC` heals it.
#[test]
fn wal_write_failure_degrades_to_read_only_and_sync_heals() {
    let scratch = Scratch::new("readonly");
    let config = ServerConfig {
        wal_fail_after: Some(3),
        ..durable_config(scratch.path(), DurabilityPolicy::Always, 0)
    };
    let handle = start(config, FACTS);
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let mut mirror = parse_database(FACTS).unwrap();
    for i in 0..3 {
        let v = format!("x{i}");
        client.insert("main", "r", &[&v, &v]).unwrap();
        mirror.insert_tuple("r", &[&v, &v]).unwrap();
    }

    // The 4th append fails: rolled back, read-only, not retryable.
    let err = client.insert("main", "r", &["y", "y"]).unwrap_err();
    match err {
        ClientError::Server { code, message, .. } => {
            assert_eq!(code, ErrorCode::ReadOnly, "{message}");
            assert!(message.contains("read-only"), "{message}");
        }
        other => panic!("expected a server error, got {other}"),
    }
    let d = db_summary(&mut client, "main");
    assert!(d.read_only, "stats must flag the degradation");
    assert_eq!(
        d.mutation_seq,
        mirror.mutation_seq(),
        "failed batch must be rolled back"
    );

    // Counts keep serving the last consistent state.
    let q = parse_query(FACTS, QUERY);
    let reply = client.count("main", QUERY, 0).unwrap();
    assert_eq!(reply.value, count_brute_force(&q, &mirror).to_string());

    // Further mutations answer ReadOnly without touching state.
    let err = client.delete("main", "r", &["x0", "x0"]).unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server {
            code: ErrorCode::ReadOnly,
            ..
        }
    ));

    // SYNC snapshots without appending, so it succeeds and heals.
    let receipt = client.sync("main").unwrap();
    assert_eq!(receipt.durable_seq, mirror.mutation_seq());
    let d = db_summary(&mut client, "main");
    assert!(!d.read_only, "a successful snapshot cycle heals the flag");
}

/// `off` policy: `durable_seq` lags until `SYNC` forces a snapshot; the
/// snapshot empties the WAL, and a restart needs no replay.
#[test]
fn sync_advances_durable_seq_and_truncates_the_log() {
    let scratch = Scratch::new("sync");
    let mut mirror = parse_database(FACTS).unwrap();
    let mut rng = Rng::seed_from_u64(55);
    {
        let handle = start(
            durable_config(scratch.path(), DurabilityPolicy::Off, 0),
            FACTS,
        );
        let mut client = Client::connect(handle.local_addr()).unwrap();
        apply_stream(&mut client, &mut mirror, &mut rng, 15);
        let d = db_summary(&mut client, "main");
        assert_eq!(d.durable_seq, 0, "off never fsyncs on the mutation path");
        let receipt = client.sync("main").unwrap();
        assert_eq!(receipt.mutation_seq, mirror.mutation_seq());
        assert_eq!(receipt.durable_seq, mirror.mutation_seq());
        let d = db_summary(&mut client, "main");
        assert_eq!(d.durable_seq, d.mutation_seq);
    }
    let db_dir = std::fs::read_dir(scratch.path())
        .unwrap()
        .filter_map(Result::ok)
        .find(|e| e.file_type().unwrap().is_dir())
        .unwrap()
        .path();
    assert_eq!(
        std::fs::metadata(db_dir.join("wal.log")).unwrap().len(),
        0,
        "the snapshot truncates the log"
    );
    let handle = serve(
        durable_config(scratch.path(), DurabilityPolicy::Off, 0),
        vec![],
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let d = db_summary(&mut client, "main");
    assert_eq!(d.recovered_records, 0, "everything came from the snapshot");
    assert_eq!(d.fingerprint, mirror.fingerprint());
    assert_eq!(d.mutation_seq, mirror.mutation_seq());
}

/// `SYNC` against a server with no `--data-dir` answers honestly:
/// `durable_seq` 0, nothing on disk.
#[test]
fn sync_without_data_dir_reports_nothing_durable() {
    let handle = start(ServerConfig::default(), FACTS);
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.insert("main", "r", &["a", "b"]).unwrap();
    let receipt = client.sync("main").unwrap();
    assert_eq!(receipt.durable_seq, 0);
    assert_eq!(receipt.mutation_seq, 1);
    let d = db_summary(&mut client, "main");
    assert!(!d.persisted);
}

/// The satellite race: `RELOAD` racing in-flight `MUTATE` on the same
/// database. After the dust settles, a final reload must serve exactly
/// its own facts — mutations from the dead epoch must not leak in, and
/// orphaned materializations must not resurrect as warm counts.
#[test]
fn reload_racing_mutations_converges_to_reloaded_state() {
    let scratch = Scratch::new("race");
    let handle = std::sync::Arc::new(start(
        durable_config(scratch.path(), DurabilityPolicy::Batch, 0),
        FACTS,
    ));
    let addr = handle.local_addr();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Writer threads hammer mutations; a reload can land between an op's
    // admission and its lock acquisition, so UnknownDb/epoch races must
    // surface as clean replies (any error other than a transport one).
    let writers: Vec<_> = (0..2)
        .map(|t| {
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut rng = Rng::seed_from_u64(600 + t);
                let mut acked = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let a = format!("w{}", rng.below(5));
                    let b = format!("w{}", rng.below(5));
                    match client.insert("main", "r", &[&a, &b]) {
                        Ok(_) => acked += 1,
                        Err(ClientError::Server { .. }) => {}
                        Err(e) => panic!("transport failure mid-race: {e}"),
                    }
                }
                acked
            })
        })
        .collect();

    // Interleave reloads and warm counts from the main thread.
    let mut client = Client::connect(addr).unwrap();
    for round in 0..6 {
        let facts = format!("r(v0, v{round}). r(v1, v2). s(v1, v0). s(v2, v2).");
        client.reload("main", &facts).unwrap();
        let _ = client.count("main", QUERY, 0).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in writers {
        let acked = w.join().unwrap();
        assert!(acked > 0, "the race must actually exercise mutations");
    }

    // The final reload defines the state exactly.
    client.reload("main", FACTS).unwrap();
    let q = parse_query(FACTS, QUERY);
    let expected = count_brute_force(&q, &parse_database(FACTS).unwrap()).to_string();
    let reply = client.count("main", QUERY, 0).unwrap();
    assert_eq!(reply.value, expected, "dead-epoch mutations leaked in");
    assert_ne!(
        reply.cached,
        CacheTier::CountWarm,
        "a pre-reload materialization must not resurrect as a warm hit"
    );

    // One more mutation on the fresh epoch stays exact.
    client.insert("main", "r", &["zz", "v1"]).unwrap();
    let mut mirror = parse_database(FACTS).unwrap();
    mirror.insert_tuple("r", &["zz", "v1"]).unwrap();
    let reply = client.count("main", QUERY, 0).unwrap();
    assert_eq!(reply.value, count_brute_force(&q, &mirror).to_string());

    // And the raced, reloaded, mutated state survives a restart.
    drop(client);
    match std::sync::Arc::try_unwrap(handle) {
        Ok(h) => h.shutdown(),
        Err(_) => panic!("all clients dropped"),
    }
    let handle = serve(
        durable_config(scratch.path(), DurabilityPolicy::Batch, 0),
        vec![],
    )
    .unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let reply = client.count("main", QUERY, 0).unwrap();
    assert_eq!(reply.value, count_brute_force(&q, &mirror).to_string());
}
