//! Table-driven robustness tests for the wire format: every prefix of a
//! valid COUNT frame and every length-field corruption must decode to a
//! clean error (or a clean partial-read), never a panic or an unbounded
//! allocation.

use cqcount_server::protocol::{read_frame, Frame, Request, Response, MAGIC, MAX_PAYLOAD, V4};
use std::io::Cursor;

/// A canonical COUNT frame as raw bytes.
fn count_frame_bytes() -> Vec<u8> {
    let req = Request::Count {
        db: "main".into(),
        query: "ans(X, Y) :- r(X, Y), s(Y, Z).".into(),
        budget_ms: 250,
    };
    let mut bytes = Vec::new();
    req.write_to(&mut bytes).unwrap();
    bytes
}

/// Parses a byte string as a frame stream: the outcome the server-side
/// read loop would observe. Must never panic.
fn parse(bytes: &[u8]) -> Result<Option<Frame>, String> {
    let mut cur = Cursor::new(bytes);
    read_frame(&mut cur).map_err(|e| e.to_string())
}

/// Byte offset where the ULEB payload length starts: magic (2) +
/// version (1) + opcode (1).
const LEN_OFFSET: usize = 4;

#[test]
fn every_prefix_of_a_valid_count_frame_is_handled_cleanly() {
    let frame = count_frame_bytes();
    assert!(frame.len() > LEN_OFFSET + 1, "fixture frame too small");
    for cut in 0..frame.len() {
        let prefix = &frame[..cut];
        match parse(prefix) {
            // EOF before any byte: the clean-close case.
            Ok(None) => assert_eq!(cut, 0, "only the empty prefix is a clean close"),
            // A full frame can only appear at full length.
            Ok(Some(_)) => panic!("prefix of {cut} bytes parsed as a whole frame"),
            // Mid-frame truncation: a clean error, by construction of the
            // length-prefixed format.
            Err(msg) => assert!(!msg.is_empty(), "cut={cut}"),
        }
    }
    // And the uncut frame round-trips.
    let whole = parse(&frame).unwrap().expect("whole frame parses");
    assert!(Request::decode(&whole).is_ok());
}

#[test]
fn every_single_byte_corruption_is_handled_cleanly() {
    let frame = count_frame_bytes();
    for i in 0..frame.len() {
        for value in [0x00, 0x01, 0x7f, 0x80, 0xff] {
            let mut mutated = frame.clone();
            if mutated[i] == value {
                continue;
            }
            mutated[i] = value;
            // Whatever happens, it happens cleanly: either a read error, a
            // decode error, or a (different) frame that decodes.
            if let Ok(Some(f)) = parse(&mutated) {
                let _ = Request::decode(&f);
                let _ = Response::decode(&f);
            }
        }
    }
}

#[test]
fn corrupt_magic_and_version_are_rejected() {
    let frame = count_frame_bytes();
    for (i, expect) in [(0usize, "magic"), (1, "magic"), (2, "version")] {
        let mut mutated = frame.clone();
        mutated[i] ^= 0xff;
        let err = parse(&mutated).expect_err("corrupt header must error");
        assert!(
            err.contains(expect),
            "byte {i}: expected an error about {expect}, got {err:?}"
        );
    }
    assert_eq!(&frame[..2], &MAGIC, "fixture layout drifted");
    assert_eq!(frame[2], V4, "write_to emits the v4 wire format");
}

#[test]
fn length_field_corruptions_never_panic_or_overallocate() {
    let frame = count_frame_bytes();
    let (header, _) = frame.split_at(LEN_OFFSET);
    // Reconstruct the payload by parsing the valid frame once.
    let valid = parse(&frame).unwrap().unwrap();
    let payload = valid.payload;

    let rebuild = |len_bytes: &[u8]| -> Vec<u8> {
        let mut f = header.to_vec();
        f.extend_from_slice(len_bytes);
        f.extend_from_slice(&payload);
        f
    };

    // A helper ULEB encoder for arbitrary declared lengths.
    let uleb = |mut v: u64| -> Vec<u8> {
        let mut out = Vec::new();
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(b);
                break;
            }
            out.push(b | 0x80);
        }
        out
    };

    // Declared length over the cap: rejected before the payload buffer is
    // allocated (this test would OOM otherwise).
    for over in [MAX_PAYLOAD as u64 + 1, u64::MAX / 2, u64::MAX] {
        let err = parse(&rebuild(&uleb(over))).expect_err("oversized length must error");
        assert!(
            err.contains("exceeds cap") || err.contains("overflow"),
            "{err:?}"
        );
    }

    // A varint that never terminates within 64 bits.
    let runaway = vec![0x80u8; 11];
    let err = parse(&rebuild(&runaway)).expect_err("runaway varint must error");
    assert!(err.contains("overflow"), "{err:?}");

    // Declared length longer than the actual payload: truncated read.
    let err =
        parse(&rebuild(&uleb(payload.len() as u64 + 17))).expect_err("short payload must error");
    assert!(!err.is_empty());

    // Declared length shorter than the actual payload: the frame parses
    // with a truncated body, and the decoder reports it cleanly.
    for shorter in [0u64, 1, payload.len() as u64 / 2] {
        if let Ok(Some(f)) = parse(&rebuild(&uleb(shorter))) {
            assert!(
                Request::decode(&f).is_err(),
                "a truncated COUNT body must not decode (declared {shorter})"
            );
        }
    }

    // Rebuilding with the true length still round-trips (the helpers are
    // not the thing under test).
    let f = parse(&rebuild(&uleb(payload.len() as u64)))
        .unwrap()
        .unwrap();
    assert!(Request::decode(&f).is_ok());
}
