//! Crash-recovery tests: a real `cqcountd` subprocess armed with a
//! seeded kill-point (`--crash-at POINT:N`) aborts mid-durability; a
//! clean restart over the same `--data-dir` must recover exactly the
//! state the fsync policy promised. With `--durability always` and
//! single-op batches the contract is sharp:
//!
//! * `pre-append` / `pre-fsync` — the dying batch was never made
//!   durable: recovery lands on exactly the acked prefix.
//! * `post-fsync` / `mid-snapshot` — the dying batch was fsynced before
//!   the ack was lost: recovery lands on acked + 1 (the lost-reply case
//!   the README procedure resolves via `durable_seq`).
//!
//! In every case: no acked batch is ever lost, no torn or corrupt
//! record survives recovery, and resubmitting the full (idempotent,
//! set-semantics) op stream converges to the uninterrupted run's state.

use cqcount_core::count_brute_force;
use cqcount_query::{parse_database, parse_program, ConjunctiveQuery};
use cqcount_relational::Database;
use cqcount_server::protocol::DbSummary;
use cqcount_server::Client;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const FACTS: &str = "r(v0, v1). r(v1, v2). s(v1, v0). s(v2, v2).";
const QUERY: &str = "ans(A, B, C) :- r(A, B), s(B, C).";

/// Planned op stream: distinct tuples (every insert effective, each
/// joins `s(v1, v0)` so every batch moves the count), and re-running the
/// whole stream is idempotent under set semantics.
const STREAM_LEN: usize = 10;

fn stream_tuple(i: usize) -> (String, String) {
    (format!("u{i}"), "v1".to_string())
}

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("cqcrash_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A running daemon subprocess, killed on drop so a failing assertion
/// never leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cqcountd"))
            .arg("--listen")
            .arg("127.0.0.1:0")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn cqcountd");
        let stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut addr = None;
        for line in stdout.lines() {
            let line = line.expect("read daemon stdout");
            if let Some(rest) = line.strip_prefix("listening on ") {
                addr = Some(rest.to_string());
                break;
            }
        }
        let addr = addr.expect("daemon printed its listen address");
        Daemon { child, addr }
    }

    /// Waits for the process to die on its own (the kill-point abort).
    fn wait_for_abort(&mut self) {
        let status = self.child.wait().expect("wait for daemon");
        assert!(
            !status.success(),
            "the armed daemon must die by abort, got {status:?}"
        );
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn parse_query() -> ConjunctiveQuery {
    let (q, _) = parse_program(&format!("{FACTS}\n{QUERY}")).unwrap();
    q.unwrap()
}

fn db_summary(client: &mut Client) -> DbSummary {
    client
        .stats()
        .unwrap()
        .dbs
        .into_iter()
        .find(|d| d.name == "main")
        .expect("db present in stats")
}

/// Drives one full crash → recover → resume cycle and checks the exact
/// durability contract for the kill point.
///
/// * `crash_at` — the `--crash-at POINT:N` spec arming the first run.
/// * `extra` — additional daemon flags (e.g. `--snapshot-every`).
/// * `expect_acked` — inserts the client must see acknowledged before
///   the connection dies.
/// * `expect_recovered` — effective batches the restarted daemon must
///   hold (`acked` when the dying batch never hit disk, `acked + 1`
///   when it was fsynced but unacked).
fn crash_case(tag: &str, crash_at: &str, extra: &[&str], expect_acked: u64, expect_recovered: u64) {
    let scratch = Scratch::new(tag);
    let data_dir = scratch.path().join("data");
    let facts_file = scratch.path().join("facts.dl");
    std::fs::write(&facts_file, FACTS).unwrap();
    let db_spec = format!("main={}", facts_file.display());
    let data_spec = data_dir.display().to_string();
    let base_args = ["--data-dir", &data_spec, "--durability", "always"];

    // Per-record mirror states: index i is the database after i
    // effective batches (every planned insert is effective).
    let mut states = vec![parse_database(FACTS).unwrap()];
    for i in 0..STREAM_LEN {
        let mut next: Database = states[i].clone();
        let (a, b) = stream_tuple(i);
        assert!(next.insert_tuple("r", &[&a, &b]).unwrap());
        states.push(next);
    }

    // Phase 1: armed run. Insert until the kill-point takes the process
    // down mid-request.
    let mut armed = Daemon::spawn(
        &[
            &base_args[..],
            &["--db", &db_spec, "--crash-at", crash_at],
            extra,
        ]
        .concat(),
    );
    let mut client = Client::connect(armed.addr.as_str()).unwrap();
    let mut acked = 0u64;
    for i in 0..STREAM_LEN {
        let (a, b) = stream_tuple(i);
        match client.insert("main", "r", &[&a, &b]) {
            Ok(receipt) => {
                assert_eq!(receipt.changed, 1);
                assert_eq!(receipt.mutation_seq, acked + 1);
                acked += 1;
            }
            Err(_) => break,
        }
    }
    assert_eq!(acked, expect_acked, "{tag}: acked prefix before the crash");
    armed.wait_for_abort();

    // Phase 2: clean restart over the same data dir, no `--db` — the
    // database must come back from the snapshot + WAL tail alone.
    let recovered = Daemon::spawn(&base_args);
    let mut client = Client::connect(recovered.addr.as_str()).unwrap();
    let d = db_summary(&mut client);
    assert!(
        d.mutation_seq >= acked,
        "{tag}: an acknowledged batch was lost ({} < {acked})",
        d.mutation_seq
    );
    assert_eq!(
        d.mutation_seq, expect_recovered,
        "{tag}: recovered sequence"
    );
    let expected = &states[expect_recovered as usize];
    assert_eq!(
        d.fingerprint,
        expected.fingerprint(),
        "{tag}: recovered content must be the state after {expect_recovered} batches"
    );
    let q = parse_query();
    let reply = client.count("main", QUERY, 0).unwrap();
    assert_eq!(reply.value, count_brute_force(&q, expected).to_string());

    // Recovery must have been clean: nothing corrupt, nothing torn (the
    // dying record either reached the disk whole or not at all).
    let metrics = client.metrics().unwrap();
    for line in [
        "cqcount_recovery_corrupt_records_total 0",
        "cqcount_recovery_torn_tails_total 0",
    ] {
        assert!(
            metrics.contains(line),
            "{tag}: expected {line:?} in metrics"
        );
    }

    // Phase 3: resume by resubmitting the full stream (set semantics:
    // already-recovered inserts are no-ops). The end state must equal
    // the uninterrupted run's.
    for i in 0..STREAM_LEN {
        let (a, b) = stream_tuple(i);
        client.insert("main", "r", &[&a, &b]).unwrap();
    }
    let final_state = &states[STREAM_LEN];
    let d = db_summary(&mut client);
    assert_eq!(d.mutation_seq, STREAM_LEN as u64);
    assert_eq!(
        d.durable_seq, STREAM_LEN as u64,
        "always fsyncs every batch"
    );
    let reply = client.count("main", QUERY, 0).unwrap();
    assert_eq!(reply.value, count_brute_force(&q, final_state).to_string());
}

/// Abort before the WAL append: the dying batch left no trace.
#[test]
fn crash_pre_append_recovers_the_acked_prefix() {
    crash_case("preappend", "pre-append:6", &[], 5, 5);
}

/// Abort after the (buffered) append but before fsync: the record dies
/// in the process's write buffer, so it must NOT survive.
#[test]
fn crash_pre_fsync_loses_only_the_unacked_batch() {
    crash_case("prefsync", "pre-fsync:6", &[], 5, 5);
}

/// Abort between fsync and acknowledgement: the batch is durable but
/// the client never heard — the canonical lost-reply case.
#[test]
fn crash_post_fsync_keeps_the_fsynced_batch() {
    crash_case("postfsync", "post-fsync:6", &[], 5, 6);
}

/// Abort mid-snapshot (after the temp file, before the rename). The
/// WAL was fsynced before the snapshot started, so the triggering batch
/// survives via replay, and the half-written snapshot must be ignored.
/// Kill-point #2 because the boot-time install writes snapshot #1.
#[test]
fn crash_mid_snapshot_replays_the_wal_past_the_torn_snapshot() {
    crash_case(
        "midsnap",
        "mid-snapshot:2",
        &["--snapshot-every", "4"],
        3,
        4,
    );
}
