//! Mutation e2e tests: seeded INSERT/DELETE streams against a real
//! `cqcountd`, every incremental count cross-checked against a
//! from-scratch brute-force recount on a mirror database driven through
//! the same `cqcount-relational` mutation API. Covers the acceptance
//! bars: zero parity mismatches on acyclic (maintained) and width-2
//! cyclic (invalidate-only) workloads, surgical cache invalidation that
//! spares unrelated queries and every cached plan, and exact fault-event
//! replay of a mutation stream under the chaos profile.
//!
//! Tier-1 runs a fast subset of each stream; the `exhaustive-tests`
//! feature widens them to the full 1k-op acceptance streams.

use cqcount_arith::prng::Rng;
use cqcount_core::count_brute_force;
use cqcount_query::{parse_database, parse_program, ConjunctiveQuery};
use cqcount_relational::Database;
use cqcount_server::faults::FaultProfile;
use cqcount_server::protocol::CacheTier;
use cqcount_server::{serve, Client, ClientError, ClientOptions, ServerConfig, ServerHandle};

/// Ops per stream: the acceptance criterion's 1k under `exhaustive-tests`,
/// a fast-but-representative prefix in tier-1.
fn stream_len(full: usize, fast: usize) -> usize {
    if cfg!(feature = "exhaustive-tests") {
        full
    } else {
        fast
    }
}

fn start(config: ServerConfig, facts: &str) -> ServerHandle {
    let db = parse_database(facts).unwrap();
    serve(config, vec![("main".into(), db)]).expect("bind loopback")
}

fn parse_query(facts: &str, query: &str) -> ConjunctiveQuery {
    let (q, _) = parse_program(&format!("{facts}\n{query}")).unwrap();
    q.unwrap()
}

/// One relation schema in a random stream: name, arity, and the value
/// domain size. Small domains make duplicate inserts and absent deletes
/// common, which is exactly what exercises the dedup index and the
/// effective-op accounting.
struct RelSchema {
    name: &'static str,
    arity: usize,
    domain: u64,
}

/// Draws one random op, applies it to the server and to the mirror, and
/// checks the receipt agrees with the mirror about whether the tuple
/// actually changed.
fn random_op(
    rng: &mut Rng,
    rels: &[RelSchema],
    client: &mut Client,
    mirror: &mut Database,
) -> bool {
    let rel = &rels[rng.below(rels.len() as u64) as usize];
    let insert = rng.below(3) < 2; // insert-leaning so the instance grows
    let values: Vec<String> = (0..rel.arity)
        .map(|_| format!("v{}", rng.below(rel.domain)))
        .collect();
    let refs: Vec<&str> = values.iter().map(String::as_str).collect();
    let receipt = if insert {
        client.insert("main", rel.name, &refs).unwrap()
    } else {
        client.delete("main", rel.name, &refs).unwrap()
    };
    let local = if insert {
        mirror.insert_tuple(rel.name, &refs).unwrap()
    } else {
        mirror.delete_tuple(rel.name, &refs).unwrap()
    };
    assert_eq!(
        receipt.changed,
        local as u64,
        "server and mirror disagree about op effectiveness: {} {rel_name}({values:?})",
        if insert { "insert" } else { "delete" },
        rel_name = rel.name,
    );
    assert_eq!(
        receipt.mutation_seq,
        mirror.mutation_seq(),
        "mutation_seq diverged"
    );
    local
}

/// Acyclic stream: the query is full and α-acyclic, so the server pins a
/// materialization after the first cold count and every mutation patches
/// it along the bag path. From the second count on, every count must be
/// a cache hit (the republished maintained count) *and* exactly equal the
/// brute-force recount of the mirror.
#[test]
fn acyclic_mutation_stream_keeps_counts_exact_and_warm() {
    let facts = "r(v0, v1). r(v1, v2). s(v1, v0). s(v2, v2). t(v2). t(v0).";
    let query = "ans(A, B, C) :- r(A, B), s(B, C), t(C).";
    let handle = start(ServerConfig::default(), facts);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let mut mirror = parse_database(facts).unwrap();
    let q = parse_query(facts, query);

    let rels = [
        RelSchema {
            name: "r",
            arity: 2,
            domain: 6,
        },
        RelSchema {
            name: "s",
            arity: 2,
            domain: 6,
        },
        RelSchema {
            name: "t",
            arity: 1,
            domain: 6,
        },
    ];

    // The first count is cold and pins the materialization.
    let first = client.count("main", query, 0).unwrap();
    assert_eq!(first.cached, CacheTier::Cold);
    assert_eq!(first.value, count_brute_force(&q, &mirror).to_string());

    let mut rng = Rng::seed_from_u64(0xACC1C);
    for i in 0..stream_len(1000, 150) {
        random_op(&mut rng, &rels, &mut client, &mut mirror);
        let reply = client.count("main", query, 0).unwrap();
        assert_eq!(
            reply.value,
            count_brute_force(&q, &mirror).to_string(),
            "op {i}: incremental count diverged from brute-force recount"
        );
        assert_eq!(
            reply.cached,
            CacheTier::CountWarm,
            "op {i}: a maintained query must be served from the republished count"
        );
    }

    // The whole stream was absorbed incrementally: the delta path ran and
    // never once fell back to dropping the materialization.
    let stats = client.stats().unwrap();
    assert!(stats.mutations_applied > 0);
    assert!(
        stats.delta_bags_touched > 0,
        "no bags were patched: {stats:?}"
    );
    assert_eq!(stats.delta_fallbacks, 0, "delta fallback on a clean stream");
    handle.shutdown();
}

/// Width-2 cyclic stream (triangle query): not maintainable, so every
/// mutation takes the invalidation path — the next count re-runs under
/// the cached plan and must still match brute force exactly.
#[test]
fn cyclic_mutation_stream_keeps_counts_exact_via_invalidation() {
    let facts = "e(v0, v1). e(v1, v2). e(v2, v0). e(v1, v0).";
    let query = "ans(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X).";
    let handle = start(ServerConfig::default(), facts);
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    let mut mirror = parse_database(facts).unwrap();
    let q = parse_query(facts, query);

    let rels = [RelSchema {
        name: "e",
        arity: 2,
        domain: 5,
    }];

    assert_eq!(
        client.count("main", query, 0).unwrap().cached,
        CacheTier::Cold
    );

    let mut rng = Rng::seed_from_u64(0xC_2C1C);
    let mut effective_ops = 0u64;
    let mut plan_warm_recounts = 0u64;
    for i in 0..stream_len(1000, 150) {
        let effective = random_op(&mut rng, &rels, &mut client, &mut mirror);
        effective_ops += u64::from(effective);
        let reply = client.count("main", query, 0).unwrap();
        assert_eq!(
            reply.value,
            count_brute_force(&q, &mirror).to_string(),
            "op {i}: post-mutation count diverged from brute-force recount"
        );
        // An effective op invalidates the cached count; the recount runs
        // under the still-cached plan. A no-op leaves the count warm.
        if effective {
            assert_eq!(reply.cached, CacheTier::PlanWarm, "op {i}");
            plan_warm_recounts += 1;
        } else {
            assert_eq!(reply.cached, CacheTier::CountWarm, "op {i}");
        }
    }
    assert!(effective_ops > 0, "the stream never changed the instance");
    assert!(plan_warm_recounts > 0);

    // Plans are data-independent and must survive every mutation: the
    // query was planned exactly once, all recounts hit the plan cache.
    let stats = client.stats().unwrap();
    assert_eq!(stats.plan_misses, 1, "a mutation evicted a plan: {stats:?}");
    assert_eq!(
        stats.delta_bags_touched, 0,
        "cyclic queries are never maintained"
    );
    handle.shutdown();
}

/// Surgical invalidation: a mutation touching relation `r` must leave
/// cached counts over `s` untouched (still count-cache hits), republish
/// the maintained count over `r` (warm *and* fresh), and force exactly a
/// plan-warm recount for an unmaintainable query over `r`.
#[test]
fn mutation_invalidates_only_dependent_counts_and_never_plans() {
    let facts = "r(a, b). r(b, c). s(a, a). s(b, c). s(c, a).";
    let q_r = "ans(X, Y) :- r(X, Y).";
    let q_s = "ans(X, Y) :- s(X, Y).";
    let q_r_cyclic = "ans(X, Y, Z) :- r(X, Y), r(Y, Z), r(Z, X).";
    let handle = start(ServerConfig::default(), facts);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    // Warm all three: q_r is maintained, q_s is independent of r, and the
    // cyclic query over r is cached but not maintainable.
    for q in [q_r, q_s, q_r_cyclic] {
        assert_eq!(client.count("main", q, 0).unwrap().cached, CacheTier::Cold);
        assert_eq!(
            client.count("main", q, 0).unwrap().cached,
            CacheTier::CountWarm
        );
    }
    let s_before = client.count("main", q_s, 0).unwrap();
    let plan_misses_before = client.stats().unwrap().plan_misses;

    let receipt = client.insert("main", "r", &["c", "a"]).unwrap();
    assert_eq!(receipt.changed, 1);

    // s-count: untouched relation, the cache entry survived the sweep.
    let s_after = client.count("main", q_s, 0).unwrap();
    assert_eq!(s_after.cached, CacheTier::CountWarm);
    assert_eq!(s_after.value, s_before.value);

    // r-count: maintained, so the *new* value is already in the cache.
    let r_after = client.count("main", q_r, 0).unwrap();
    assert_eq!(r_after.cached, CacheTier::CountWarm);
    assert_eq!(r_after.value, "3");

    // Cyclic r-query: count invalidated, plan survived — the triangle
    // a→b→c→a now exists (closed by the insert, counted 3 rotations).
    let cyc_after = client.count("main", q_r_cyclic, 0).unwrap();
    assert_eq!(cyc_after.cached, CacheTier::PlanWarm);
    assert_eq!(cyc_after.value, "3");

    // No plan was re-derived anywhere in the episode.
    assert_eq!(client.stats().unwrap().plan_misses, plan_misses_before);
    handle.shutdown();
}

/// A deleted tuple's revival: insert → delete → insert of the same tuple
/// must land on the maintained path with exact counts throughout (the
/// delta layer keeps zero-count rows for exactly this).
#[test]
fn delete_then_reinsert_round_trips_the_maintained_count() {
    let facts = "r(a, b). s(b, c).";
    let query = "ans(X, Y, Z) :- r(X, Y), s(Y, Z).";
    let handle = start(ServerConfig::default(), facts);
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    assert_eq!(client.count("main", query, 0).unwrap().value, "1");
    for (expect, op, value) in [
        ("2", "insert", ["b", "d"]),
        ("1", "delete", ["b", "d"]),
        ("2", "insert", ["b", "d"]),
    ] {
        let receipt = if op == "insert" {
            client.insert("main", "s", &value).unwrap()
        } else {
            client.delete("main", "s", &value).unwrap()
        };
        assert_eq!(receipt.changed, 1);
        let reply = client.count("main", query, 0).unwrap();
        assert_eq!(reply.value, expect);
        assert_eq!(reply.cached, CacheTier::CountWarm);
    }
    assert_eq!(client.stats().unwrap().delta_fallbacks, 0);
    handle.shutdown();
}

/// The chaos acceptance bar for mutations: a seeded fault profile, a
/// scripted mutation stream, zero wrong counts, and an exactly replayable
/// (outcomes, fault events) trace. Mutations are never retried — after a
/// transport-errored op the script reconciles its mirror against the
/// server's per-db tuple count (the documented recovery procedure for the
/// non-idempotent opcodes) and goes on.
#[test]
fn chaos_mutation_stream_replays_exactly_with_zero_wrong_counts() {
    fn chaos_profile() -> FaultProfile {
        FaultProfile {
            label: "mutation-chaos",
            io_gap: 24,
            short_weight: 6,
            latency_weight: 2,
            disconnect_weight: 1,
            latency_max_ms: 1,
            worker_panic_p: 0.08,
            cap_trip_p: 0.0,
        }
    }

    fn scripted_run(seed: u64) -> (Vec<String>, Vec<cqcount_server::FaultEvent>) {
        let facts = "r(v0, v1). s(v1, v2).";
        let query = "ans(A, B, C) :- r(A, B), s(B, C).";
        let db = parse_database(facts).unwrap();
        let handle = serve(
            ServerConfig {
                fault_profile: chaos_profile(),
                fault_seed: seed,
                read_timeout_ms: 5_000,
                write_timeout_ms: 5_000,
                ..ServerConfig::default()
            },
            vec![("main".into(), db)],
        )
        .expect("bind loopback");
        let mut client = Client::connect_with(
            handle.local_addr(),
            ClientOptions {
                retries: 8,
                backoff_base_ms: 2,
                io_timeout_ms: 5_000,
                retry_seed: 7,
                ..ClientOptions::default()
            },
        )
        .expect("connect");
        let mut mirror = parse_database(facts).unwrap();
        let q = parse_query(facts, query);
        let rels = [
            RelSchema {
                name: "r",
                arity: 2,
                domain: 4,
            },
            RelSchema {
                name: "s",
                arity: 2,
                domain: 4,
            },
        ];

        let mut rng = Rng::seed_from_u64(seed ^ 0x5EED);
        let mut outcomes = Vec::new();
        for i in 0..stream_len(300, 60) {
            let rel = &rels[rng.below(rels.len() as u64) as usize];
            let insert = rng.below(3) < 2;
            let values: Vec<String> = (0..rel.arity)
                .map(|_| format!("v{}", rng.below(rel.domain)))
                .collect();
            let refs: Vec<&str> = values.iter().map(String::as_str).collect();
            let result = if insert {
                client.insert("main", rel.name, &refs)
            } else {
                client.delete("main", rel.name, &refs)
            };
            match result {
                Ok(receipt) => {
                    let local = if insert {
                        mirror.insert_tuple(rel.name, &refs).unwrap()
                    } else {
                        mirror.delete_tuple(rel.name, &refs).unwrap()
                    };
                    assert_eq!(receipt.changed, local as u64, "op {i} (seed {seed})");
                    outcomes.push(format!("ok:{}", receipt.changed));
                }
                // An injected worker panic rejects the op *before* it
                // applies; a transport fault may have eaten the reply to
                // an op that landed. Either way: reconcile the mirror
                // against the server's tuple count, never guess.
                Err(ClientError::Server { code, .. }) => outcomes.push(format!("err:{code:?}")),
                Err(_) => {
                    let tuples = client
                        .stats()
                        .expect("stats must succeed under retries")
                        .dbs
                        .iter()
                        .find(|d| d.name == "main")
                        .expect("main db")
                        .tuples;
                    if tuples != mirror.total_tuples() as u64 {
                        let landed = if insert {
                            mirror.insert_tuple(rel.name, &refs).unwrap()
                        } else {
                            mirror.delete_tuple(rel.name, &refs).unwrap()
                        };
                        assert!(landed, "reconciliation applied a no-op (seed {seed})");
                    }
                    assert_eq!(tuples, mirror.total_tuples() as u64, "op {i} (seed {seed})");
                    outcomes.push("transport".into());
                }
            }
            // Every fifth op, cross-check the live count against a
            // from-scratch recount of the reconciled mirror.
            if i % 5 == 4 {
                let reply = client.count("main", query, 0).expect("count under retries");
                assert_eq!(
                    reply.value,
                    count_brute_force(&q, &mirror).to_string(),
                    "op {i}: wrong count under chaos (seed {seed})"
                );
                outcomes.push(format!("count:{}", reply.value));
            }
        }
        let events = handle.fault_events();
        handle.shutdown();
        (outcomes, events)
    }

    let (outcomes_a, events_a) = scripted_run(1306);
    let (outcomes_b, events_b) = scripted_run(1306);
    assert_eq!(outcomes_a, outcomes_b, "chaos outcomes must replay exactly");
    assert_eq!(events_a, events_b, "fault events must replay exactly");
    assert!(!events_a.is_empty(), "the chaos profile never bit");
}
