//! End-to-end observability tests: `PROFILE` span trees, the degraded
//! root tag, `METRICS` exposition consistency, and `--trace-log` JSONL
//! output — all over a real loopback server.

use cqcount_query::parse_database;
use cqcount_server::protocol::CacheTier;
use cqcount_server::{serve, Client, ServerConfig, ServerHandle, SpanNode};

/// A width-2 cycle query (the triangle): no single atom covers the cycle,
/// so the planner needs a genuine width-2 decomposition.
const CYCLE_Q: &str = "ans(X, Y, Z) :- r(X, Y), s(Y, Z), t(Z, X).";

/// A sparse instance for the triangle: enough tuples that the count does
/// real kernel work, small enough to stay fast on one core. With offsets
/// {1, 2, 5} over Z_30 the `d = 5` lane closes (5 + 2·5 + 3·5 = 30), so
/// every vertex seeds a triangle: the count is 30.
fn cycle_facts(n: u64) -> String {
    let mut s = String::new();
    for i in 0..n {
        for d in [1, 2, 5] {
            s.push_str(&format!("r(v{}, v{}).\n", i, (i + d) % n));
            s.push_str(&format!("s(v{}, v{}).\n", i, (i + 2 * d) % n));
            s.push_str(&format!("t(v{}, v{}).\n", i, (i + 3 * d) % n));
        }
    }
    s
}

fn start(config: ServerConfig) -> ServerHandle {
    let db = parse_database(&cycle_facts(30)).unwrap();
    serve(config, vec![("main".into(), db)]).expect("bind loopback")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(handle.local_addr()).expect("connect")
}

/// Every span name in the tree, depth-first.
fn span_names(node: &SpanNode, out: &mut Vec<String>) {
    out.push(node.name.clone());
    for c in &node.children {
        span_names(c, out);
    }
}

#[test]
fn profile_returns_the_span_tree_of_a_cold_count() {
    let handle = start(ServerConfig::default());
    let mut c = connect(&handle);

    let cold = c.profile("main", CYCLE_Q, 0).unwrap();
    assert_eq!(cold.value, "30", "triangle count over the Z_30 instance");
    assert_eq!(cold.cached, CacheTier::Cold);
    assert_eq!(cold.root.name, "request");
    assert!(
        cold.root
            .tags
            .iter()
            .any(|(k, v)| k == "op" && v == "profile"),
        "root should carry the opcode tag, got {:?}",
        cold.root.tags
    );
    assert!(
        cold.root.counters.iter().any(|(k, _)| k == "wait_ns"),
        "root should carry queue-wait attribution"
    );
    assert!(cold.total_ns > 0);
    assert_eq!(cold.root.duration_ns, cold.total_ns);

    let mut names = Vec::new();
    span_names(&cold.root, &mut names);
    for expected in ["server.parse", "server.cache_probe", "server.plan"] {
        assert!(
            names.iter().any(|n| n == expected),
            "missing {expected} span"
        );
    }
    assert!(
        names.iter().any(|n| n == "plan.decompose"),
        "a cold profile must show the decomposition search, got {names:?}"
    );
    for sub in ["plan.core", "plan.candidates", "plan.blocks"] {
        assert!(
            names.iter().any(|n| n == sub),
            "a cold profile must show the {sub} planner sub-span, got {names:?}"
        );
    }
    assert!(
        names.iter().any(|n| n.starts_with("count.")),
        "a cold profile must show the counting rung, got {names:?}"
    );

    // The top-level stages should account for (nearly) the whole request:
    // the root's only other work is span bookkeeping itself.
    let direct: u64 = cold.root.children.iter().map(|c| c.duration_ns).sum();
    assert!(
        direct as f64 >= 0.60 * cold.total_ns as f64,
        "stages cover {direct} of {} ns",
        cold.total_ns
    );
    assert!(direct <= cold.total_ns, "children cannot exceed the root");

    // The planner sub-spans must account for (nearly) the whole
    // decomposition search: the only work outside them is budget checks
    // and span bookkeeping. Gaps between spans absorb scheduler noise
    // when the test binary runs its servers in parallel, so take the best
    // of a few cold samples — that is the intrinsic coverage.
    fn find_span<'a>(node: &'a SpanNode, name: &str) -> Option<&'a SpanNode> {
        if node.name == name {
            return Some(node);
        }
        node.children.iter().find_map(|c| find_span(c, name))
    }
    let plan_coverage = |root: &SpanNode| {
        let decompose = find_span(root, "plan.decompose").unwrap();
        let planner: u64 = decompose
            .children
            .iter()
            .filter(|c| c.name.starts_with("plan."))
            .map(|c| c.duration_ns)
            .sum();
        planner as f64 / decompose.duration_ns as f64
    };
    let mut best = plan_coverage(&cold.root);
    for _ in 0..4 {
        if best >= 0.95 {
            break;
        }
        c.flush().unwrap();
        let again = c.profile("main", CYCLE_Q, 0).unwrap();
        assert_eq!(again.cached, CacheTier::Cold);
        best = best.max(plan_coverage(&again.root));
    }
    assert!(best >= 0.95, "plan.* sub-spans cover only {best:.3}");

    // The profiled count agrees with the plain COUNT path (served warm
    // from the cache the profile populated).
    let plain = c.count("main", CYCLE_Q, 0).unwrap();
    assert_eq!(plain.value, cold.value);
    assert_eq!(plain.cached, CacheTier::CountWarm);

    // Profiling a warm count yields a slim tree: probe hit, no planning.
    let warm = c.profile("main", CYCLE_Q, 0).unwrap();
    assert_eq!(warm.cached, CacheTier::CountWarm);
    let mut warm_names = Vec::new();
    span_names(&warm.root, &mut warm_names);
    assert!(warm_names.iter().any(|n| n == "server.cache_probe"));
    assert!(
        !warm_names.iter().any(|n| n == "server.plan"),
        "a count-cache hit must not replan, got {warm_names:?}"
    );

    handle.shutdown();
}

#[test]
fn degraded_count_tags_the_profile_root_with_the_reason() {
    // `plan_budget_ms: Some(0)` trips the planning budget immediately —
    // the deterministic degradation trigger from the chaos suite.
    let handle = start(ServerConfig {
        plan_budget_ms: Some(0),
        ..ServerConfig::default()
    });
    let mut c = connect(&handle);

    let r = c.profile("main", CYCLE_Q, 0).unwrap();
    assert!(r.degraded, "zero plan budget must degrade the plan");
    let tag = r
        .root
        .tags
        .iter()
        .find(|(k, _)| k == "degraded")
        .map(|(_, v)| v.clone());
    match tag {
        Some(reason) => assert!(
            reason.contains("plan budget exhausted"),
            "unexpected degradation reason {reason:?}"
        ),
        None => panic!(
            "degraded reply must tag the root span, got tags {:?}",
            r.root.tags
        ),
    }

    handle.shutdown();
}

#[test]
fn metrics_exposition_matches_the_traffic_sent() {
    let handle = start(ServerConfig::default());
    let mut c = connect(&handle);

    for _ in 0..3 {
        c.count("main", CYCLE_Q, 0).unwrap();
    }
    c.stats().unwrap();
    let text = c.metrics().unwrap();

    // One cold count (a miss) then two count-cache hits.
    for line in [
        "cqcount_requests_total{op=\"count\"} 3",
        "cqcount_requests_total{op=\"stats\"} 1",
        "cqcount_requests_total{op=\"metrics\"} 1",
        "cqcount_cache_misses_total{cache=\"count\"} 1",
        "cqcount_cache_hits_total{cache=\"count\"} 2",
        "cqcount_requests_served_total 5",
        // 4 replies written before METRICS rendered (its own latency is
        // observed after the render).
        "cqcount_request_latency_us_count 4",
    ] {
        assert!(
            text.lines().any(|l| l == line),
            "metrics text missing {line:?}:\n{text}"
        );
    }
    assert!(text.contains("# TYPE cqcount_request_latency_us histogram"));
    assert!(text.contains("cqcount_request_latency_us_bucket{le=\"+Inf\"} 4"));

    // The planner search counters are exposed on the same registry. They
    // are process-wide (shared across every server in this test binary),
    // so assert presence and that this binary's cold plans registered.
    for event in [
        "blocks_solved",
        "memo_hits",
        "negative_reuse",
        "candidates_yielded",
        "universes_opened",
        "widths_searched",
    ] {
        assert!(
            text.contains(&format!(
                "cqcount_planner_events_total{{event=\"{event}\"}}"
            )),
            "metrics text missing planner counter {event}:\n{text}"
        );
    }
    let planner_line = |event: &str| {
        text.lines()
            .find(|l| {
                l.starts_with(&format!(
                    "cqcount_planner_events_total{{event=\"{event}\"}}"
                ))
            })
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap()
    };
    assert!(planner_line("widths_searched") >= 1);
    assert!(planner_line("blocks_solved") >= 1);

    // The v2 STATS shim reads the same registry counters, so the two
    // views can never disagree.
    let s = c.stats().unwrap();
    assert_eq!(s.served, 6); // + metrics + this stats
    assert_eq!(s.count_hits, 2);
    assert_eq!(s.count_misses, 1);
    assert_eq!(s.malformed, 0);

    handle.shutdown();
}

#[test]
fn trace_log_streams_one_json_line_per_counting_request() {
    let path = std::env::temp_dir().join(format!("cqcount-trace-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let handle = start(ServerConfig {
        trace_log: Some(path.clone()),
        ..ServerConfig::default()
    });
    let mut c = connect(&handle);

    c.count("main", CYCLE_Q, 0).unwrap();
    c.count("main", CYCLE_Q, 0).unwrap();
    c.width_report(CYCLE_Q, 0).unwrap();
    c.stats().unwrap(); // admin: must NOT be logged
    handle.shutdown();

    let log = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 3, "3 counting requests -> 3 lines:\n{log}");
    assert!(lines[0].starts_with("{\"seq\":1,\"op\":\"count\""));
    assert!(lines[1].starts_with("{\"seq\":2,\"op\":\"count\""));
    assert!(lines[2].starts_with("{\"seq\":3,\"op\":\"width_report\""));
    for line in &lines {
        assert!(line.contains("\"name\":\"request\""));
        assert!(line.contains("\"total_ns\":"));
        // Structural sanity: braces and brackets balance.
        let balance = |open: char, close: char| {
            line.chars().filter(|&c| c == open).count()
                == line.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'), "unbalanced: {line}");
    }
    assert!(lines[0].contains("\"name\":\"server.parse\""));

    let _ = std::fs::remove_file(&path);
}
