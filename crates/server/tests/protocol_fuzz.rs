//! Seeded byte-mutation fuzzing of the wire format: `read_frame` plus both
//! decoders must never panic and never allocate past the protocol size
//! caps, whatever bytes arrive. Runs 10k mutations by default and 200k
//! under `--features exhaustive-tests`.
//!
//! The whole file is one `#[test]` on purpose: the counting allocator
//! below is process-global, and a sibling test running concurrently would
//! pollute the per-frame peak measurement.

use cqcount_server::protocol::{read_frame, Request, Response, MAX_PAYLOAD};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Cursor;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tracks live bytes and the high-water mark since the last reset.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let now = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            on_alloc(new_size - layout.size());
        } else {
            LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A small splitmix-style generator local to the harness so the corpus is
/// reproducible without depending on test ordering.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Valid frames of every shape the protocol speaks, as mutation seeds.
fn corpus() -> Vec<Vec<u8>> {
    let requests = [
        Request::Count {
            db: "main".into(),
            query: "ans(X, Y) :- r(X, Y), s(Y, Z).".into(),
            budget_ms: 250,
        },
        Request::Enumerate {
            db: "main".into(),
            query: "ans(X) :- r(X, Y).".into(),
            limit: 100,
            budget_ms: 0,
        },
        Request::WidthReport {
            query: "ans(X) :- r(X, Y), s(Y, X).".into(),
            cap: 3,
        },
        Request::Stats,
        Request::Reload {
            db: "aux".into(),
            text: "r(a, b). r(b, c). s(c, d).".into(),
        },
        Request::Flush,
    ];
    let responses = [
        Response::Count {
            value: "123456789012345678901234567890".into(),
            plan: "sharp-pipeline(width=2)".into(),
            cached: cqcount_server::protocol::CacheTier::Cold,
            degraded: true,
            fingerprint: 0xDEAD_BEEF_CAFE_F00D,
        },
        Response::Rows {
            rows: vec![vec!["a".into(), "b".into()], vec!["c".into(), "d".into()]],
            truncated: true,
        },
        Response::Error {
            code: cqcount_server::protocol::ErrorCode::Overloaded,
            message: "overloaded: request queue at capacity 64".into(),
            retry_after_ms: 100,
        },
    ];
    let mut corpus = Vec::new();
    for r in &requests {
        let mut b = Vec::new();
        r.write_to(&mut b).unwrap();
        corpus.push(b);
    }
    for r in &responses {
        let mut b = Vec::new();
        r.write_to(&mut b).unwrap();
        corpus.push(b);
    }
    corpus
}

/// Applies 1–4 seeded mutations: overwrite, truncate, insert, or append.
fn mutate(bytes: &mut Vec<u8>, rng: &mut Mix) {
    for _ in 0..(1 + rng.below(4)) {
        match rng.below(4) {
            0 if !bytes.is_empty() => {
                let i = rng.below(bytes.len());
                bytes[i] = rng.next() as u8;
            }
            1 if !bytes.is_empty() => {
                let keep = rng.below(bytes.len());
                bytes.truncate(keep);
            }
            2 => {
                let i = rng.below(bytes.len() + 1);
                bytes.insert(i, rng.next() as u8);
            }
            _ => {
                for _ in 0..rng.below(16) {
                    bytes.push(rng.next() as u8);
                }
            }
        }
    }
}

#[test]
fn seeded_mutations_never_panic_and_allocation_stays_capped() {
    let iterations: usize = if cfg!(feature = "exhaustive-tests") {
        200_000
    } else {
        10_000
    };
    // Per-frame allocation ceiling: the frame reader may allocate one
    // payload buffer (≤ MAX_PAYLOAD, checked before the allocation) and
    // the decoders build strings/rows out of it; anything beyond a small
    // multiple of the cap means a length field escaped validation.
    let ceiling = 2 * MAX_PAYLOAD + (1 << 16);

    let corpus = corpus();
    let mut rng = Mix(0xC0FF_EE00_5EED_u64);
    let mut parsed = 0usize;
    let mut worst_peak = 0usize;
    for i in 0..iterations {
        let mut bytes = corpus[i % corpus.len()].clone();
        mutate(&mut bytes, &mut rng);

        let before = LIVE.load(Ordering::Relaxed);
        PEAK.store(before, Ordering::Relaxed);

        let mut cur = Cursor::new(bytes.as_slice());
        // Drain the stream as the server's read loop would; any panic in
        // here fails the test.
        while let Ok(Some(frame)) = read_frame(&mut cur) {
            let _ = Request::decode(&frame);
            let _ = Response::decode(&frame);
            parsed += 1;
        }
        drop(bytes);

        let peak = PEAK.load(Ordering::Relaxed).saturating_sub(before);
        worst_peak = worst_peak.max(peak);
        assert!(
            peak <= ceiling,
            "iteration {i}: per-frame peak allocation {peak} exceeds cap {ceiling}"
        );
    }
    // The harness is only meaningful if some mutants still parse.
    assert!(
        parsed > iterations / 100,
        "mutation too destructive: only {parsed} frames parsed"
    );
    eprintln!(
        "fuzz: {iterations} mutations, {parsed} frames parsed, worst per-frame peak {worst_peak} bytes"
    );
}
