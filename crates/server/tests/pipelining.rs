//! Pipelining end-to-end tests: many requests in flight on one
//! connection, against a real server on a loopback port.
//!
//! Covers the three contracts the evented front end added:
//! * protocol v5 — responses carry the request id they answer and may
//!   arrive in completion order, so a client that writes a whole window
//!   before reading anything still attributes every answer correctly,
//!   even with a RELOAD interleaved in the middle of the window;
//! * protocol v4 — clients that predate request ids get their responses
//!   strictly in request order, even when a slow cold count is followed
//!   by an admin request the reactor answers inline;
//! * fault layer — the seeded fault lanes are scheduled by byte offset,
//!   so moving from blocking reads to the reactor's nonblocking chunked
//!   reads must not change what a given seed injects: two identical
//!   pipelined runs replay the exact same event sequence.

use cqcount_core::count_brute_force;
use cqcount_query::{parse_database, parse_program};
use cqcount_server::faults::{FaultEvent, FaultProfile};
use cqcount_server::protocol::read_frame;
use cqcount_server::{
    serve, ClientOptions, PipelinedClient, Request, Response, ServerConfig, ServerHandle,
};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::TcpStream;

const FIXTURE: &str = include_str!("../fixtures/example11.cq");

/// The paper's Example 1.1 query Q0 (count 5 on the fixture).
const Q0: &str = "ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D), \
                  st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).";

/// A cheaper companion so the pipeline mixes distinct answers.
const Q1: &str = "ans(B, D) :- wt(B, D), st(D, F).";

fn start(config: ServerConfig) -> ServerHandle {
    let db = parse_database(FIXTURE).unwrap();
    serve(config, vec![("main".into(), db)]).expect("bind loopback")
}

fn expected(query: &str) -> String {
    let (q, db) = parse_program(&format!("{FIXTURE}\n{query}")).unwrap();
    count_brute_force(&q.unwrap(), &db).to_string()
}

fn count_req(query: &str) -> Request {
    Request::Count {
        db: "main".into(),
        query: query.into(),
        budget_ms: 0,
    }
}

#[test]
fn pipelined_window_with_interleaved_reload_matches_by_request_id() {
    // Queue depth must absorb the whole window: every count in the burst
    // misses the cache (nothing has completed yet when the frames are
    // decoded), so they all become worker jobs.
    let handle = start(ServerConfig {
        workers: 2,
        queue_cap: 64,
        ..ServerConfig::default()
    });
    let mut pc = PipelinedClient::connect(handle.local_addr()).expect("connect");

    // Write the entire window — counts, a RELOAD in the middle, more
    // counts — before reading a single byte of response.
    let mut count_ids = Vec::new();
    for i in 0..8 {
        let q = if i % 2 == 0 { Q0 } else { Q1 };
        count_ids.push((pc.submit(&count_req(q)).unwrap(), expected(q)));
    }
    // Reload with the *identical* fact text: the epoch bumps (so the
    // count cache is invalidated), but every count stays deterministic
    // no matter where in the window it executes.
    let reload_id = pc
        .submit(&Request::Reload {
            db: "main".into(),
            text: FIXTURE.into(),
        })
        .unwrap();
    for i in 0..8 {
        let q = if i % 2 == 0 { Q1 } else { Q0 };
        count_ids.push((pc.submit(&count_req(q)).unwrap(), expected(q)));
    }
    pc.flush().unwrap();
    assert_eq!(pc.inflight(), 17);

    // Drain in whatever order the server finished things; attribute by id.
    let mut replies: HashMap<u64, Response> = HashMap::new();
    for _ in 0..17 {
        let (id, resp) = pc.recv().expect("pipelined response");
        assert!(replies.insert(id, resp).is_none(), "duplicate id {id}");
    }
    assert_eq!(pc.inflight(), 0);

    // The reload bumped the epoch exactly once: 1 (initial load) → 2.
    match &replies[&reload_id] {
        Response::Ok { epoch } => assert_eq!(*epoch, 2),
        other => panic!("reload answered {other:?}"),
    }
    // Every count got the right answer, wherever it landed around the
    // reload.
    for (id, want) in &count_ids {
        match &replies[id] {
            Response::Count { value, .. } => assert_eq!(value, want, "request {id}"),
            other => panic!("count {id} answered {other:?}"),
        }
    }
    handle.shutdown();
}

#[test]
fn v4_pipelined_responses_stay_in_request_order() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_cap: 64,
        ..ServerConfig::default()
    });

    // A raw protocol-v4 connection: no request ids, ordering is the only
    // way to attribute responses. Interleave slow cold counts with STATS
    // requests the reactor answers inline — if the server released inline
    // replies as they completed, the stats would overtake the counts.
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    let script = [
        count_req(Q0),
        Request::Stats,
        count_req(Q1),
        Request::Stats,
        count_req(Q0),
    ];
    for req in &script {
        req.write_to(&mut stream).unwrap();
    }
    stream.flush().unwrap();

    let mut reader = BufReader::new(stream);
    let mut kinds = Vec::new();
    for i in 0..script.len() {
        let frame = read_frame(&mut reader)
            .expect("read response")
            .expect("server closed early");
        let resp = Response::decode(&frame).expect("well-formed response");
        match resp {
            Response::Count { value, .. } => {
                let want = if i == 2 { expected(Q1) } else { expected(Q0) };
                assert_eq!(value, want, "response {i}");
                kinds.push("count");
            }
            Response::Stats(_) => kinds.push("stats"),
            other => panic!("response {i} was {other:?}"),
        }
    }
    assert_eq!(
        kinds,
        ["count", "stats", "count", "stats", "count"],
        "v4 responses must arrive in request order"
    );
    handle.shutdown();
}

/// Short I/O and latency only — no disconnects, no worker faults — so a
/// pipelined window completes and the two runs are byte-for-byte
/// comparable.
fn flaky_pipeline_profile() -> FaultProfile {
    FaultProfile {
        label: "pipeline-flaky",
        io_gap: 32,
        short_weight: 8,
        latency_weight: 2,
        disconnect_weight: 0,
        latency_max_ms: 1,
        worker_panic_p: 0.0,
        cap_trip_p: 0.0,
    }
}

/// One pipelined run under the flaky profile: serial prewarming counts
/// followed by a 12-deep window on the same (and only) connection.
///
/// Determinism needs care here: whether a request in a burst warm-hits
/// depends on a decode-vs-completion race, and a warm reply has
/// different bytes than a cold one — which would move the byte-offset
/// scheduled write faults between runs. So the cold counts run serially
/// (single worker, submission order) and the burst is 100% warm, served
/// in decode order by the reactor's fast path. Both phases then produce
/// an identical byte stream run to run, and the fault events must too.
fn flaky_pipelined_run(seed: u64) -> (Vec<(u64, String)>, Vec<FaultEvent>) {
    let db = parse_database(FIXTURE).unwrap();
    let handle = serve(
        ServerConfig {
            workers: 1,
            queue_cap: 64,
            fault_profile: flaky_pipeline_profile(),
            fault_seed: seed,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            ..ServerConfig::default()
        },
        vec![("main".into(), db)],
    )
    .expect("bind loopback");
    let mut pc = PipelinedClient::connect_with(
        handle.local_addr(),
        ClientOptions {
            io_timeout_ms: 5_000,
            ..ClientOptions::default()
        },
    )
    .expect("connect");

    let mut outcomes = Vec::new();
    // Phase 1: cold counts, strictly serial (one in flight at a time).
    for q in [Q1, Q0] {
        let id = pc.submit(&count_req(q)).unwrap();
        let (got, resp) = pc.recv().expect("cold count under faults");
        assert_eq!(got, id);
        match resp {
            Response::Count { value, .. } => outcomes.push((id, format!("ok:{value}"))),
            other => panic!("unexpected response {other:?}"),
        }
    }
    // Phase 2: a 12-deep warm burst — every request is answered by the
    // reactor's fast path, in decode order.
    for i in 0..12 {
        let q = if i % 2 == 0 { Q1 } else { Q0 };
        pc.submit(&count_req(q)).unwrap();
    }
    for _ in 0..12 {
        let (id, resp) = pc.recv().expect("flaky pipeline must still complete");
        let outcome = match resp {
            Response::Count { value, .. } => format!("ok:{value}"),
            Response::Error { code, .. } => format!("err:{code:?}"),
            other => panic!("unexpected response {other:?}"),
        };
        outcomes.push((id, outcome));
    }
    outcomes.sort_unstable();
    let events = handle.fault_events();
    handle.shutdown();
    (outcomes, events)
}

#[test]
fn fault_injection_replays_exactly_over_the_nonblocking_path() {
    let (outcomes_a, events_a) = flaky_pipelined_run(77);
    assert!(
        !events_a.is_empty(),
        "profile never fired on the pipelined path"
    );
    // Every count came back correct despite the short I/O and latency.
    for (id, outcome) in &outcomes_a {
        assert!(outcome.starts_with("ok:"), "request {id} was {outcome}");
    }

    let (outcomes_b, events_b) = flaky_pipelined_run(77);
    assert_eq!(
        events_a, events_b,
        "seed 77 must replay exactly on nonblocking sockets"
    );
    assert_eq!(outcomes_a, outcomes_b);

    let (_, events_c) = flaky_pipelined_run(78);
    assert_ne!(events_a, events_c, "different seeds should differ");
}
