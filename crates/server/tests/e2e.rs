//! End-to-end tests: a real `cqcountd` server on a loopback port, real
//! clients over TCP. Covers the acceptance scenarios: concurrent clients
//! sharing the count cache, RELOAD invalidation, budget enforcement on
//! oversized brute-force requests, and admission-control overload.

use cqcount_core::count_brute_force;
use cqcount_query::{parse_database, parse_program};
use cqcount_server::protocol::CacheTier;
use cqcount_server::{serve, Client, ClientError, ErrorCode, ServerConfig, ServerHandle};

const FIXTURE: &str = include_str!("../fixtures/example11.cq");

/// The paper's Example 1.1 query Q0 over the fixture instance (count 5).
const Q0: &str = "ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D), \
                  st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).";

/// Q0 with variables renamed and atoms reordered — a different *text*, the
/// same *query* up to canonicalization.
const Q0_RENAMED: &str = "ans(M, W, P) :- rr(V, R), rr(U, R), rr(T, R), st(T, U), \
                          st(T, V), pt(P, T), wi(W, E), wt(W, T), mw(M, W, S).";

fn start(config: ServerConfig) -> ServerHandle {
    let db = parse_database(FIXTURE).unwrap();
    serve(config, vec![("main".into(), db)]).expect("bind loopback")
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(handle.local_addr()).expect("connect")
}

#[test]
fn count_matches_brute_force_and_warms_both_cache_levels() {
    let handle = start(ServerConfig::default());
    let mut c = connect(&handle);

    let (q, db) = parse_program(&format!("{FIXTURE}\n{Q0}")).unwrap();
    let expected = count_brute_force(&q.unwrap(), &db).to_string();

    let cold = c.count("main", Q0, 0).unwrap();
    assert_eq!(cold.value, expected);
    assert_eq!(cold.cached, CacheTier::Cold);

    // Same query again: served straight from the count cache.
    let warm = c.count("main", Q0, 0).unwrap();
    assert_eq!(warm.value, expected);
    assert_eq!(warm.cached, CacheTier::CountWarm);

    // A renamed/reordered variant hits the same cache entry: the key is
    // the canonical fingerprint, not the text.
    let renamed = c.count("main", Q0_RENAMED, 0).unwrap();
    assert_eq!(renamed.value, expected);
    assert_eq!(renamed.cached, CacheTier::CountWarm);
    assert_eq!(renamed.fingerprint, cold.fingerprint);

    handle.shutdown();
}

#[test]
fn concurrent_clients_share_the_count_cache() {
    let handle = start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    });

    // Prime both cache levels from a first client.
    let mut primer = connect(&handle);
    let first = primer.count("main", Q0, 0).unwrap();
    assert_eq!(first.cached, CacheTier::Cold);

    // Two clients race the same query; both must be served from cache.
    let addr = handle.local_addr();
    let replies: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.count("main", Q0, 0).unwrap()
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    for r in &replies {
        assert_eq!(r.value, first.value);
        assert_eq!(r.cached, CacheTier::CountWarm);
    }

    // The cache sharing is observable via STATS.
    let stats = primer.stats().unwrap();
    assert!(stats.count_hits >= 2, "stats: {stats:?}");
    assert!(stats.served >= 3);

    handle.shutdown();
}

#[test]
fn reload_bumps_the_epoch_and_invalidates_counts_but_not_plans() {
    let handle = start(ServerConfig::default());
    let mut c = connect(&handle);

    let before = c.count("main", Q0, 0).unwrap();
    assert_eq!(c.count("main", Q0, 0).unwrap().cached, CacheTier::CountWarm);

    // Reload with one extra manager-workshop pair; the count must change.
    let extra = format!("{FIXTURE}\nmw(m3, w2, 40).");
    let epoch = c.reload("main", &extra).unwrap();
    assert_eq!(epoch, 2);

    let (q, db) = parse_program(&format!("{extra}\n{Q0}")).unwrap();
    let expected = count_brute_force(&q.unwrap(), &db).to_string();
    assert_ne!(expected, before.value, "the reload must change the count");

    // The stale cached count is unreachable (epoch key), but the *plan*
    // cache survives: the recount is plan-warm, not cold.
    let after = c.count("main", Q0, 0).unwrap();
    assert_eq!(after.value, expected);
    assert_eq!(after.cached, CacheTier::PlanWarm);

    // And the new count is cached under the new epoch.
    assert_eq!(c.count("main", Q0, 0).unwrap().cached, CacheTier::CountWarm);

    // Epoch and fingerprint are visible in STATS.
    let stats = c.stats().unwrap();
    let db_row = stats.dbs.iter().find(|d| d.name == "main").unwrap();
    assert_eq!(db_row.epoch, 2);

    handle.shutdown();
}

/// A 7-clique over a complete digraph: #-hypertree width 4 > cap 3, no
/// hybrid handle, so the planner must brute-force ~40^7 homomorphisms —
/// the adversarial request the budget exists for.
fn oversized_request() -> (String, String) {
    let mut facts = String::new();
    for i in 0..40 {
        for j in 0..40 {
            if i != j {
                facts.push_str(&format!("e(n{i}, n{j}). "));
            }
        }
    }
    let vars: Vec<String> = (1..=7).map(|i| format!("X{i}")).collect();
    let mut atoms = Vec::new();
    for i in 0..7 {
        for j in (i + 1)..7 {
            atoms.push(format!("e({}, {})", vars[i], vars[j]));
        }
    }
    let query = format!("ans({}) :- {}.", vars.join(", "), atoms.join(", "));
    (facts, query)
}

#[test]
fn oversized_brute_force_request_trips_the_budget() {
    let handle = start(ServerConfig::default());
    let mut c = connect(&handle);
    let (facts, query) = oversized_request();
    c.reload("big", &facts).unwrap();

    let started = std::time::Instant::now();
    let err = c.count("big", &query, 50).unwrap_err();
    match err {
        ClientError::Server { code, message, .. } => {
            assert_eq!(code, ErrorCode::BudgetExceeded, "{message}");
            // The message is the round-trippable PlanError rendering.
            assert!(
                message.parse::<cqcount_core::PlanError>().is_ok(),
                "{message}"
            );
        }
        other => panic!("expected a server error, got {other:?}"),
    }
    // "instead of stalling": it must come back near the budget, not after
    // exhausting the search space.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "took {:?}",
        started.elapsed()
    );

    handle.shutdown();
}

#[test]
fn full_queue_yields_overloaded_not_buffering() {
    let handle = start(ServerConfig {
        workers: 1,
        queue_cap: 1,
        ..ServerConfig::default()
    });
    let addr = handle.local_addr();
    let mut admin = connect(&handle);
    let (facts, query) = oversized_request();
    admin.reload("big", &facts).unwrap();

    // Two slow requests: one occupies the single worker, one fills the
    // queue. Staggered starts so the first is already *running* (queue
    // drained) before the second is enqueued.
    let mut slow = Vec::new();
    for i in 0..2u64 {
        let query = query.clone();
        slow.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            // Each uses a distinct budget so the two jobs differ.
            c.count("big", &query, 1500 + i).unwrap_err()
        }));
        std::thread::sleep(std::time::Duration::from_millis(400));
    }

    // The third concurrent request must be rejected immediately, and the
    // rejection carries the configured backoff hint.
    let mut c3 = connect(&handle);
    let started = std::time::Instant::now();
    let err = c3.count("big", &query, 1500).unwrap_err();
    match err {
        ClientError::Server {
            code,
            retry_after_ms,
            ..
        } => {
            assert_eq!(code, ErrorCode::Overloaded);
            assert_eq!(
                retry_after_ms,
                ServerConfig::default().overload_retry_after_ms
            );
        }
        other => panic!("expected overload, got {other:?}"),
    }
    assert!(started.elapsed() < std::time::Duration::from_millis(500));

    // The admitted requests finish with budget errors, not hangs.
    for t in slow {
        match t.join().unwrap() {
            ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::BudgetExceeded),
            other => panic!("expected budget error, got {other:?}"),
        }
    }
    assert!(admin.stats().unwrap().overloaded >= 1);

    handle.shutdown();
}

#[test]
fn planning_budget_exhaustion_degrades_instead_of_erroring() {
    // `plan_budget_ms: Some(0)` trips the planning budget deterministically,
    // so every cold count exercises the degradation ladder. The fixture
    // query is cyclic with existential variables, so the ladder bottoms out
    // in budgeted brute force — still exact, flagged `degraded`.
    let handle = start(ServerConfig {
        plan_budget_ms: Some(0),
        ..ServerConfig::default()
    });
    let mut c = connect(&handle);

    let (q, db) = parse_program(&format!("{FIXTURE}\n{Q0}")).unwrap();
    let expected = count_brute_force(&q.unwrap(), &db).to_string();

    let reply = c.count("main", Q0, 0).unwrap();
    assert_eq!(reply.value, expected, "degraded counts stay exact");
    assert!(reply.degraded);
    assert_eq!(reply.plan, "brute-force");

    // Degraded plans are not cached — but the exact *count* is, and a
    // count-cache hit is not degraded service.
    let warm = c.count("main", Q0, 0).unwrap();
    assert_eq!(warm.cached, CacheTier::CountWarm);
    assert!(!warm.degraded);

    let stats = c.stats().unwrap();
    assert_eq!(stats.degraded, 1);
    assert_eq!(stats.plan_hits, 0, "degraded plans must not warm the cache");

    handle.shutdown();
}

#[test]
fn idle_connections_are_reaped_by_the_read_deadline() {
    let handle = start(ServerConfig {
        read_timeout_ms: 100,
        ..ServerConfig::default()
    });

    // An idle client: connects, says nothing past the deadline.
    let idle = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));

    // The server reaped it without replying; the socket observes EOF.
    let mut probe = idle;
    probe
        .set_read_timeout(Some(std::time::Duration::from_millis(500)))
        .unwrap();
    let mut buf = [0u8; 1];
    use std::io::Read as _;
    assert_eq!(probe.read(&mut buf).unwrap_or(0), 0, "expected EOF");

    // A live client on the same server is unaffected (it talks promptly).
    let mut c = connect(&handle);
    assert!(c.count("main", Q0, 0).is_ok());
    assert!(c.stats().unwrap().reaped >= 1);

    handle.shutdown();
}

#[test]
fn shutdown_is_prompt_and_drop_is_idempotent() {
    let handle = start(ServerConfig::default());
    let addr = handle.local_addr();
    let mut c = connect(&handle);
    c.count("main", Q0, 0).unwrap();

    let started = std::time::Instant::now();
    handle.shutdown();
    // The poll-based accept loop notices the stop flag without needing a
    // wake-up connection; well under a second even with nobody dialing in.
    assert!(
        started.elapsed() < std::time::Duration::from_secs(2),
        "shutdown took {:?}",
        started.elapsed()
    );
    // The listener is really gone.
    assert!(Client::connect(addr).is_err());
}

#[test]
fn reload_frames_larger_than_the_read_pause_still_arrive() {
    // A single frame bigger than the reactor's 1 MiB read-fairness pause:
    // the reactor must keep reading past the pause while a frame is
    // incomplete, or the connection deadlocks until the read deadline
    // reaps it (bulk RELOADs regressed exactly this way).
    let handle = start(ServerConfig::default());
    let mut c = connect(&handle);
    let mut facts = String::with_capacity(2 << 20);
    let mut i = 0u64;
    while facts.len() < (2 << 20) {
        facts.push_str(&format!("big(n{i}, n{}).\n", i + 1));
        i += 1;
    }
    c.reload("bulk", &facts).expect("a 2 MiB reload must land");
    let reply = c.count("bulk", "ans(X, Y) :- big(X, Y).", 0).unwrap();
    assert_eq!(reply.value, i.to_string());
    handle.shutdown();
}

#[test]
fn enumerate_returns_a_bounded_prefix() {
    let handle = start(ServerConfig::default());
    let mut c = connect(&handle);

    let (rows, truncated) = c.enumerate("main", Q0, 100, 0).unwrap();
    assert_eq!(rows.len(), 5);
    assert!(!truncated);
    // Rows are free-variable bindings (A, B, C) over the fixture names.
    assert!(rows.iter().all(|r| r.len() == 3));
    assert!(rows.iter().any(|r| r == &["m1", "w1", "p1"]));

    let (prefix, truncated) = c.enumerate("main", Q0, 2, 0).unwrap();
    assert_eq!(prefix.len(), 2);
    assert!(truncated);

    handle.shutdown();
}

#[test]
fn width_report_and_error_paths() {
    let handle = start(ServerConfig::default());
    let mut c = connect(&handle);

    let r = c.width_report(Q0, 0).unwrap();
    assert!(!r.acyclic);
    assert_eq!(r.ghw, Some(2));
    assert_eq!(r.sharp_width, Some(2));
    assert_eq!((r.atoms, r.vars, r.free), (9, 9, 3));

    // Parse errors carry the round-trippable ParseError rendering.
    match c.count("main", "ans(X :- r(X).", 0).unwrap_err() {
        ClientError::Server { code, message, .. } => {
            assert_eq!(code, ErrorCode::Parse);
            assert!(
                message.parse::<cqcount_query::parser::ParseError>().is_ok(),
                "{message}"
            );
        }
        other => panic!("expected parse error, got {other:?}"),
    }

    // Unknown database.
    match c.count("nope", Q0, 0).unwrap_err() {
        ClientError::Server { code, .. } => assert_eq!(code, ErrorCode::UnknownDb),
        other => panic!("expected unknown-db error, got {other:?}"),
    }

    // Flush drops the caches; the next count is cold again.
    c.count("main", Q0, 0).unwrap();
    c.flush().unwrap();
    assert_eq!(c.count("main", Q0, 0).unwrap().cached, CacheTier::Cold);

    handle.shutdown();
}
