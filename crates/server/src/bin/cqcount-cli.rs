//! `cqcount-cli` — command-line client for `cqcountd`.
//!
//! ```text
//! cqcount-cli --server ADDR count     --db NAME <QUERY> [--budget-ms MS]
//!                                       [--pipeline N] [--verbose]
//! cqcount-cli --server ADDR profile   --db NAME <QUERY> [--budget-ms MS] [--verbose]
//! cqcount-cli --server ADDR enumerate --db NAME <QUERY> [--limit N]
//! cqcount-cli --server ADDR report    <QUERY> [--cap K]
//! cqcount-cli --server ADDR stats
//! cqcount-cli --server ADDR metrics
//! cqcount-cli --server ADDR reload    --db NAME <FACTS-FILE>
//! cqcount-cli --server ADDR insert    --db NAME REL VALUE...
//! cqcount-cli --server ADDR delete    --db NAME REL VALUE...
//! cqcount-cli --server ADDR sync      --db NAME
//! cqcount-cli --server ADDR history   [--since SEQ] [--limit N] [--verbose]
//! cqcount-cli --server ADDR flight    [--limit N] [--verbose]
//! cqcount-cli --server ADDR flush
//! ```
//!
//! `history` and `flight` are the protocol-v8 forensics commands.
//! `history` prints the server's metrics-history ring (one line per
//! sample: throughput and tail-latency movement bracket themselves;
//! `--verbose` dumps every sampled series). `flight` prints the flight
//! recorder's retained traces — each slow/errored/degraded request's
//! full span tree, rendered like `profile` — and its incidents
//! (watchdog stalls). Neither needs anything pre-arranged: retention is
//! the server's own verdict, after the fact.
//!
//! `profile` runs the count under tracing and renders the span tree with
//! per-stage durations and percentages of the end-to-end request time
//! (`--verbose` adds each span's counters); `metrics` dumps the server's
//! registry in Prometheus text format.
//!
//! `<QUERY>` is either a datalog rule (`ans(X) :- r(X, Y).`) or `@FILE`
//! to read the rule from a file. `count` prints the count on stdout;
//! `--verbose` adds the plan and cache tier on stderr.
//!
//! `--timeout <ms>` bounds every connect/read/write (default 30000, so a
//! dead daemon can no longer hang the CLI); `--retries <n>` retries the
//! idempotent commands (count, report, stats) with exponential backoff.
//!
//! `insert`/`delete` edit a loaded database in place (protocol v6) and
//! print `changed N seq M`: `N` is 1 when the tuple was actually added or
//! removed (0 for a duplicate insert or absent delete), `M` the
//! database's mutation sequence afterwards. These commands are **not
//! idempotent to retry blindly** — `--retries` deliberately does not
//! apply to them; if a reply is lost, compare the `seq`/`durable` numbers
//! from `stats` (or `sync`) against your last receipt before
//! resubmitting — see the README's lost-reply procedure.
//!
//! `count --pipeline N` switches to the protocol-v5 pipelined client: N
//! copies of the count are written back-to-back on one connection before
//! any response is read, responses are matched by request id, and the
//! measured request rate is printed on stderr. Handy for demonstrating
//! the server's warm-hit fast path without a bench harness.

use cqcount_server::{Client, ClientOptions, PipelinedClient, Request, Response, SpanNode};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "usage:
  cqcount-cli --server ADDR [--timeout MS] [--retries N] <command>
  cqcount-cli --server ADDR count     --db NAME <QUERY> [--budget-ms MS]
                                      [--pipeline N] [--verbose]
  cqcount-cli --server ADDR profile   --db NAME <QUERY> [--budget-ms MS] [--verbose]
  cqcount-cli --server ADDR enumerate --db NAME <QUERY> [--limit N]
  cqcount-cli --server ADDR report    <QUERY> [--cap K]
  cqcount-cli --server ADDR stats
  cqcount-cli --server ADDR metrics
  cqcount-cli --server ADDR reload    --db NAME <FACTS-FILE>
  cqcount-cli --server ADDR insert    --db NAME REL VALUE...   (never retried)
  cqcount-cli --server ADDR delete    --db NAME REL VALUE...   (never retried)
  cqcount-cli --server ADDR sync      --db NAME
  cqcount-cli --server ADDR history   [--since SEQ] [--limit N] [--verbose]
  cqcount-cli --server ADDR flight    [--limit N] [--verbose]
  cqcount-cli --server ADDR flush";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

struct Opts {
    server: String,
    command: String,
    db: String,
    positional: Vec<String>,
    budget_ms: u64,
    limit: u64,
    cap: u64,
    since: u64,
    timeout_ms: u64,
    retries: u32,
    pipeline: u64,
    verbose: bool,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        server: String::new(),
        command: String::new(),
        db: String::new(),
        positional: Vec::new(),
        budget_ms: 0,
        limit: 20,
        cap: 0,
        since: 0,
        timeout_ms: 30_000,
        retries: 0,
        pipeline: 0,
        verbose: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--server" => opts.server = it.next().ok_or("--server needs a value")?.clone(),
            "--db" => opts.db = it.next().ok_or("--db needs a value")?.clone(),
            "--budget-ms" => {
                opts.budget_ms = it
                    .next()
                    .ok_or("--budget-ms needs a value")?
                    .parse()
                    .map_err(|_| "--budget-ms must be a number")?;
            }
            "--limit" => {
                opts.limit = it
                    .next()
                    .ok_or("--limit needs a value")?
                    .parse()
                    .map_err(|_| "--limit must be a number")?;
            }
            "--cap" => {
                opts.cap = it
                    .next()
                    .ok_or("--cap needs a value")?
                    .parse()
                    .map_err(|_| "--cap must be a number")?;
            }
            "--since" => {
                opts.since = it
                    .next()
                    .ok_or("--since needs a value")?
                    .parse()
                    .map_err(|_| "--since must be a sample sequence number")?;
            }
            "--timeout" => {
                opts.timeout_ms = it
                    .next()
                    .ok_or("--timeout needs a value")?
                    .parse()
                    .map_err(|_| "--timeout must be a number of milliseconds")?;
            }
            "--retries" => {
                opts.retries = it
                    .next()
                    .ok_or("--retries needs a value")?
                    .parse()
                    .map_err(|_| "--retries must be a number")?;
            }
            "--pipeline" => {
                opts.pipeline = it
                    .next()
                    .ok_or("--pipeline needs a value")?
                    .parse()
                    .map_err(|_| "--pipeline must be a number of requests")?;
            }
            "--verbose" => opts.verbose = true,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            word => {
                if opts.command.is_empty() {
                    opts.command = word.to_owned();
                } else {
                    opts.positional.push(word.to_owned());
                }
            }
        }
    }
    if opts.server.is_empty() {
        return Err("missing --server ADDR".into());
    }
    if opts.command.is_empty() {
        return Err("missing command".into());
    }
    Ok(opts)
}

/// Resolves a `<QUERY>` argument: `@FILE` reads the file, anything else is
/// the rule text itself.
fn query_arg(opts: &Opts) -> Result<String, String> {
    let raw = opts
        .positional
        .first()
        .ok_or("missing query argument")?
        .clone();
    if let Some(path) = raw.strip_prefix('@') {
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
    } else {
        Ok(raw)
    }
}

/// `1_234_567` ns → `"1.235 ms"`; sub-microsecond spans print in ns.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// `1_234_567` bytes → `"1.2 MiB"`; small values print raw.
fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / 1024.0)
    } else {
        format!("{b} B")
    }
}

/// Prints one span line (`name  duration  percent-of-request`) and recurses
/// over the children with box-drawing connectors.
fn render_span(
    node: &SpanNode,
    total_ns: u64,
    prefix: &str,
    last: bool,
    root: bool,
    verbose: bool,
) {
    let connector = if root {
        ""
    } else if last {
        "└─ "
    } else {
        "├─ "
    };
    let label = format!("{prefix}{connector}{}", node.name);
    let pct = 100.0 * node.duration_ns as f64 / total_ns as f64;
    println!("{label:<42} {:>12}  {pct:>5.1}%", fmt_ns(node.duration_ns));
    if verbose && !(node.counters.is_empty() && node.tags.is_empty()) {
        let child_prefix = if root {
            String::new()
        } else {
            format!("{prefix}{}", if last { "   " } else { "│  " })
        };
        let fields: Vec<String> = node
            .tags
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .chain(node.counters.iter().map(|(k, v)| format!("{k}={v}")))
            .collect();
        println!("{child_prefix}     [{}]", fields.join(", "));
    }
    let child_prefix = if root {
        String::new()
    } else {
        format!("{prefix}{}", if last { "   " } else { "│  " })
    };
    for (i, c) in node.children.iter().enumerate() {
        render_span(
            c,
            total_ns,
            &child_prefix,
            i + 1 == node.children.len(),
            false,
            verbose,
        );
    }
}

/// `count --pipeline N`: submits N identical counts on one protocol-v5
/// connection before reading anything, then drains the responses (matched
/// by request id — completion order is the server's choice), checks they
/// all agree, and reports the achieved request rate on stderr.
fn pipelined_count(opts: &Opts, query: &str) -> Result<(), String> {
    let mut pc = PipelinedClient::connect_with(
        &opts.server,
        ClientOptions {
            connect_timeout_ms: opts.timeout_ms,
            io_timeout_ms: opts.timeout_ms,
            ..ClientOptions::default()
        },
    )
    .map_err(|e| format!("cannot connect to {}: {e}", opts.server))?;
    let req = Request::Count {
        db: opts.db.clone(),
        query: query.to_owned(),
        budget_ms: opts.budget_ms,
    };
    let start = Instant::now();
    let mut expected: Vec<u64> = Vec::with_capacity(opts.pipeline as usize);
    for _ in 0..opts.pipeline {
        expected.push(pc.submit(&req).map_err(|e| e.to_string())?);
    }
    pc.flush().map_err(|e| e.to_string())?;
    expected.sort_unstable();
    let mut seen: Vec<u64> = Vec::with_capacity(expected.len());
    let mut value: Option<String> = None;
    for _ in 0..opts.pipeline {
        let (id, resp) = pc.recv().map_err(|e| e.to_string())?;
        seen.push(id);
        match resp {
            Response::Count { value: v, .. } => match &value {
                None => value = Some(v),
                Some(prev) if *prev == v => {}
                Some(prev) => {
                    return Err(format!(
                        "request {id} answered {v}, but an earlier one answered {prev}"
                    ))
                }
            },
            Response::Error { code, message, .. } => {
                return Err(format!("request {id} failed: {code:?}: {message}"))
            }
            other => return Err(format!("unexpected response for request {id}: {other:?}")),
        }
    }
    let elapsed = start.elapsed();
    seen.sort_unstable();
    if seen != expected {
        return Err("response ids do not match the submitted requests".into());
    }
    let rate = opts.pipeline as f64 / elapsed.as_secs_f64().max(1e-9);
    eprintln!(
        "pipelined {} requests in {:.1} ms ({rate:.0} req/s)",
        opts.pipeline,
        elapsed.as_secs_f64() * 1e3,
    );
    println!(
        "{}",
        value.expect("pipeline > 0 implies at least one response")
    );
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let opts = parse_opts(args)?;
    let mut client = Client::connect_with(
        &opts.server,
        ClientOptions {
            connect_timeout_ms: opts.timeout_ms,
            io_timeout_ms: opts.timeout_ms,
            retries: opts.retries,
            ..ClientOptions::default()
        },
    )
    .map_err(|e| format!("cannot connect to {}: {e}", opts.server))?;
    match opts.command.as_str() {
        "count" => {
            if opts.db.is_empty() {
                return Err("count needs --db NAME".into());
            }
            let query = query_arg(&opts)?;
            if opts.pipeline > 0 {
                return pipelined_count(&opts, &query);
            }
            let reply = client
                .count(&opts.db, &query, opts.budget_ms)
                .map_err(|e| e.to_string())?;
            if opts.verbose {
                eprintln!(
                    "plan: {} (cache: {:?}, degraded: {}, fingerprint: {:016x})",
                    reply.plan, reply.cached, reply.degraded, reply.fingerprint
                );
            }
            println!("{}", reply.value);
            Ok(())
        }
        "profile" => {
            if opts.db.is_empty() {
                return Err("profile needs --db NAME".into());
            }
            let query = query_arg(&opts)?;
            let r = client
                .profile(&opts.db, &query, opts.budget_ms)
                .map_err(|e| e.to_string())?;
            println!("count: {}", r.value);
            println!(
                "plan:  {} (cache: {:?}, degraded: {}, fingerprint: {:016x})",
                r.plan, r.cached, r.degraded, r.fingerprint
            );
            println!(
                "total: {} (tracer drops: {})",
                fmt_ns(r.total_ns),
                r.dropped
            );
            println!();
            let total = r.total_ns.max(1);
            render_span(&r.root, total, "", true, true, opts.verbose);
            let direct: u64 = r.root.children.iter().map(|c| c.duration_ns).sum();
            println!();
            println!(
                "stage coverage: {:.1}% of the request is accounted for by top-level stages",
                100.0 * direct as f64 / total as f64
            );
            Ok(())
        }
        "metrics" => {
            let text = client.metrics().map_err(|e| e.to_string())?;
            print!("{text}");
            Ok(())
        }
        "enumerate" => {
            if opts.db.is_empty() {
                return Err("enumerate needs --db NAME".into());
            }
            let query = query_arg(&opts)?;
            let (rows, truncated) = client
                .enumerate(&opts.db, &query, opts.limit, opts.budget_ms)
                .map_err(|e| e.to_string())?;
            for row in rows {
                println!("{}", row.join("\t"));
            }
            if truncated {
                eprintln!("(truncated at {} rows)", opts.limit);
            }
            Ok(())
        }
        "report" => {
            let query = query_arg(&opts)?;
            let r = client
                .width_report(&query, opts.cap)
                .map_err(|e| e.to_string())?;
            let fmt = |w: Option<u64>| w.map_or(format!("> {}", r.cap), |v| v.to_string());
            println!("α-acyclic:            {}", r.acyclic);
            println!("ghw:                  {}", fmt(r.ghw));
            println!("#-hypertree width:    {}", fmt(r.sharp_width));
            println!("quantified star size: {}", r.star_size);
            println!(
                "atoms / vars / free:  {} / {} / {}",
                r.atoms, r.vars, r.free
            );
            Ok(())
        }
        "stats" => {
            let s = client.stats().map_err(|e| e.to_string())?;
            println!("served:       {}", s.served);
            println!("overloaded:   {}", s.overloaded);
            println!(
                "plan cache:   {} hits / {} misses",
                s.plan_hits, s.plan_misses
            );
            println!(
                "count cache:  {} hits / {} misses",
                s.count_hits, s.count_misses
            );
            println!("malformed:    {}", s.malformed);
            println!("budget trips: {}", s.budget_exceeded);
            println!("panicked:     {}", s.panicked);
            println!("reaped conns: {}", s.reaped);
            println!("degraded:     {}", s.degraded);
            println!("faults:       {}", s.faults_injected);
            println!(
                "planner:      {} blocks solved, {} memo hits, {} negative reuses",
                s.planner_blocks_solved, s.planner_memo_hits, s.planner_negative_reuse
            );
            println!(
                "              {} candidates, {} universes, {} widths searched",
                s.planner_candidates, s.planner_universes, s.planner_widths_searched
            );
            println!(
                "mutations:    {} applied, {} delta bags touched, {} delta fallbacks",
                s.mutations_applied, s.delta_bags_touched, s.delta_fallbacks
            );
            println!(
                "forensics:    {} traces retained, {} watchdog stalls ({} shards / {} workers stalled now)",
                s.recorder_retained, s.watchdog_stalls, s.stalled_shards, s.stalled_workers
            );
            for d in &s.dbs {
                let durability = if d.persisted {
                    format!(
                        ", seq {}, durable {}{}{}",
                        d.mutation_seq,
                        d.durable_seq,
                        if d.read_only { " [read-only]" } else { "" },
                        if d.recovered_records > 0 {
                            format!(" (recovered {} records)", d.recovered_records)
                        } else {
                            String::new()
                        },
                    )
                } else {
                    format!(", seq {} (not persisted)", d.mutation_seq)
                };
                println!(
                    "db {}: epoch {}, fingerprint {:016x}, {} tuples{durability}",
                    d.name, d.epoch, d.fingerprint, d.tuples
                );
                println!(
                    "    memory: {} resident, {} mmap-served",
                    fmt_bytes(d.resident_bytes),
                    fmt_bytes(d.mapped_bytes)
                );
            }
            Ok(())
        }
        "reload" => {
            if opts.db.is_empty() {
                return Err("reload needs --db NAME".into());
            }
            let file = opts.positional.first().ok_or("missing facts file")?;
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
            let epoch = client.reload(&opts.db, &text).map_err(|e| e.to_string())?;
            println!("epoch {epoch}");
            Ok(())
        }
        // Mutations go through Client::insert/delete, which never retry:
        // a lost reply makes a blind resubmit report changed=0, and the
        // caller cannot tell that from a genuine duplicate.
        "insert" | "delete" => {
            if opts.db.is_empty() {
                return Err(format!("{} needs --db NAME", opts.command));
            }
            let rel = opts
                .positional
                .first()
                .ok_or("missing relation name")?
                .as_str();
            let values: Vec<&str> = opts.positional[1..].iter().map(String::as_str).collect();
            let receipt = if opts.command == "insert" {
                client.insert(&opts.db, rel, &values)
            } else {
                client.delete(&opts.db, rel, &values)
            }
            .map_err(|e| e.to_string())?;
            println!("changed {} seq {}", receipt.changed, receipt.mutation_seq);
            Ok(())
        }
        // Idempotent (syncing twice is just slower), so --retries applies.
        "sync" => {
            if opts.db.is_empty() {
                return Err("sync needs --db NAME".into());
            }
            let receipt = client.sync(&opts.db).map_err(|e| e.to_string())?;
            println!(
                "epoch {} seq {} durable {}",
                receipt.epoch, receipt.mutation_seq, receipt.durable_seq
            );
            if receipt.durable_seq == 0 && receipt.mutation_seq > 0 {
                eprintln!("warning: server runs without --data-dir; nothing is durable");
            }
            Ok(())
        }
        // Idempotent reads, so --retries applies to both.
        "history" => {
            let h = client
                .history(opts.since, opts.limit)
                .map_err(|e| e.to_string())?;
            println!(
                "{} samples (interval {} ms, next seq {})",
                h.samples.len(),
                h.interval_ms,
                h.next_seq
            );
            for s in &h.samples {
                // The headline series an operator scans for a dip first;
                // --verbose dumps everything.
                let find = |name: &str| {
                    s.entries
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| v.to_string())
                        .unwrap_or_else(|| "-".into())
                };
                println!(
                    "seq {:>5}  t=+{:>8} ms  served {:>8}  p99 {:>7} µs  retained {}",
                    s.seq,
                    s.uptime_ms,
                    find("cqcount_requests_served_total"),
                    find("cqcount_request_latency_us_p99"),
                    find("cqcount_recorder_retained_total"),
                );
                if opts.verbose {
                    for (name, value) in &s.entries {
                        println!("    {name} {value}");
                    }
                }
            }
            Ok(())
        }
        "flight" => {
            let f = client.flight(opts.limit).map_err(|e| e.to_string())?;
            println!(
                "{} retained traces, {} incidents",
                f.traces.len(),
                f.incidents.len()
            );
            for t in &f.traces {
                println!();
                println!(
                    "#{} {} [{}] {} µs (threshold {} µs) @{}",
                    t.seq, t.op, t.reason, t.latency_us, t.threshold_us, t.unix_ms
                );
                let total = t.root.duration_ns.max(1);
                render_span(&t.root, total, "", true, true, opts.verbose);
            }
            if !f.incidents.is_empty() {
                println!();
                for i in &f.incidents {
                    println!(
                        "incident #{} [{}] {} @{}",
                        i.seq, i.kind, i.detail, i.unix_ms
                    );
                }
            }
            Ok(())
        }
        "flush" => {
            client.flush().map_err(|e| e.to_string())?;
            println!("flushed");
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}
