//! `cqcountd` — the counting query daemon.
//!
//! ```text
//! cqcountd [--listen ADDR] [--db NAME=FILE]... [--workers N]
//!          [--reactors N] [--queue-cap N] [--budget-ms MS]
//!          [--max-enumerate N] [--width-cap K] [--read-timeout-ms MS]
//!          [--write-timeout-ms MS] [--fault-profile NAME] [--fault-seed N]
//!          [--trace-log FILE] [--materialize-cap N]
//! ```
//!
//! Each `--db NAME=FILE` loads a datalog fact file (same format as the
//! `cqcount` CLI accepts, facts only) under a name clients address in
//! their requests. The daemon prints `listening on ADDR` once ready and
//! serves until killed.
//!
//! `--fault-profile` (off, flaky-net, slow-net, chaos) turns on seeded
//! fault injection for chaos testing; `--fault-seed` (or the
//! `CQCOUNT_FAULT_SEED` environment variable) fixes the seed so a chaos
//! run can be replayed exactly.
//!
//! `--trace-log FILE` traces every counting request and appends its span
//! tree to FILE as one JSON line (JSONL). Combined with `--fault-profile`
//! and a fixed seed, two runs of the same workload produce structurally
//! identical logs.
//!
//! `--materialize-cap N` bounds how many queries keep a live materialized
//! count maintained incrementally across `INSERT`/`DELETE` (default 32;
//! `0` disables materialization, mutations then invalidate only).
//!
//! `--data-dir DIR` makes mutations durable: every effective batch is
//! appended to a per-database write-ahead log before it is acknowledged,
//! snapshots bound replay, and a restart recovers the newest valid
//! snapshot plus the WAL tail (torn tails are truncated cleanly).
//! `--durability always|batch|off` picks the fsync policy (default
//! `batch`); `--snapshot-every N` snapshots and truncates the log after N
//! logged batches (default 4096, `0` disables the threshold).
//!
//! Crash testing: `--fault-profile crash` arms a seeded kill-point that
//! aborts the process mid-durability (replayable via `--fault-seed`);
//! `--crash-at POINT:N` (pre-append, pre-fsync, post-fsync, mid-snapshot)
//! pins the point explicitly. `--wal-fail-after N` injects WAL write
//! errors after N appends, degrading the database to read-only;
//! `--wal-fsync-stall N:MS` makes the Nth WAL fsync sleep MS milliseconds
//! (a deterministic slow-disk stand-in for forensics testing).
//!
//! Forensics (protocol v8): the flight recorder is on by default
//! (`--recorder-cap N` sizes its trace ring, `0` disables;
//! `--recorder-threshold-us US` floors the self-calibrating slow-request
//! threshold). `--history-interval-ms MS` / `--history-cap N` tune the
//! metrics-history sampler (`0` interval disables);
//! `--watchdog-stall-ms MS` tunes the stall watchdog (`0` disables).

use cqcount_query::parse_database;
use cqcount_relational::Database;
use cqcount_server::{serve, CrashPlan, DurabilityPolicy, FaultProfile, ServerConfig};
use std::process::ExitCode;
use std::sync::Arc;

const USAGE: &str = "usage:
  cqcountd [--listen ADDR] [--db NAME=FILE]... [--workers N] [--reactors N]
           [--queue-cap N] [--budget-ms MS] [--max-enumerate N] [--width-cap K]
           [--read-timeout-ms MS] [--write-timeout-ms MS]
           [--fault-profile off|flaky-net|slow-net|chaos|crash] [--fault-seed N]
           [--trace-log FILE] [--materialize-cap N]
           [--data-dir DIR] [--durability always|batch|off]
           [--snapshot-every N] [--crash-at POINT:N] [--wal-fail-after N]
           [--wal-fsync-stall N:MS] [--recorder-cap N]
           [--recorder-threshold-us US] [--history-interval-ms MS]
           [--history-cap N] [--watchdog-stall-ms MS]";

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn parse_num(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<u64, String> {
    it.next()
        .ok_or(format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag} must be a number"))
}

fn run(args: &[String]) -> Result<(), String> {
    let mut config = ServerConfig {
        addr: "127.0.0.1:7878".into(),
        ..ServerConfig::default()
    };
    // Environment fallback; --fault-seed wins when both are given.
    if let Ok(seed) = std::env::var("CQCOUNT_FAULT_SEED") {
        config.fault_seed = seed
            .parse()
            .map_err(|_| format!("CQCOUNT_FAULT_SEED must be a number, got {seed:?}"))?;
    }
    let mut dbs: Vec<(String, Database)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            "--listen" => {
                config.addr = it.next().ok_or("--listen needs a value")?.clone();
            }
            "--db" => {
                let spec = it.next().ok_or("--db needs NAME=FILE")?;
                let (name, file) = spec
                    .split_once('=')
                    .ok_or(format!("--db expects NAME=FILE, got {spec:?}"))?;
                let src = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read {file}: {e}"))?;
                let db = parse_database(&src).map_err(|e| format!("{file}: {e}"))?;
                dbs.push((name.to_owned(), db));
            }
            "--workers" => config.workers = parse_num(&mut it, "--workers")?.max(1) as usize,
            "--reactors" => config.reactors = parse_num(&mut it, "--reactors")? as usize,
            "--queue-cap" => config.queue_cap = parse_num(&mut it, "--queue-cap")?.max(1) as usize,
            "--budget-ms" => config.default_budget_ms = parse_num(&mut it, "--budget-ms")?,
            "--max-enumerate" => {
                config.max_enumerate = parse_num(&mut it, "--max-enumerate")? as usize
            }
            "--width-cap" => config.width_cap = parse_num(&mut it, "--width-cap")?.max(1) as usize,
            "--read-timeout-ms" => {
                config.read_timeout_ms = parse_num(&mut it, "--read-timeout-ms")?
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms = parse_num(&mut it, "--write-timeout-ms")?
            }
            "--fault-profile" => {
                let name = it.next().ok_or("--fault-profile needs a value")?;
                config.fault_profile = FaultProfile::parse(name)?;
            }
            "--fault-seed" => config.fault_seed = parse_num(&mut it, "--fault-seed")?,
            "--materialize-cap" => {
                config.materialize_cap = parse_num(&mut it, "--materialize-cap")? as usize
            }
            "--trace-log" => {
                config.trace_log = Some(it.next().ok_or("--trace-log needs a FILE")?.into());
            }
            "--data-dir" => {
                config.data_dir = Some(it.next().ok_or("--data-dir needs a DIR")?.into());
            }
            "--durability" => {
                let name = it.next().ok_or("--durability needs a value")?;
                config.durability = DurabilityPolicy::parse(name)?;
            }
            "--snapshot-every" => config.snapshot_every = parse_num(&mut it, "--snapshot-every")?,
            "--crash-at" => {
                let spec = it.next().ok_or("--crash-at needs POINT:N")?;
                config.crash_plan = Some(Arc::new(CrashPlan::parse(spec)?));
            }
            "--wal-fail-after" => {
                config.wal_fail_after = Some(parse_num(&mut it, "--wal-fail-after")?);
            }
            "--wal-fsync-stall" => {
                let spec = it.next().ok_or("--wal-fsync-stall needs N:MS")?;
                let (n, ms) = spec
                    .split_once(':')
                    .ok_or(format!("--wal-fsync-stall expects N:MS, got {spec:?}"))?;
                let n: u64 = n
                    .parse()
                    .map_err(|_| "--wal-fsync-stall N must be a number".to_owned())?;
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| "--wal-fsync-stall MS must be a number".to_owned())?;
                config.wal_fsync_stall = Some((n, ms));
            }
            "--recorder-cap" => {
                config.recorder_cap = parse_num(&mut it, "--recorder-cap")? as usize
            }
            "--recorder-threshold-us" => {
                config.recorder_threshold_us = parse_num(&mut it, "--recorder-threshold-us")?
            }
            "--history-interval-ms" => {
                config.history_interval_ms = parse_num(&mut it, "--history-interval-ms")?
            }
            "--history-cap" => config.history_cap = parse_num(&mut it, "--history-cap")? as usize,
            "--watchdog-stall-ms" => {
                config.watchdog_stall_ms = parse_num(&mut it, "--watchdog-stall-ms")?
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if config.fault_profile.label == "crash" && config.crash_plan.is_none() {
        // Derive a replayable kill-point from the fault seed (an explicit
        // --crash-at wins).
        config.crash_plan = Some(Arc::new(CrashPlan::from_seed(config.fault_seed)));
    }
    if let Some(plan) = &config.crash_plan {
        eprintln!(
            "crash injection armed: kill-point {}#{}",
            plan.point().name(),
            plan.at()
        );
    }
    if config.fault_profile.is_active() {
        eprintln!(
            "fault injection active: profile {} seed {}",
            config.fault_profile.label, config.fault_seed
        );
    }
    let handle = serve(config, dbs).map_err(|e| format!("cannot bind: {e}"))?;
    println!("listening on {}", handle.local_addr());
    // Serve forever; the process is stopped by a signal.
    loop {
        std::thread::park();
    }
}
