//! Per-database write-ahead log: the durability floor under live
//! mutations.
//!
//! Every *effective* mutation batch is appended here before the client
//! sees its `Mutated` acknowledgement. A record is self-delimiting and
//! self-verifying:
//!
//! ```text
//! uleb body_len | u32 crc32(body) LE | body
//! body = uleb epoch | uleb seq_after | uleb nops
//!        nops × (u8 kind | str rel | uleb arity | arity × str value)
//! ```
//!
//! where `str` is the protocol's length-prefixed UTF-8 encoding and
//! `seq_after` is the database's `mutation_seq` *after* the batch — since
//! only effective ops are logged, replaying a WAL on top of its snapshot
//! reproduces the sequence exactly, and the replay asserts it.
//!
//! The writer buffers in user space ([`BufWriter`]) on purpose: a record
//! that has been appended but not yet flushed/fsynced is genuinely lost
//! when the process dies, which is exactly the "unacknowledged mutations
//! are atomically absent" contract the crash tests pin down. A direct
//! write would park the bytes in the OS page cache where a `kill -9`
//! cannot touch them, silently weakening the test into a tautology.
//!
//! Recovery ([`scan_wal`]) distinguishes two kinds of bad tail:
//!
//! * a **torn tail** — the file ends mid-record. Normal crash residue
//!   (the process died between `write` and durability); truncated
//!   silently and counted in `cqcount_recovery_torn_tails_total`.
//! * a **corrupt record** — a complete frame whose CRC or body does not
//!   check out. Never produced by a clean crash; counted in
//!   `cqcount_recovery_corrupt_records_total`, which CI gates at zero.
//!
//! Either way the scan stops at the last valid record and the recovery
//! path truncates the file there — replay never guesses past a bad
//! frame, so a recovered count is always a count the server once served.

use crate::protocol::{read_str, read_uleb, write_str, write_uleb, MutationOp};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File name of the per-database log inside its data-dir subdirectory.
pub(crate) const WAL_FILE: &str = "wal.log";

/// Upper bound on a single record body; anything larger is treated as a
/// corrupt length prefix, not an allocation request. Generous: a maximal
/// mutation batch (2^16 ops × 8 KiB strings) stays well below it only in
/// pathological cases, but those arrive via `MAX_PAYLOAD`-capped frames
/// (16 MiB) and can never encode to more than a small multiple of that.
const MAX_RECORD_BODY: u64 = 64 << 20;

/// CRC-32 (IEEE 802.3, reflected), table-driven, std-only. Shared with
/// the snapshot format.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// One WAL record: an effective mutation batch and where it left the
/// database's mutation sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WalRecord {
    /// Epoch of the database instance the batch applied to. Replay skips
    /// records from an older epoch than the snapshot (they are already
    /// folded in or superseded by a reload).
    pub(crate) epoch: u64,
    /// `Database::mutation_seq` after the batch.
    pub(crate) seq_after: u64,
    /// The effective ops, in application order.
    pub(crate) ops: Vec<MutationOp>,
}

impl WalRecord {
    /// Encodes the full frame (length prefix + CRC + body).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32 + self.ops.len() * 16);
        write_uleb(&mut body, self.epoch);
        write_uleb(&mut body, self.seq_after);
        write_uleb(&mut body, self.ops.len() as u64);
        for op in &self.ops {
            body.push(u8::from(op.insert));
            write_str(&mut body, &op.rel);
            write_uleb(&mut body, op.values.len() as u64);
            for v in &op.values {
                write_str(&mut body, v);
            }
        }
        let mut out = Vec::with_capacity(body.len() + 16);
        write_uleb(&mut out, body.len() as u64);
        out.extend_from_slice(&crc32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    fn decode_body(body: &[u8]) -> Result<WalRecord, String> {
        let mut pos = 0usize;
        let epoch = read_uleb(body, &mut pos)?;
        let seq_after = read_uleb(body, &mut pos)?;
        let nops = read_uleb(body, &mut pos)?;
        if nops > crate::protocol::MAX_MUTATION_OPS as u64 {
            return Err(format!("record claims {nops} ops"));
        }
        let mut ops = Vec::with_capacity(nops as usize);
        for _ in 0..nops {
            let kind = *body.get(pos).ok_or("truncated op kind")?;
            pos += 1;
            let insert = match kind {
                0 => false,
                1 => true,
                other => return Err(format!("bad op kind {other}")),
            };
            let rel = read_str(body, &mut pos)?;
            let arity = read_uleb(body, &mut pos)?;
            if arity > crate::protocol::MAX_TUPLE_ARITY as u64 {
                return Err(format!("record claims arity {arity}"));
            }
            let mut values = Vec::with_capacity(arity as usize);
            for _ in 0..arity {
                values.push(read_str(body, &mut pos)?);
            }
            ops.push(MutationOp {
                insert,
                rel,
                values,
            });
        }
        if pos != body.len() {
            return Err("trailing bytes in record body".into());
        }
        Ok(WalRecord {
            epoch,
            seq_after,
            ops,
        })
    }
}

/// The append side of the log. All appends go through a [`BufWriter`];
/// see the module docs for why that buffering is load-bearing.
#[derive(Debug)]
pub(crate) struct WalWriter {
    out: BufWriter<File>,
    /// Fault injection: error every append once this many have succeeded
    /// (`--wal-fail-after N`). `None` = healthy disk.
    fail_after: Option<u64>,
    appended: u64,
    /// Fault injection: `(nth, ms)` makes the `nth` fsync (1-based) sleep
    /// `ms` milliseconds before syncing (`--wal-fsync-stall N:MS`) — a
    /// deterministic stand-in for a disk that momentarily seizes up. The
    /// sync still *succeeds*; only its latency is poisoned, which is what
    /// the flight-recorder forensics tests need. `None` = healthy disk.
    fsync_stall: Option<(u64, u64)>,
    synced: u64,
}

impl WalWriter {
    /// Opens (creating if absent) the log at `path` for appending.
    pub(crate) fn open(
        path: &Path,
        fail_after: Option<u64>,
        fsync_stall: Option<(u64, u64)>,
    ) -> std::io::Result<WalWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(WalWriter {
            out: BufWriter::new(file),
            fail_after,
            appended: 0,
            fsync_stall,
            synced: 0,
        })
    }

    /// Buffers one record. Returns the encoded size. Does *not* flush —
    /// the caller's fsync policy decides how far the bytes travel before
    /// the batch is acknowledged.
    pub(crate) fn append(&mut self, record: &WalRecord) -> std::io::Result<u64> {
        if let Some(n) = self.fail_after {
            if self.appended >= n {
                return Err(std::io::Error::other(
                    "injected WAL write error (--wal-fail-after)",
                ));
            }
        }
        let bytes = record.encode();
        self.out.write_all(&bytes)?;
        self.appended += 1;
        Ok(bytes.len() as u64)
    }

    /// Pushes buffered bytes to the OS (no fsync).
    pub(crate) fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }

    /// Flush + fsync: the record survives power loss after this returns.
    pub(crate) fn sync(&mut self) -> std::io::Result<()> {
        self.synced += 1;
        if let Some((nth, ms)) = self.fsync_stall {
            if self.synced == nth {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        self.out.flush()?;
        self.out.get_ref().sync_data()
    }

    /// Discards the log contents (after a successful snapshot has folded
    /// them in) and makes the truncation itself durable.
    pub(crate) fn truncate(&mut self) -> std::io::Result<()> {
        self.out.flush()?;
        let file = self.out.get_mut();
        file.set_len(0)?;
        file.seek(SeekFrom::Start(0))?;
        file.sync_data()
    }
}

/// The outcome of scanning a log during recovery.
#[derive(Debug, Default)]
pub(crate) struct WalScan {
    /// Every record up to the first bad frame, in file order.
    pub(crate) records: Vec<WalRecord>,
    /// End offset of each record in `records` — `ends[i]` is the byte
    /// length of the file prefix holding records `0..=i`. Recovery uses
    /// these to truncate at a *semantic* failure boundary, not just a
    /// framing one.
    pub(crate) ends: Vec<u64>,
    /// Byte length of the valid prefix; recovery truncates the file here.
    pub(crate) valid_len: u64,
    /// The file ended mid-record (normal crash residue).
    pub(crate) torn: bool,
    /// A complete frame failed its CRC or body decode (never produced by
    /// a clean crash; CI gates this at zero).
    pub(crate) corrupt: bool,
}

/// Reads and verifies the log at `path`. A missing file is an empty scan.
/// Never errors on bad *content* — damage is reported in the scan flags —
/// only on I/O failure reading the file.
pub(crate) fn scan_wal(path: &Path) -> std::io::Result<WalScan> {
    let mut buf = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut buf)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(e),
    }
    let mut scan = WalScan::default();
    let mut pos = 0usize;
    while pos < buf.len() {
        let start = pos;
        // Length prefix: a truncated varint is a torn tail.
        let body_len = match read_uleb(&buf, &mut pos) {
            Ok(v) => v,
            Err(_) => {
                scan.torn = true;
                break;
            }
        };
        if body_len > MAX_RECORD_BODY {
            // An insane length is corruption, not a short read: no honest
            // writer produced it, and treating it as torn would make the
            // CI zero-corruption gate blind to mangled length prefixes.
            scan.corrupt = true;
            break;
        }
        let Some(frame_end) = pos.checked_add(4 + body_len as usize) else {
            scan.corrupt = true;
            break;
        };
        if frame_end > buf.len() {
            scan.torn = true;
            break;
        }
        let crc_stored = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes"));
        let body = &buf[pos + 4..frame_end];
        if crc32(body) != crc_stored {
            scan.corrupt = true;
            break;
        }
        match WalRecord::decode_body(body) {
            Ok(rec) => scan.records.push(rec),
            Err(_) => {
                scan.corrupt = true;
                break;
            }
        }
        pos = frame_end;
        scan.ends.push(frame_end as u64);
        scan.valid_len = start as u64 + (frame_end - start) as u64;
    }
    scan.valid_len = scan.valid_len.min(buf.len() as u64);
    Ok(scan)
}

/// Truncates the log to its valid prefix, discarding a torn or corrupt
/// tail so the next append starts on a record boundary.
pub(crate) fn truncate_to(path: &Path, len: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_data()
}

/// The log's path inside a database's data directory.
pub(crate) fn wal_path(db_dir: &Path) -> PathBuf {
    db_dir.join(WAL_FILE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: u64, seq: u64, n: usize) -> WalRecord {
        WalRecord {
            epoch,
            seq_after: seq,
            ops: (0..n)
                .map(|i| MutationOp {
                    insert: i % 2 == 0,
                    rel: format!("r{i}"),
                    values: vec![format!("a{i}"), "b".into()],
                })
                .collect(),
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn record_roundtrip() {
        for r in [rec(1, 7, 0), rec(3, 99, 1), rec(2, 12, 5)] {
            let bytes = r.encode();
            let mut pos = 0usize;
            let len = read_uleb(&bytes, &mut pos).unwrap() as usize;
            let crc = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
            let body = &bytes[pos + 4..pos + 4 + len];
            assert_eq!(crc32(body), crc);
            assert_eq!(WalRecord::decode_body(body).unwrap(), r);
        }
    }

    #[test]
    fn scan_stops_cleanly_at_every_truncation_offset() {
        let dir = std::env::temp_dir().join(format!("cqwal_scan_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let records = [rec(1, 2, 2), rec(1, 4, 2), rec(1, 5, 1)];
        let mut full = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &records {
            full.extend_from_slice(&r.encode());
            boundaries.push(full.len());
        }
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_wal(&path).unwrap();
            // The valid prefix is the greatest record boundary <= cut.
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(scan.records.len(), whole, "cut at {cut}");
            assert_eq!(scan.records, records[..whole], "cut at {cut}");
            assert_eq!(scan.valid_len as usize, boundaries[whole]);
            assert_eq!(scan.torn, cut != boundaries[whole], "cut at {cut}");
            assert!(!scan.corrupt);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_flags_corrupt_interior_byte() {
        let dir = std::env::temp_dir().join(format!("cqwal_corrupt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let r0 = rec(1, 2, 2);
        let r1 = rec(1, 3, 1);
        let mut bytes = r0.encode();
        let first_len = bytes.len();
        bytes.extend_from_slice(&r1.encode());
        // Flip a byte inside the second record's body.
        bytes[first_len + 6] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records, vec![r0]);
        assert_eq!(scan.valid_len as usize, first_len);
        assert!(scan.corrupt);
        assert!(!scan.torn);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_fail_after_injects_errors() {
        let dir = std::env::temp_dir().join(format!("cqwal_fail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let mut w = WalWriter::open(&path, Some(2), None).unwrap();
        assert!(w.append(&rec(1, 1, 1)).is_ok());
        assert!(w.append(&rec(1, 2, 1)).is_ok());
        assert!(w.append(&rec(1, 3, 1)).is_err());
        w.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
