//! The evented serving front end: readiness-driven reactor shards.
//!
//! Each shard owns a `poll(2)` set (via [`cqcount_exec::poll`]) holding a
//! self-wake pipe, the listener (shard 0 only), and its share of the
//! accepted connections — `conn_id % nshards` picks the owner. Sockets are
//! non-blocking; frames are decoded incrementally out of per-connection
//! read buffers ([`crate::protocol::parse_frame_prefix`]), so one
//! connection may have many requests in flight at once (pipelining).
//!
//! Per decoded frame the shard either answers **inline** — admin opcodes
//! and warm-hit counting requests ([`crate::server::try_fast_path`]) never
//! touch the worker queue — or batches the request into the bounded queue
//! ([`cqcount_exec::BoundedQueue::try_push_batch`], one lock per readiness
//! sweep). Workers post [`Completion`]s back through the shard's mailbox
//! and wake its pipe.
//!
//! **Response ordering.** Protocol v5 frames carry request ids, so their
//! responses ship in *completion* order and the client matches them by id.
//! v4 frames have no ids; their responses are held in a per-connection
//! reorder buffer and released strictly in request order, which is exactly
//! the pre-pipelining contract — a v4 client cannot observe the reactor.
//!
//! **Trace buffering.** Workers attach their trace-log line to the
//! completion; the shard appends lines to a local buffer and writes it to
//! the shared sink once per drain batch, so `--trace-log` costs one file
//! write per sweep instead of one mutex acquisition per request.

use crate::faults::{ConnFaults, FaultyStream, JobFaults};
use crate::protocol::{parse_frame_prefix, ErrorCode, Frame, Request, Response, MAX_PAYLOAD, V5};
use crate::server::{
    counting_op, handle_admin, op_name, overload_response, try_fast_path, Job, Shared,
};
use cqcount_exec::poll::{poll_fds, PollFd, WakePipe, Waker, POLLIN, POLLOUT};
use cqcount_exec::BoundedQueue;
use cqcount_obs::trace;
use cqcount_obs::watchdog::HeartbeatKind;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Read chunk size per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;
/// Stop pulling more bytes off one connection within a single sweep once
/// its buffer holds this much undecoded input (fairness + memory bound).
/// A connection parked mid-frame is exempt up to the protocol's payload
/// cap: a single frame larger than this pause would otherwise never
/// finish arriving — reads pause, the buffer never drains, and the read
/// deadline reaps a well-behaved peer (bulk `RELOAD`s hit exactly this).
const RBUF_PAUSE: usize = 1 << 20;
/// Stop decoding new requests from a connection while this many are in
/// flight (per-connection pipelining cap; bytes stay buffered).
const MAX_INFLIGHT: usize = 1024;
/// Stop reading from a connection whose peer is not draining responses.
const WBUF_PAUSE: usize = 8 << 20;

/// A finished request on its way back to the owning shard.
pub(crate) struct Completion {
    pub(crate) conn_id: u64,
    pub(crate) seq: u64,
    pub(crate) response: Response,
    /// Pre-formatted `--trace-log` line (workers format, shards write).
    pub(crate) trace_line: Option<String>,
}

/// A newly accepted connection handed to its owning shard: id, socket,
/// and (when fault injection is active) the connection's fault lanes.
type IncomingConn = (u64, TcpStream, Option<Arc<ConnFaults>>);

/// One shard's inbound mailbox: new connections and finished jobs.
struct ShardMailbox {
    incoming: Mutex<Vec<IncomingConn>>,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

/// Handles to every shard, used by the accept path (to dispatch new
/// connections) and by workers (to post completions).
pub(crate) struct ReactorSet {
    shards: Vec<Arc<ShardMailbox>>,
    next_conn: AtomicU64,
}

impl ReactorSet {
    /// Builds `nshards` mailboxes plus the wake pipe each shard will own.
    pub(crate) fn new(nshards: usize) -> std::io::Result<(Arc<ReactorSet>, Vec<WakePipe>)> {
        let mut shards = Vec::with_capacity(nshards);
        let mut pipes = Vec::with_capacity(nshards);
        for _ in 0..nshards {
            let pipe = WakePipe::new()?;
            shards.push(Arc::new(ShardMailbox {
                incoming: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                waker: pipe.waker()?,
            }));
            pipes.push(pipe);
        }
        Ok((
            Arc::new(ReactorSet {
                shards,
                next_conn: AtomicU64::new(0),
            }),
            pipes,
        ))
    }

    fn shard_of(&self, conn_id: u64) -> &Arc<ShardMailbox> {
        &self.shards[(conn_id % self.shards.len() as u64) as usize]
    }

    /// Routes a finished job to its connection's shard and wakes it.
    pub(crate) fn post_completion(&self, c: Completion) {
        let shard = self.shard_of(c.conn_id);
        shard.completions.lock().unwrap().push(c);
        shard.waker.wake();
    }

    /// Hands a freshly accepted connection to its owning shard.
    fn post_conn(&self, id: u64, stream: TcpStream, faults: Option<Arc<ConnFaults>>) {
        let shard = self.shard_of(id);
        shard.incoming.lock().unwrap().push((id, stream, faults));
        shard.waker.wake();
    }

    /// Wakes every shard (shutdown).
    pub(crate) fn wake_all(&self) {
        for s in &self.shards {
            s.waker.wake();
        }
    }
}

/// A connection's transport: plain, or wrapped by the fault injector.
/// Fault lanes schedule by *byte offset*, so the reactor's read/write call
/// pattern (64 KiB non-blocking reads vs the old `BufReader` loop) does
/// not perturb replay determinism.
enum ConnStream {
    Plain(TcpStream),
    Faulty(FaultyStream),
}

impl ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ConnStream::Plain(s) => s.read(buf),
            ConnStream::Faulty(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ConnStream::Plain(s) => s.write(buf),
            ConnStream::Faulty(s) => s.write(buf),
        }
    }
}

/// Metadata held from decode until the response is ready.
struct PendingReq {
    version: u8,
    req_id: u64,
    decode_start: u64,
    /// `false` for frame-decode failures, which the blocking path never
    /// timed (they answered before the latency clock started).
    observe_latency: bool,
    /// Opcode label for the per-op latency histogram (empty for frames
    /// whose payload never decoded into a request).
    op: &'static str,
}

struct Conn {
    id: u64,
    fd: RawFd,
    stream: ConnStream,
    faults: Option<Arc<ConnFaults>>,
    /// Undecoded input.
    rbuf: Vec<u8>,
    /// Encoded responses not yet accepted by the kernel.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Per-connection decode sequence (allocates `seq`).
    next_seq: u64,
    pending: HashMap<u64, PendingReq>,
    /// v4 requests awaiting in-order release, oldest first.
    order: VecDeque<u64>,
    /// Completed v4 responses not yet at the front of `order`.
    ready: BTreeMap<u64, Vec<u8>>,
    last_read: Instant,
    /// Set while `wbuf` has unwritten bytes; refreshed on write progress.
    write_since: Option<Instant>,
    /// No more reads (EOF or fatal frame error); drain and close.
    closing: bool,
    /// A frame-level protocol error to ship once in-flight work drains.
    final_error: Option<Vec<u8>>,
    dead: bool,
    /// The buffered input ends inside a frame that needs more bytes than
    /// [`RBUF_PAUSE`] allows; reads stay open up to the payload cap.
    frame_incomplete: bool,
    /// Readiness flags for the current sweep.
    readable: bool,
    writable: bool,
}

impl Conn {
    fn new(id: u64, stream: TcpStream, faults: Option<Arc<ConnFaults>>) -> Conn {
        let fd = stream.as_raw_fd();
        let stream = match &faults {
            Some(f) => ConnStream::Faulty(f.wrap(stream)),
            None => ConnStream::Plain(stream),
        };
        Conn {
            id,
            fd,
            stream,
            faults,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            next_seq: 0,
            pending: HashMap::new(),
            order: VecDeque::new(),
            ready: BTreeMap::new(),
            last_read: Instant::now(),
            write_since: None,
            closing: false,
            final_error: None,
            dead: false,
            frame_incomplete: false,
            readable: false,
            writable: false,
        }
    }

    fn has_output(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// How much undecoded input this connection may buffer before reads
    /// pause: the fairness bound normally, the protocol's payload cap
    /// (plus header slack) while a single frame is still arriving.
    fn read_cap(&self) -> usize {
        if self.frame_incomplete {
            MAX_PAYLOAD + 64
        } else {
            RBUF_PAUSE
        }
    }

    /// Is this connection still willing to accept input bytes?
    fn wants_read(&self) -> bool {
        !self.closing
            && !self.dead
            && self.rbuf.len() < self.read_cap()
            && self.pending.len() < MAX_INFLIGHT
            && self.wbuf.len() - self.wpos < WBUF_PAUSE
    }

    /// Appends encoded bytes and starts the write-stall clock.
    fn push_output(&mut self, bytes: &[u8]) {
        if !self.has_output() {
            self.wbuf.clear();
            self.wpos = 0;
            self.write_since = Some(Instant::now());
        }
        self.wbuf.extend_from_slice(bytes);
    }
}

/// Everything a shard needs to run; consumed by [`run_reactor`].
pub(crate) struct ReactorConfig {
    pub(crate) shard: usize,
    pub(crate) shared: Arc<Shared>,
    pub(crate) queue: Arc<BoundedQueue<Job>>,
    pub(crate) set: Arc<ReactorSet>,
    pub(crate) pipe: WakePipe,
    /// Shard 0 owns the listener; other shards have `None`.
    pub(crate) listener: Option<TcpListener>,
}

/// The shard event loop. Runs until the server's stop flag is set, then
/// drains outstanding completions, flushes buffers, and returns.
pub(crate) fn run_reactor(cfg: ReactorConfig) {
    let ReactorConfig {
        shard,
        shared,
        queue,
        set,
        pipe,
        listener,
    } = cfg;
    let mailbox = Arc::clone(&set.shards[shard]);
    // Liveness contract with the stall watchdog: one beat per sweep. A
    // shard wedged inside a sweep (or no longer polling at all) goes
    // silent and gets flagged.
    let heartbeat = shared.watchdog.as_ref().map(|w| {
        w.register(
            format!("reactor-{shard}"),
            HeartbeatKind::Polled,
            trace::now_ns(),
        )
    });
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut jobs: Vec<Job> = Vec::new();
    let mut trace_buf = String::new();
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut poll_ids: Vec<u64> = Vec::new();
    let mut accept_backoff: Option<Instant> = None;

    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);

        // Build the poll set: wake pipe, listener (shard 0), connections.
        pollfds.clear();
        poll_ids.clear();
        pollfds.push(PollFd::new(pipe.poll_fd(), POLLIN));
        let listener_slot = listener.as_ref().and_then(|l| {
            if accept_backoff.is_some_and(|until| Instant::now() < until) {
                return None;
            }
            accept_backoff = None;
            pollfds.push(PollFd::new(l.as_raw_fd(), POLLIN));
            Some(pollfds.len() - 1)
        });
        let conn_base = pollfds.len();
        for conn in conns.values() {
            let mut events = 0i16;
            if conn.wants_read() {
                events |= POLLIN;
            }
            if conn.has_output() {
                events |= POLLOUT;
            }
            pollfds.push(PollFd::new(conn.fd, events));
            poll_ids.push(conn.id);
        }

        if !stopping {
            let timeout = poll_timeout(&shared, &conns);
            let _ = poll_fds(&mut pollfds, Some(timeout));
            shared.metrics.reactor_wakeups.inc();
        }

        if let Some(hb) = &heartbeat {
            hb.beat(trace::now_ns());
        }

        if pollfds[0].readable() {
            pipe.drain();
        }

        // Accept burst (shard 0). Connection ids follow accept order, so
        // the fault injector's per-connection lanes stay replayable.
        if let (Some(l), Some(slot)) = (listener.as_ref(), listener_slot) {
            if pollfds[slot].readable() && !stopping {
                loop {
                    match l.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(true);
                            let _ = stream.set_nodelay(true);
                            let id = set.next_conn.fetch_add(1, Ordering::SeqCst);
                            let faults = shared.injector.as_ref().map(|i| i.connection());
                            if (id % set.shards.len() as u64) as usize == shard {
                                conns.insert(id, Conn::new(id, stream, faults));
                            } else {
                                set.post_conn(id, stream, faults);
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => {
                            // Transient accept errors (EMFILE, aborted
                            // handshakes): back off instead of spinning.
                            accept_backoff = Some(Instant::now() + Duration::from_millis(20));
                            break;
                        }
                    }
                }
            }
        }

        // Adopt connections dispatched by shard 0.
        for (id, stream, faults) in mailbox.incoming.lock().unwrap().drain(..) {
            conns.insert(id, Conn::new(id, stream, faults));
        }

        // Mark per-connection readiness from the poll results.
        for (i, &id) in poll_ids.iter().enumerate() {
            if let Some(conn) = conns.get_mut(&id) {
                conn.readable = pollfds[conn_base + i].readable();
                conn.writable = pollfds[conn_base + i].writable();
            }
        }

        // Drain finished jobs. Worker completions count as served; their
        // trace lines are buffered locally and written once per sweep.
        let drained: Vec<Completion> = std::mem::take(&mut *mailbox.completions.lock().unwrap());
        // One span per sweep that actually moves requests or responses —
        // idle timeouts never record, so a quiet reactor stays silent.
        let any_input = conns
            .values()
            .any(|c| (c.readable && c.wants_read()) || (!c.rbuf.is_empty() && !c.dead));
        let sweep_span = (!drained.is_empty() || any_input).then(|| trace::span("reactor.sweep"));
        if let Some(span) = &sweep_span {
            span.add("completions", drained.len() as u64);
        }
        for c in drained {
            if let Some(line) = c.trace_line {
                trace_buf.push_str(&line);
            }
            if let Some(conn) = conns.get_mut(&c.conn_id) {
                shared.metrics.served.inc();
                complete(&shared, conn, c.seq, c.response);
            }
        }

        // Read + decode + dispatch for every conn with fresh bytes or a
        // backlog that freed up (completions may have lifted a pause).
        let ids: Vec<u64> = conns.keys().copied().collect();
        for id in ids {
            let conn = conns.get_mut(&id).unwrap();
            if conn.readable && conn.wants_read() {
                fill_read(conn, &mut scratch);
            }
            conn.readable = false;
            if !conn.rbuf.is_empty() && !conn.dead {
                process_input(&shared, &queue, conn, &mut jobs, &mut trace_buf);
            }
            if conn.closing && conn.pending.is_empty() {
                if let Some(e) = conn.final_error.take() {
                    conn.push_output(&e);
                }
                if !conn.has_output() {
                    conn.dead = true;
                }
            }
        }

        // One-lock batch admission for everything this sweep decoded; the
        // overflow bounces straight back as Overloaded replies.
        if !jobs.is_empty() {
            let overflow = queue.try_push_batch(jobs.drain(..));
            shared.metrics.queue_depth.set(queue.len() as u64);
            for job in overflow {
                let resp = overload_response(&shared, &queue);
                if let Some(conn) = conns.get_mut(&job.conn_id) {
                    complete(&shared, conn, job.seq, resp);
                }
            }
        }

        // Push buffered responses to the kernel.
        for conn in conns.values_mut() {
            if conn.has_output() {
                flush_writes(&shared, conn);
            }
            conn.writable = false;
        }

        // Ship this sweep's trace lines in one write.
        if !trace_buf.is_empty() {
            if let Some(sink) = &shared.trace {
                sink.append(&trace_buf);
            }
            trace_buf.clear();
        }
        drop(sweep_span);

        reap(&shared, &mut conns);
        conns.retain(|_, c| !c.dead);

        if stopping {
            break;
        }
    }
}

/// Shortest deadline among idle-reap and write-stall clocks, clamped to
/// [1 ms, 500 ms]. Connections waiting on workers have no read deadline
/// (the blocking path's timeout also only ran between frames).
fn poll_timeout(shared: &Shared, conns: &HashMap<u64, Conn>) -> Duration {
    let mut timeout = Duration::from_millis(500);
    let now = Instant::now();
    let read_to = shared.config.read_timeout_ms;
    let write_to = shared.config.write_timeout_ms;
    for conn in conns.values() {
        if read_to > 0 && conn.pending.is_empty() && !conn.has_output() && !conn.closing {
            let deadline = conn.last_read + Duration::from_millis(read_to);
            timeout = timeout.min(deadline.saturating_duration_since(now));
        }
        if write_to > 0 && conn.has_output() {
            if let Some(since) = conn.write_since {
                let deadline = since + Duration::from_millis(write_to);
                timeout = timeout.min(deadline.saturating_duration_since(now));
            }
        }
    }
    timeout.max(Duration::from_millis(1))
}

/// Closes connections past their deadlines: idle peers are *reaped*
/// (counted), stalled writers are dropped silently — both mirror the
/// blocking path's read/write socket timeouts.
fn reap(shared: &Shared, conns: &mut HashMap<u64, Conn>) {
    let now = Instant::now();
    let read_to = shared.config.read_timeout_ms;
    let write_to = shared.config.write_timeout_ms;
    for conn in conns.values_mut() {
        if conn.dead {
            continue;
        }
        if read_to > 0
            && conn.pending.is_empty()
            && !conn.has_output()
            && !conn.closing
            && now.duration_since(conn.last_read) >= Duration::from_millis(read_to)
        {
            shared.metrics.reaped.inc();
            conn.dead = true;
        }
        if write_to > 0 && conn.has_output() {
            if let Some(since) = conn.write_since {
                if now.duration_since(since) >= Duration::from_millis(write_to) {
                    conn.dead = true;
                }
            }
        }
    }
}

/// Pulls every available byte (up to the pause threshold) off the socket.
fn fill_read(conn: &mut Conn, scratch: &mut [u8]) {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // EOF: no more requests, but in-flight work still answers.
                conn.closing = true;
                return;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&scratch[..n]);
                conn.last_read = Instant::now();
                if conn.rbuf.len() >= conn.read_cap() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                // Hard error (reset, injected disconnect): nothing more
                // can be delivered to this peer.
                conn.dead = true;
                return;
            }
        }
    }
}

/// Decodes and dispatches every complete frame buffered on `conn`.
fn process_input(
    shared: &Shared,
    queue: &Arc<BoundedQueue<Job>>,
    conn: &mut Conn,
    jobs: &mut Vec<Job>,
    trace_buf: &mut String,
) {
    let mut consumed = 0usize;
    conn.frame_incomplete = false;
    while conn.pending.len() < MAX_INFLIGHT && conn.wbuf.len() - conn.wpos < WBUF_PAUSE {
        match parse_frame_prefix(&conn.rbuf[consumed..]) {
            Ok(None) => {
                // The remaining bytes are a frame prefix; keep reading
                // past the fairness pause until it completes.
                conn.frame_incomplete = consumed < conn.rbuf.len();
                break;
            }
            Ok(Some((frame, used))) => {
                consumed += used;
                handle_frame(shared, queue, conn, frame, jobs, trace_buf);
                if conn.closing || conn.dead {
                    break;
                }
            }
            Err(msg) => {
                // Unrecoverable framing: answer with a protocol error once
                // in-flight requests drain, then close. (A v4-ordered
                // error released early would desequence earlier replies.)
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("protocol error: {msg}"),
                    retry_after_ms: 0,
                };
                shared.account(&resp);
                conn.final_error = Some(resp.encode(crate::protocol::V4, 0));
                conn.closing = true;
                break;
            }
        }
    }
    if consumed > 0 {
        conn.rbuf.drain(..consumed);
    }
}

/// Routes one decoded frame: admin inline, warm hits inline (fast path),
/// everything else into the job batch.
fn handle_frame(
    shared: &Shared,
    queue: &Arc<BoundedQueue<Job>>,
    conn: &mut Conn,
    frame: Frame,
    jobs: &mut Vec<Job>,
    trace_buf: &mut String,
) {
    let decode_start = trace::now_ns();
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let version = frame.version;
    let req_id = frame.req_id;
    let request = match Request::decode(&frame) {
        Ok(r) => r,
        Err(e) => {
            // Malformed payload in a well-framed request: reply in
            // sequence and keep the connection (the blocking path's
            // behavior, which also skipped the latency histogram here).
            conn.pending.insert(
                seq,
                PendingReq {
                    version,
                    req_id,
                    decode_start,
                    observe_latency: false,
                    op: "",
                },
            );
            if version < V5 {
                conn.order.push_back(seq);
            }
            let resp = Response::Error {
                code: ErrorCode::Protocol,
                message: format!("protocol error: {e}"),
                retry_after_ms: 0,
            };
            complete(shared, conn, seq, resp);
            return;
        }
    };
    let decode_ns = trace::now_ns().saturating_sub(decode_start);
    shared.metrics.op_counter(&request).inc();
    conn.pending.insert(
        seq,
        PendingReq {
            version,
            req_id,
            decode_start,
            observe_latency: true,
            op: op_name(&request),
        },
    );
    if version < V5 {
        conn.order.push_back(seq);
    }

    if let Some(response) = handle_admin(shared, queue, &request) {
        complete(shared, conn, seq, response);
        return;
    }

    // Counting work. Job faults are drawn here, at decode, in request
    // order per connection — same RNG stream as the blocking path. A
    // drawn fault forces the worker route so panics and cap trips fire
    // even when the answer is warm.
    let faults = conn
        .faults
        .as_ref()
        .filter(|_| counting_op(&request))
        .map_or_else(JobFaults::default, |c| c.job_faults());
    if faults == JobFaults::default() {
        if let Some((response, line)) = try_fast_path(shared, &request) {
            shared.metrics.fast_path_hits.inc();
            shared.metrics.served.inc();
            if let Some(line) = line {
                trace_buf.push_str(&line);
            }
            complete(shared, conn, seq, response);
            return;
        }
    }
    jobs.push(Job {
        request,
        conn_id: conn.id,
        seq,
        faults,
        submitted_ns: trace::now_ns(),
        decode_ns,
    });
}

/// Books a finished response: error/degraded accounting, the latency
/// histogram, encoding, and v4 in-order release vs v5 completion-order
/// release.
fn complete(shared: &Shared, conn: &mut Conn, seq: u64, response: Response) {
    let Some(p) = conn.pending.remove(&seq) else {
        return;
    };
    shared.account(&response);
    if p.observe_latency {
        let us = trace::now_ns().saturating_sub(p.decode_start) / 1_000;
        shared.metrics.latency_us.observe(us);
        if let Some(h) = shared.metrics.op_latency(p.op) {
            h.observe(us);
        }
    }
    let bytes = response.encode(p.version, p.req_id);
    if p.version >= V5 {
        conn.push_output(&bytes);
    } else {
        conn.ready.insert(seq, bytes);
        while let Some(front) = conn.order.front().copied() {
            match conn.ready.remove(&front) {
                Some(b) => {
                    conn.order.pop_front();
                    conn.push_output(&b);
                }
                None => break,
            }
        }
    }
}

/// Writes as much buffered output as the kernel will take.
fn flush_writes(shared: &Shared, conn: &mut Conn) {
    let start = trace::now_ns();
    let mut progressed = false;
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.wpos += n;
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.wpos >= conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
        conn.write_since = None;
        if conn.closing && conn.pending.is_empty() && conn.final_error.is_none() {
            conn.dead = true;
        }
    } else if progressed {
        conn.write_since = Some(Instant::now());
    }
    if progressed {
        shared
            .metrics
            .reply_write_us
            .observe(trace::now_ns().saturating_sub(start) / 1_000);
    }
}
