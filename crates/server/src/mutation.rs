//! Live mutation of loaded databases with incremental count maintenance.
//!
//! Protocol v6's `INSERT`/`DELETE`/`MUTATE` opcodes edit a database *in
//! place* — no reload, no epoch bump. Three layers keep counts fresh and
//! caches honest:
//!
//! * **The database** absorbs the tuple edit under its [`DbState`] write
//!   lock ([`cqcount_relational::Database::insert_tuple`] /
//!   [`cqcount_relational::Database::delete_tuple`]), bumping its
//!   `mutation_seq` once per *effective* op (duplicate inserts and absent
//!   deletes are no-ops).
//! * **Materialized counts** ([`cqcount_delta::MaterializedCount`]) pin a
//!   full acyclic query's join-tree DP state; the count path registers one
//!   per cold count (bounded FIFO registry, [`MaterializedSet`]). Each
//!   effective op is pushed through every live materialization that
//!   mentions the touched relation — O(path × bag-width) per op instead
//!   of a recount — and the refreshed counts are re-published into the
//!   count cache, so the next `COUNT` of a maintained query is a warm hit
//!   even though the data just changed.
//! * **The count cache** is swept *surgically*
//!   ([`crate::cache::CountCache::invalidate_relations`]): only entries
//!   whose query mentions a touched relation die. Counts over untouched
//!   relations and every cached plan survive — plans are data-independent.
//!
//! The fallback ladder never yields a wrong count: a materialization that
//! cannot absorb a delta (state divergence, [`cqcount_delta::DeltaFault`])
//! is dropped and counted in `cqcount_delta_fallbacks_total`; its cache
//! entry was already invalidated by the sweep, so the next count simply
//! runs cold. Queries that are not maintainable (cyclic, projections,
//! constants-only atoms) are never materialized and always take the sweep
//! path. A reload still bumps the epoch and eagerly purges both the dead
//! cache entries and the database's materializations.
//!
//! Locking: the batch runs entirely under the database's write lock —
//! including the cache sweep and re-publish — while count workers insert
//! into the cache under the same database's *read* lock. The exclusion
//! means a cached count was either computed before the mutation (then the
//! sweep saw it) or after (then it read post-mutation data); a stale
//! count can never be published past a sweep.

use crate::cache::CountInfo;
use crate::protocol::{ErrorCode, MutationOp, Request, Response};
use crate::server::{lookup_db, Shared};
use cqcount_delta::MaterializedCount;
use cqcount_obs::trace;
use cqcount_query::ConjunctiveQuery;
use cqcount_relational::{Database, Value};
use std::collections::{BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};

/// One pinned materialization: a query's join-tree DP state over a
/// database at a specific epoch.
pub(crate) struct Materialized {
    /// Canonical query text (the count-cache key's query component).
    pub(crate) canonical: String,
    /// Database name.
    pub(crate) db: String,
    /// Epoch the materialization was built under; a reload orphans it.
    pub(crate) epoch: u64,
    /// The maintained DP state.
    pub(crate) mc: MaterializedCount,
}

/// A bounded FIFO registry of live materializations. Small by design:
/// each entry pins O(total view rows) of memory, so the registry keeps
/// the most recently materialized queries and lets old ones age out —
/// an evicted query is still correct, it just recounts cold after the
/// next mutation instead of being patched.
pub(crate) struct MaterializedSet {
    cap: usize,
    entries: Mutex<VecDeque<Materialized>>,
}

impl MaterializedSet {
    /// A registry pinning at most `cap` materializations (`0` disables
    /// materialization entirely; mutations then invalidate only).
    pub(crate) fn new(cap: usize) -> MaterializedSet {
        MaterializedSet {
            cap,
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// Is `(canonical, db)` already pinned at `epoch`?
    pub(crate) fn contains(&self, canonical: &str, db: &str, epoch: u64) -> bool {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .any(|m| m.epoch == epoch && m.db == db && m.canonical == canonical)
    }

    /// Pins a materialization, replacing any previous entry for the same
    /// `(canonical, db)` and evicting FIFO beyond the cap.
    pub(crate) fn register(&self, m: Materialized) {
        if self.cap == 0 {
            return;
        }
        let mut entries = self.entries.lock().unwrap();
        entries.retain(|e| !(e.db == m.db && e.canonical == m.canonical));
        entries.push_back(m);
        while entries.len() > self.cap {
            entries.pop_front();
        }
    }

    /// Drops every materialization (FLUSH).
    pub(crate) fn clear(&self) {
        self.entries.lock().unwrap().clear();
    }

    /// Drops materializations of `db` built under an epoch older than
    /// `current` (RELOAD).
    pub(crate) fn purge_epochs_below(&self, db: &str, current: u64) {
        self.entries
            .lock()
            .unwrap()
            .retain(|m| m.db != db || m.epoch >= current);
    }
}

/// The relation symbols `q` mentions, sorted and deduped — the
/// invalidation scope stored with every cached count.
pub(crate) fn query_relations(q: &ConjunctiveQuery) -> Vec<String> {
    let set: BTreeSet<&str> = q.atoms().iter().map(|a| a.rel.as_str()).collect();
    set.into_iter().map(str::to_owned).collect()
}

/// Called by the count path after computing a fresh (non-degraded) count:
/// pins a materialization when the query is maintainable and none is
/// already live for `(canonical, db)` at this epoch. The caller holds the
/// database read lock, so the DP state is built against exactly the data
/// the count saw.
pub(crate) fn maybe_materialize(
    shared: &Shared,
    q: &ConjunctiveQuery,
    db: &Database,
    canonical: &str,
    db_name: &str,
    epoch: u64,
) {
    if shared.config.materialize_cap == 0 || shared.materialized.contains(canonical, db_name, epoch)
    {
        return;
    }
    let sp = trace::span("mutate.materialize");
    let Some(mc) = MaterializedCount::build(q, db) else {
        sp.tag("outcome", "not_maintainable");
        return;
    };
    sp.tag("outcome", "pinned");
    sp.add("pinned_rows", mc.pinned_rows() as u64);
    shared.materialized.register(Materialized {
        canonical: canonical.to_owned(),
        db: db_name.to_owned(),
        epoch,
        mc,
    });
}

/// Converts a single-op request into the batch form `run_mutation` takes.
pub(crate) fn ops_of(request: &Request) -> Option<(&str, Vec<MutationOp>)> {
    match request {
        Request::Insert { db, rel, values } => Some((
            db,
            vec![MutationOp {
                insert: true,
                rel: rel.clone(),
                values: values.clone(),
            }],
        )),
        Request::Delete { db, rel, values } => Some((
            db,
            vec![MutationOp {
                insert: false,
                rel: rel.clone(),
                values: values.clone(),
            }],
        )),
        Request::Mutate { db, ops } => Some((db, ops.clone())),
        _ => None,
    }
}

/// Executes one mutation batch on a worker.
///
/// Ops apply strictly in order under the database write lock. An op that
/// fails (arity conflict with the stored relation) aborts the remainder
/// of the batch but leaves earlier ops applied — the propagation phase
/// still runs for them, so caches stay honest, and the error reply names
/// the offending op. The success reply carries the number of *effective*
/// ops and the database's mutation sequence after the batch.
///
/// When the server has a `--data-dir`, the batch's effective ops are
/// appended to the database's WAL (and fsynced per the durability
/// policy) *before* the reply is sent — so an acknowledged batch is on
/// disk. A WAL failure rolls the batch back in memory, flips the
/// database read-only, and answers [`ErrorCode::ReadOnly`]: the reply
/// then truthfully says "nothing happened".
pub(crate) fn run_mutation(shared: &Shared, db_name: &str, ops: &[MutationOp]) -> Response {
    let state = match lookup_db(shared, db_name) {
        Ok(s) => s,
        Err(resp) => return *resp,
    };
    let apply_sp = trace::span("mutate.apply");
    apply_sp.tag("db", db_name);
    apply_sp.add("ops", ops.len() as u64);
    let mut db = state.db.write().unwrap();
    if let Some(d) = &state.durable {
        if d.read_only() {
            return Response::Error {
                code: ErrorCode::ReadOnly,
                message: format!(
                    "database {db_name:?} is read-only: {}",
                    d.read_only_reason()
                ),
                retry_after_ms: 0,
            };
        }
    }
    let seq_before = db.mutation_seq();

    let mut changed = 0u64;
    let mut bags_touched = 0u64;
    let mut touched: BTreeSet<String> = BTreeSet::new();
    let mut effective_ops: Vec<MutationOp> = Vec::new();
    let mut failure: Option<Response> = None;
    for (i, op) in ops.iter().enumerate() {
        let values: Vec<&str> = op.values.iter().map(String::as_str).collect();
        let effective = if op.insert {
            db.insert_tuple(&op.rel, &values)
        } else {
            db.delete_tuple(&op.rel, &values)
        };
        match effective {
            Ok(false) => {}
            Ok(true) => {
                changed += 1;
                touched.insert(op.rel.clone());
                let tuple: Vec<Value> = op
                    .values
                    .iter()
                    .map(|v| {
                        db.interner()
                            .get(v)
                            .expect("an effective mutation's constants are interned")
                    })
                    .collect();
                bags_touched +=
                    patch_materializations(shared, &db, db_name, state.epoch, op, &tuple);
                effective_ops.push(op.clone());
            }
            Err(e) => {
                failure = Some(Response::Error {
                    code: ErrorCode::Plan,
                    message: format!("mutation rejected at op {i}: {e}"),
                    retry_after_ms: 0,
                });
                break;
            }
        }
    }

    // Durability: the effective ops (even those preceding a rejected op —
    // they *are* applied) hit the WAL before any acknowledgement leaves
    // this function. On failure the batch is rolled back in memory so
    // the `ReadOnly` reply means "atomically absent".
    if !effective_ops.is_empty() {
        if let Some(d) = &state.durable {
            let record = crate::wal::WalRecord {
                epoch: state.epoch,
                seq_after: db.mutation_seq(),
                ops: effective_ops.clone(),
            };
            match d.log_batch(&db, state.epoch, &record) {
                Ok(out) => {
                    shared.metrics.wal_records.inc();
                    shared.metrics.wal_bytes.add(out.bytes);
                    if out.fsynced {
                        shared.metrics.wal_fsyncs.inc();
                    }
                    if out.snapshotted {
                        shared.metrics.snapshots.inc();
                    }
                }
                Err(e) => {
                    for op in effective_ops.iter().rev() {
                        let values: Vec<&str> = op.values.iter().map(String::as_str).collect();
                        let undone = if op.insert {
                            db.delete_tuple(&op.rel, &values)
                        } else {
                            db.insert_tuple(&op.rel, &values)
                        };
                        debug_assert!(matches!(undone, Ok(true)), "rollback must invert exactly");
                        let inverse = MutationOp {
                            insert: !op.insert,
                            rel: op.rel.clone(),
                            values: op.values.clone(),
                        };
                        let tuple: Vec<Value> = op
                            .values
                            .iter()
                            .map(|v| {
                                db.interner()
                                    .get(v)
                                    .expect("a rolled-back mutation's constants are interned")
                            })
                            .collect();
                        bags_touched += patch_materializations(
                            shared,
                            &db,
                            db_name,
                            state.epoch,
                            &inverse,
                            &tuple,
                        );
                    }
                    db.set_mutation_seq(seq_before);
                    changed = 0;
                    d.set_read_only(format!("WAL append failed: {e}"));
                    failure = Some(Response::Error {
                        code: ErrorCode::ReadOnly,
                        message: format!(
                            "database {db_name:?} is now read-only (batch rolled back): \
                             WAL append failed: {e}"
                        ),
                        retry_after_ms: 0,
                    });
                }
            }
        }
    }
    shared.metrics.mutations.add(changed);
    shared.metrics.delta_bags_touched.add(bags_touched);
    apply_sp.add("changed", changed);
    drop(apply_sp);

    // Propagation: surgically invalidate dependent cache entries, then
    // re-publish the maintained counts (they are fresh). Still under the
    // write lock — see the module docs for why the order is safe.
    if !touched.is_empty() {
        let prop_sp = trace::span("mutate.propagate");
        let rels: Vec<String> = touched.iter().cloned().collect();
        let invalidated = shared
            .counts
            .invalidate_relations(db_name, state.epoch, &rels);
        let republished = republish_counts(shared, db_name, state.epoch, &touched);
        prop_sp.add("bags_touched", bags_touched);
        prop_sp.add("invalidated", invalidated);
        prop_sp.add("republished", republished);
    }

    let mutation_seq = db.mutation_seq();
    drop(db);
    failure.unwrap_or(Response::Mutated {
        changed,
        mutation_seq,
    })
}

/// Executes a `SYNC`: forces an fsync + snapshot cycle so everything up
/// to the current `mutation_seq` is durable, then reports the durable
/// watermark. Runs under the database *read* lock — mutations are
/// excluded, concurrent counts are not. On a server without `--data-dir`
/// it answers honestly with `durable_seq: 0` (nothing is durable).
pub(crate) fn run_sync(shared: &Shared, db_name: &str) -> Response {
    let state = match lookup_db(shared, db_name) {
        Ok(s) => s,
        Err(resp) => return *resp,
    };
    let sp = trace::span("mutate.sync");
    sp.tag("db", db_name);
    let db = state.db.read().unwrap();
    let mutation_seq = db.mutation_seq();
    let Some(d) = &state.durable else {
        return Response::Synced {
            epoch: state.epoch,
            mutation_seq,
            durable_seq: 0,
        };
    };
    match d.sync_and_snapshot(&db, state.epoch) {
        Ok(()) => {
            shared.metrics.snapshots.inc();
            shared.metrics.wal_fsyncs.inc();
            Response::Synced {
                epoch: state.epoch,
                mutation_seq,
                durable_seq: d.durable_seq(),
            }
        }
        Err(e) => {
            d.set_read_only(format!("SYNC snapshot failed: {e}"));
            Response::Error {
                code: ErrorCode::ReadOnly,
                message: format!("database {db_name:?} is now read-only: SYNC failed: {e}"),
                retry_after_ms: 0,
            }
        }
    }
}

/// Pushes one effective op through every live materialization of this
/// database that mentions the touched relation. A materialization whose
/// state diverges ([`cqcount_delta::DeltaFault`]) is dropped on the spot
/// and counted as a fallback — the cache sweep that follows makes its
/// entry cold, never wrong. Returns the bags re-aggregated.
fn patch_materializations(
    shared: &Shared,
    db: &Database,
    db_name: &str,
    epoch: u64,
    op: &MutationOp,
    tuple: &[Value],
) -> u64 {
    let mut entries = shared.materialized.entries.lock().unwrap();
    let mut bags = 0u64;
    entries.retain_mut(|m| {
        if m.db != db_name || m.epoch != epoch || !m.mc.mentions(&op.rel) {
            return true;
        }
        match m.mc.apply_delta(db, &op.rel, tuple, op.insert) {
            Ok(outcome) => {
                bags += outcome.bags_touched;
                true
            }
            Err(_) => {
                shared.metrics.delta_fallbacks.inc();
                false
            }
        }
    });
    bags
}

/// Re-installs the (fresh) counts of every live materialization of this
/// database that mentions a touched relation, so the next `COUNT` of a
/// maintained query hits the cache instead of recounting. Returns how
/// many counts were published.
fn republish_counts(shared: &Shared, db_name: &str, epoch: u64, touched: &BTreeSet<String>) -> u64 {
    let entries = shared.materialized.entries.lock().unwrap();
    let mut published = 0u64;
    for m in entries.iter() {
        if m.db != db_name || m.epoch != epoch || !touched.iter().any(|r| m.mc.mentions(r)) {
            continue;
        }
        shared.counts.insert(
            (m.canonical.clone(), db_name.to_owned(), epoch),
            Arc::new(CountInfo {
                value: m.mc.count(),
                rels: m
                    .mc
                    .relations()
                    .map(str::to_owned)
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect(),
            }),
        );
        published += 1;
    }
    published
}
