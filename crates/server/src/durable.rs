//! The per-database durability coordinator: glues the WAL
//! ([`crate::wal`]), snapshots ([`crate::snapshot`]), the fsync policy,
//! and the crash/IO fault hooks ([`crate::faults`]) into the mutation
//! path.
//!
//! Policy matrix (what survives a `kill -9` at each setting):
//!
//! | policy   | per-batch syscalls      | `durable_seq` advances      |
//! |----------|-------------------------|-----------------------------|
//! | `always` | write + fsync           | every acknowledged batch    |
//! | `batch`  | write; fsync every 32   | on each group fsync         |
//! | `off`    | write only              | only on snapshot / `SYNC`   |
//!
//! Under every policy the record is *written* (to the OS) before the
//! acknowledgement, so only an OS/power failure — not a process death —
//! can lose an acked batch under `batch`/`off`; under `always` nothing
//! short of media failure can. `durable_seq` is the highest
//! `mutation_seq` covered by a completed fsync or snapshot: the number a
//! client compares its `Mutated` receipt against to learn whether a
//! non-retried mutation survived (see README's lost-reply procedure).
//!
//! **Read-only degradation.** Any WAL or snapshot I/O error flips the
//! database to read-only: the failed batch is rolled back in memory
//! (mutations answer `ErrorCode::ReadOnly` from then on) while counts
//! keep serving the last consistent state. The flag heals on a
//! successful `RELOAD`/`SYNC` snapshot — deliberately operator-driven,
//! never automatic retry.

use crate::faults::{CrashPlan, CrashPoint};
use crate::snapshot::{decode_db_dir, encode_db_dir, recover_db, write_snapshot, Recovered};
use crate::wal::{wal_path, WalRecord, WalWriter};
use cqcount_obs::trace;
use cqcount_relational::Database;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Under `batch`, fsync once per this many appended records.
pub(crate) const BATCH_FSYNC_EVERY: u64 = 32;

/// When to fsync the WAL relative to acknowledging a mutation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// fsync before every acknowledgement.
    Always,
    /// fsync once per [`BATCH_FSYNC_EVERY`] records.
    Batch,
    /// Never fsync on the mutation path (snapshots and `SYNC` still do).
    Off,
}

impl DurabilityPolicy {
    /// Parses a `--durability` name.
    pub fn parse(name: &str) -> Result<DurabilityPolicy, String> {
        match name {
            "always" => Ok(DurabilityPolicy::Always),
            "batch" => Ok(DurabilityPolicy::Batch),
            "off" => Ok(DurabilityPolicy::Off),
            other => Err(format!(
                "unknown durability policy {other:?} (expected always, batch, or off)"
            )),
        }
    }

    /// The `--durability` spelling.
    pub fn name(self) -> &'static str {
        match self {
            DurabilityPolicy::Always => "always",
            DurabilityPolicy::Batch => "batch",
            DurabilityPolicy::Off => "off",
        }
    }
}

/// What one logged batch cost, for the metrics counters.
#[derive(Default)]
pub(crate) struct LogOutcome {
    pub(crate) bytes: u64,
    pub(crate) fsynced: bool,
    pub(crate) snapshotted: bool,
}

/// The data-dir-wide configuration, held by `Shared` when `--data-dir`
/// is set.
pub(crate) struct DurableStore {
    data_dir: PathBuf,
    policy: DurabilityPolicy,
    snapshot_every: u64,
    wal_fail_after: Option<u64>,
    wal_fsync_stall: Option<(u64, u64)>,
    crash: Option<Arc<CrashPlan>>,
}

impl DurableStore {
    pub(crate) fn new(
        data_dir: PathBuf,
        policy: DurabilityPolicy,
        snapshot_every: u64,
        wal_fail_after: Option<u64>,
        crash: Option<Arc<CrashPlan>>,
        wal_fsync_stall: Option<(u64, u64)>,
    ) -> DurableStore {
        DurableStore {
            data_dir,
            policy,
            snapshot_every,
            wal_fail_after,
            wal_fsync_stall,
            crash,
        }
    }

    fn db_dir(&self, name: &str) -> PathBuf {
        self.data_dir.join(encode_db_dir(name))
    }

    /// Opens (creating) the durable state for one database. Infallible
    /// by design: an I/O error here yields a handle that is already
    /// read-only with the error as its reason, so the database still
    /// installs and serves counts.
    pub(crate) fn open_db(&self, name: &str) -> DbDurable {
        let dir = self.db_dir(name);
        let opened = std::fs::create_dir_all(&dir).and_then(|()| {
            WalWriter::open(&wal_path(&dir), self.wal_fail_after, self.wal_fsync_stall)
        });
        let durable = DbDurable::new(self, dir);
        match opened {
            Ok(writer) => *durable.wal.lock().unwrap() = Some(writer),
            Err(e) => durable.set_read_only(format!("cannot open WAL: {e}")),
        }
        durable
    }

    /// Rebuilds every database found under the data dir. Foreign entries
    /// (names that are not valid [`encode_db_dir`] output, plain files)
    /// are skipped. Returns `(name, recovery, durable handle)` triples;
    /// the caller installs them and folds the recovery numbers into the
    /// metrics registry.
    pub(crate) fn recover_all(&self) -> std::io::Result<Vec<(String, Recovered, DbDurable)>> {
        std::fs::create_dir_all(&self.data_dir)?;
        let mut out = Vec::new();
        let mut entries: Vec<_> = std::fs::read_dir(&self.data_dir)?
            .filter_map(Result::ok)
            .collect();
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            if !entry.file_type().map(|t| t.is_dir()).unwrap_or(false) {
                continue;
            }
            let Some(name) = decode_db_dir(&entry.file_name().to_string_lossy()) else {
                continue;
            };
            let dir = entry.path();
            let recovered = recover_db(&dir)?;
            let mut durable = self.open_db(&name);
            // Everything replay produced came off disk, so the whole
            // recovered state is durable by construction.
            durable
                .durable_seq
                .store(recovered.db.mutation_seq(), Ordering::Relaxed);
            durable.recovered_records = recovered.replayed;
            out.push((name, recovered, durable));
        }
        Ok(out)
    }
}

/// Per-database durable state, shared between the mutation path (under
/// the database write lock), `SYNC` (under the read lock), and `STATS`
/// (lock-free reads of the atomics).
#[derive(Debug)]
pub(crate) struct DbDurable {
    dir: PathBuf,
    policy: DurabilityPolicy,
    snapshot_every: u64,
    crash: Option<Arc<CrashPlan>>,
    /// `None` only when the WAL could not even be opened (the handle is
    /// then read-only from birth).
    wal: Mutex<Option<WalWriter>>,
    /// Highest `mutation_seq` covered by a completed fsync or snapshot.
    durable_seq: AtomicU64,
    read_only: AtomicBool,
    reason: Mutex<String>,
    /// Records appended since the last fsync (`batch` bookkeeping).
    unsynced: AtomicU64,
    /// Records appended since the last snapshot (threshold bookkeeping).
    since_snapshot: AtomicU64,
    /// WAL records replayed when this handle was recovered at startup
    /// (0 for a handle born from `RELOAD`).
    pub(crate) recovered_records: u64,
}

impl DbDurable {
    fn new(store: &DurableStore, dir: PathBuf) -> DbDurable {
        DbDurable {
            dir,
            policy: store.policy,
            snapshot_every: store.snapshot_every,
            crash: store.crash.clone(),
            wal: Mutex::new(None),
            durable_seq: AtomicU64::new(0),
            read_only: AtomicBool::new(false),
            reason: Mutex::new(String::new()),
            unsynced: AtomicU64::new(0),
            since_snapshot: AtomicU64::new(0),
            recovered_records: 0,
        }
    }

    pub(crate) fn durable_seq(&self) -> u64 {
        self.durable_seq.load(Ordering::Relaxed)
    }

    pub(crate) fn read_only(&self) -> bool {
        self.read_only.load(Ordering::Relaxed)
    }

    pub(crate) fn read_only_reason(&self) -> String {
        self.reason.lock().unwrap().clone()
    }

    pub(crate) fn set_read_only(&self, why: String) {
        *self.reason.lock().unwrap() = why;
        self.read_only.store(true, Ordering::Relaxed);
    }

    fn clear_read_only(&self) {
        self.reason.lock().unwrap().clear();
        self.read_only.store(false, Ordering::Relaxed);
    }

    fn crash_hit(&self, point: CrashPoint) {
        if let Some(plan) = &self.crash {
            plan.hit(point);
        }
    }

    /// Appends one effective batch and runs the fsync policy. Called
    /// under the database **write** lock, so appends are serialized per
    /// database and the snapshot threshold sees a consistent `db`. The
    /// caller rolls the batch back and flips read-only on `Err`.
    pub(crate) fn log_batch(
        &self,
        db: &Database,
        epoch: u64,
        record: &WalRecord,
    ) -> std::io::Result<LogOutcome> {
        let mut out = LogOutcome::default();
        self.crash_hit(CrashPoint::PreAppend);
        let mut guard = self.wal.lock().unwrap();
        let wal = guard
            .as_mut()
            .ok_or_else(|| std::io::Error::other("WAL unavailable"))?;
        {
            let span = trace::span("wal.append");
            out.bytes = wal.append(record)?;
            span.add("bytes", out.bytes);
            span.add("ops", record.ops.len() as u64);
        }
        match self.policy {
            DurabilityPolicy::Always => {
                self.crash_hit(CrashPoint::PreFsync);
                {
                    let _span = trace::span("wal.fsync");
                    wal.sync()?;
                }
                self.crash_hit(CrashPoint::PostFsync);
                self.durable_seq.store(record.seq_after, Ordering::Relaxed);
                out.fsynced = true;
            }
            DurabilityPolicy::Batch => {
                wal.flush()?;
                let n = self.unsynced.fetch_add(1, Ordering::Relaxed) + 1;
                if n >= BATCH_FSYNC_EVERY {
                    self.crash_hit(CrashPoint::PreFsync);
                    {
                        let _span = trace::span("wal.fsync");
                        wal.sync()?;
                    }
                    self.crash_hit(CrashPoint::PostFsync);
                    self.durable_seq.store(record.seq_after, Ordering::Relaxed);
                    self.unsynced.store(0, Ordering::Relaxed);
                    out.fsynced = true;
                }
            }
            DurabilityPolicy::Off => {
                wal.flush()?;
            }
        }
        let appended = self.since_snapshot.fetch_add(1, Ordering::Relaxed) + 1;
        if self.snapshot_every > 0 && appended >= self.snapshot_every {
            self.snapshot_locked(wal, db, epoch)?;
            out.snapshotted = true;
        }
        Ok(out)
    }

    /// `SYNC` / `RELOAD` / threshold core: fsync the log, write a
    /// snapshot, truncate the log, advance `durable_seq` to everything.
    /// The caller must hold the database lock (read or write — both
    /// exclude mutations) so the snapshot is a consistent cut.
    fn snapshot_locked(
        &self,
        wal: &mut WalWriter,
        db: &Database,
        epoch: u64,
    ) -> std::io::Result<()> {
        {
            let _span = trace::span("wal.fsync");
            wal.sync()?;
        }
        {
            let span = trace::span("snapshot.write");
            span.add("tuples", db.total_tuples() as u64);
            write_snapshot(&self.dir, db, epoch, || {
                self.crash_hit(CrashPoint::MidSnapshot)
            })?;
        }
        wal.truncate()?;
        self.durable_seq.store(db.mutation_seq(), Ordering::Relaxed);
        self.unsynced.store(0, Ordering::Relaxed);
        self.since_snapshot.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Forces everything durable now (the `SYNC` opcode and the install
    /// path behind `RELOAD`). Success heals a read-only flag — the disk
    /// demonstrably accepted a full snapshot cycle.
    pub(crate) fn sync_and_snapshot(&self, db: &Database, epoch: u64) -> std::io::Result<()> {
        let mut guard = self.wal.lock().unwrap();
        let wal = guard
            .as_mut()
            .ok_or_else(|| std::io::Error::other("WAL unavailable"))?;
        self.snapshot_locked(wal, db, epoch)?;
        self.clear_read_only();
        Ok(())
    }
}
