//! The wire protocol: length-prefixed binary frames over a byte stream.
//!
//! Every frame, in both directions, is
//!
//! ```text
//! v2–v4:  | 0x43 | 0x51 | version | opcode |                  uleb128 len | payload |
//! v5/v6:  | 0x43 | 0x51 | version | opcode | uleb128 req_id | uleb128 len | payload |
//!           'C'    'Q'
//! ```
//!
//! v5 (pipelining) inserts a ULEB128 *request id* between opcode and
//! length: a client may write many requests before reading, and the
//! server may answer them in completion order, echoing each request's id
//! in the response header. Pre-v5 frames carry no id; the server answers
//! them strictly in request order, so v4 clients are oblivious to the
//! change. Each response frame echoes the *version* of the request it
//! answers, so one connection never mixes header layouts unexpectedly.
//!
//! Payload fields are ULEB128 varints, fixed 8-byte little-endian `u64`s
//! (fingerprints only), and strings (ULEB128 byte length + UTF-8 bytes).
//! Every length is capped before allocation so a malicious frame cannot
//! make the daemon reserve unbounded memory; decode errors are reported,
//! never panicked on.

use std::io::{self, Read, Write};

/// Frame magic: `b"CQ"`.
pub const MAGIC: [u8; 2] = [0x43, 0x51];
/// Newest protocol version the daemon speaks. v2 added the `degraded`
/// flag to count replies, the `retry_after_ms` hint to error frames, and
/// the per-error-code counters in `STATS`. v3 added the `PROFILE` (span
/// tree + kernel counters for one query) and `METRICS` (Prometheus-style
/// text exposition) opcodes; every v2 frame is unchanged, so v2 peers
/// keep working ([`MIN_VERSION`]). v4 appends the planner search counters
/// to `STATS` replies as trailing fields — the decoder treats them as
/// optional (absent ⇒ zero). v5 adds pipelining: a ULEB128 request id in
/// the frame header (between opcode and length), echoed by the matching
/// response, which may now arrive in completion order. Pre-v5 frames are
/// answered in request order, so older clients need no changes. v6 adds
/// the mutation opcodes `INSERT`/`DELETE`/`MUTATE` (single-tuple and
/// batched edits of a loaded database, answered with `MUTATED`) and
/// appends the mutation counters to `STATS` replies as trailing optional
/// fields; the header layout is unchanged from v5. v7 adds durability:
/// the `SYNC` opcode (force fsync + snapshot, answered with `SYNCED`),
/// the `ReadOnly` error code (mutations refused after a disk fault), and
/// a trailing per-database durability block in `STATS` replies
/// (`mutation_seq`, `durable_seq`, persistence/read-only flags, records
/// replayed at the last recovery) — optional on decode like the v4/v6
/// blocks. v8 adds forensics: the `HISTORY` opcode (ring-buffered
/// whole-registry metric samples, answered with `HISTORIED`), the
/// `FLIGHT` opcode (span trees and incidents retained by the flight
/// recorder, answered with `FLIGHTED`), and a trailing global
/// watchdog/recorder block in `STATS` replies (`recorder_retained`,
/// `stalled_shards`, `stalled_workers`, `watchdog_stalls`) — optional on
/// decode like every earlier block.
pub const VERSION: u8 = 0x08;
/// Oldest protocol version the daemon still accepts. v2 frames are a
/// strict subset of v3, so the shim is just a wider version check.
pub const MIN_VERSION: u8 = 0x02;
/// The v4 header layout (no request id). [`Request::write_to`] and
/// [`Response::write_to`] emit this revision: the blocking client is a
/// one-request-at-a-time peer, and keeping its wire bytes stable keeps
/// every pre-v5 fixture (and server) working unchanged.
pub const V4: u8 = 0x04;
/// The v5 header layout (request id present). Emitted by
/// [`Request::encode`]/[`Response::encode`] when asked for it.
pub const V5: u8 = 0x05;
/// The v6 revision (mutation opcodes). Same header layout as v5.
pub const V6: u8 = 0x06;
/// The v7 revision (durability: `SYNC`/`SYNCED`, `ReadOnly`, per-db
/// durability stats). Same header layout as v5.
pub const V7: u8 = 0x07;
/// The v8 revision (forensics: `HISTORY`/`FLIGHT`, watchdog + recorder
/// stats). Same header layout as v5.
pub const V8: u8 = 0x08;
/// Upper bound on a frame payload (queries and reload texts included).
pub const MAX_PAYLOAD: usize = 16 << 20;
/// Upper bound on a single string field.
pub const MAX_STRING: usize = 8 << 20;
/// Upper bound on decoded row counts (defense in depth; the server also
/// enforces its own `max_enumerate`).
pub const MAX_ROWS: usize = 1 << 20;
/// Upper bound on the ops inside one batched `MUTATE` frame.
pub const MAX_MUTATION_OPS: usize = 1 << 16;
/// Upper bound on the arity of a mutated tuple.
pub const MAX_TUPLE_ARITY: usize = 4096;

/// Machine-readable error categories carried in error frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The query (or reload text) failed to parse.
    Parse = 1,
    /// Planning/counting failed (no decomposition in strict mode, ...).
    Plan = 2,
    /// The named database is not loaded.
    UnknownDb = 3,
    /// Admission control rejected the request (queue full).
    Overloaded = 4,
    /// The request's wall-clock budget tripped mid-count.
    BudgetExceeded = 5,
    /// Malformed frame or unsupported opcode/version.
    Protocol = 6,
    /// The server hit an internal error (a caught panic).
    Internal = 7,
    /// The database is read-only after a durability fault (WAL or
    /// snapshot I/O error): mutations are refused, counts keep serving.
    /// **Not retryable** — the state will not heal without an operator
    /// `RELOAD`/`SYNC`. Protocol v7.
    ReadOnly = 8,
}

impl ErrorCode {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Option<ErrorCode> {
        Some(match b {
            1 => ErrorCode::Parse,
            2 => ErrorCode::Plan,
            3 => ErrorCode::UnknownDb,
            4 => ErrorCode::Overloaded,
            5 => ErrorCode::BudgetExceeded,
            6 => ErrorCode::Protocol,
            7 => ErrorCode::Internal,
            8 => ErrorCode::ReadOnly,
            _ => return None,
        })
    }
}

/// A client-to-server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Count `|π_free(Q)(Q^D)|` for `query` over the named database.
    /// `budget_ms == 0` means "use the server default".
    Count {
        /// Name of a loaded database.
        db: String,
        /// The rule, in the datalog text format.
        query: String,
        /// Wall-clock budget in milliseconds (0 = server default).
        budget_ms: u64,
    },
    /// Enumerate up to `limit` answers (bounded prefix, server-capped).
    Enumerate {
        /// Name of a loaded database.
        db: String,
        /// The rule, in the datalog text format.
        query: String,
        /// Maximum rows to return.
        limit: u64,
        /// Wall-clock budget in milliseconds (0 = server default).
        budget_ms: u64,
    },
    /// Structural width analysis of a query (no database involved).
    WidthReport {
        /// The rule, in the datalog text format.
        query: String,
        /// Width search cap (0 = server default).
        cap: u64,
    },
    /// Server and cache counters.
    Stats,
    /// Replace (or install) a named database from datalog facts; bumps the
    /// database epoch, invalidating cached counts but not cached plans.
    Reload {
        /// Database name.
        db: String,
        /// Datalog facts.
        text: String,
    },
    /// Drop both cache levels (plans and counts).
    Flush,
    /// Like `Count`, but reply with the full span tree and kernel counters
    /// of the (freshly traced) execution alongside the count. Protocol v3.
    Profile {
        /// Name of a loaded database.
        db: String,
        /// The rule, in the datalog text format.
        query: String,
        /// Wall-clock budget in milliseconds (0 = server default).
        budget_ms: u64,
    },
    /// Prometheus-style text exposition of the server's metrics registry.
    /// Protocol v3.
    Metrics,
    /// Insert one tuple into a relation of a loaded database. Creates the
    /// relation on first use. **Not idempotent to retry blindly**: the
    /// reply's `changed` says whether the tuple was new, so a retried
    /// insert whose first attempt landed reports `changed = 0`.
    /// Protocol v6.
    Insert {
        /// Name of a loaded database.
        db: String,
        /// Relation name.
        rel: String,
        /// The tuple's constants, in positional order.
        values: Vec<String>,
    },
    /// Delete one tuple from a relation of a loaded database. Deleting an
    /// absent tuple (or from an unknown relation) is a no-op with
    /// `changed = 0`, not an error. Protocol v6.
    Delete {
        /// Name of a loaded database.
        db: String,
        /// Relation name.
        rel: String,
        /// The tuple's constants, in positional order.
        values: Vec<String>,
    },
    /// A batch of inserts/deletes applied atomically in order under one
    /// database write lock; the reply's `changed` counts the ops that
    /// altered the database. Protocol v6.
    Mutate {
        /// Name of a loaded database.
        db: String,
        /// The ops, applied first to last.
        ops: Vec<MutationOp>,
    },
    /// Force everything durable now: fsync the database's WAL, write a
    /// snapshot, truncate the log. Answered with [`Response::Synced`]
    /// carrying the durable sequence the caller can compare mutation
    /// receipts against. Idempotent and safe to retry. Protocol v7.
    Sync {
        /// Name of a loaded database.
        db: String,
    },
    /// Fetch ring-buffered metrics-history samples with sequence numbers
    /// above `since_seq` (0 = everything still in the ring). Answered
    /// with [`Response::History`]. Idempotent. Protocol v8.
    History {
        /// Return only samples with `seq > since_seq`.
        since_seq: u64,
        /// At most this many samples (0 = server cap).
        limit: u64,
    },
    /// Fetch the flight recorder's retained span trees and incidents
    /// (most recent `limit` of each, oldest first; 0 = server cap).
    /// Answered with [`Response::Flight`]. Idempotent. Protocol v8.
    Flight {
        /// At most this many traces and incidents each (0 = server cap).
        limit: u64,
    },
}

/// One tuple edit inside a [`Request::Mutate`] batch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutationOp {
    /// `true` = insert, `false` = delete.
    pub insert: bool,
    /// Relation name.
    pub rel: String,
    /// The tuple's constants, in positional order.
    pub values: Vec<String>,
}

/// How a count was produced, for observability and the bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheTier {
    /// Neither cache level helped: planned and counted from scratch.
    Cold = 0,
    /// Level 1 hit: the prepared plan was reused, the count ran fresh.
    PlanWarm = 1,
    /// Level 2 hit: the count itself came from cache.
    CountWarm = 2,
}

impl CacheTier {
    fn from_u8(b: u8) -> Option<CacheTier> {
        Some(match b {
            0 => CacheTier::Cold,
            1 => CacheTier::PlanWarm,
            2 => CacheTier::CountWarm,
            _ => return None,
        })
    }
}

/// Per-database summary inside a [`Response::Stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DbSummary {
    /// Database name.
    pub name: String,
    /// Reload epoch (counts cached under older epochs are dead).
    pub epoch: u64,
    /// Content fingerprint ([`cqcount_relational::Database::fingerprint`]).
    pub fingerprint: u64,
    /// Total tuples.
    pub tuples: u64,
    /// Effective mutations absorbed since the last reload (v7+; zero
    /// when talking to an older server).
    pub mutation_seq: u64,
    /// Highest `mutation_seq` covered by a completed fsync or snapshot
    /// (v7+). Equal to `mutation_seq` when everything acknowledged is on
    /// disk; 0 when the server has no `--data-dir`.
    pub durable_seq: u64,
    /// The database is backed by a data directory (v7+).
    pub persisted: bool,
    /// Mutations are refused after a durability fault (v7+).
    pub read_only: bool,
    /// WAL records replayed when this database was last recovered at
    /// startup (v7+; 0 when it was born from `RELOAD`).
    pub recovered_records: u64,
    /// Heap bytes held by this database's relations and interner
    /// (trailing block after the v8 counters; zero when talking to an
    /// older server).
    pub resident_bytes: u64,
    /// Bytes served in place from mmap'd store pages — frozen relations
    /// a snapshot recovery left on disk (same trailing block).
    pub mapped_bytes: u64,
}

/// Server and cache counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Requests fully served (any opcode except errors).
    pub served: u64,
    /// Requests rejected by admission control.
    pub overloaded: u64,
    /// Plan-cache (level 1) hits.
    pub plan_hits: u64,
    /// Plan-cache misses.
    pub plan_misses: u64,
    /// Count-cache (level 2) hits.
    pub count_hits: u64,
    /// Count-cache misses.
    pub count_misses: u64,
    /// Malformed frames / undecodable requests answered with `Protocol`.
    pub malformed: u64,
    /// Requests that tripped their wall-clock budget.
    pub budget_exceeded: u64,
    /// Worker panics caught (including injected ones).
    pub panicked: u64,
    /// Connections reaped by the idle/stall deadline.
    pub reaped: u64,
    /// Counts served by a degraded (fallback) plan.
    pub degraded: u64,
    /// Faults injected so far (0 when no fault profile is active).
    pub faults_injected: u64,
    /// Per-database epochs and fingerprints.
    pub dbs: Vec<DbSummary>,
    /// Planner: blocks solved by the decomposition search (v4+; zero when
    /// talking to an older server).
    pub planner_blocks_solved: u64,
    /// Planner: memo hits inside the block recursion (v4+).
    pub planner_memo_hits: u64,
    /// Planner: width-`k` negative verdicts reused at `k+1` (v4+).
    pub planner_negative_reuse: u64,
    /// Planner: candidate bags pulled from the lazy streams (v4+).
    pub planner_candidates: u64,
    /// Planner: candidate universes opened (v4+).
    pub planner_universes: u64,
    /// Planner: width levels searched (v4+).
    pub planner_widths_searched: u64,
    /// Mutations applied (effective inserts + deletes; v6+, zero when
    /// talking to an older server).
    pub mutations_applied: u64,
    /// Join-tree bags re-aggregated by incremental maintenance (v6+).
    pub delta_bags_touched: u64,
    /// Mutations that fell back from incremental maintenance to targeted
    /// cache invalidation (v6+).
    pub delta_fallbacks: u64,
    /// Span trees retained by the flight recorder (v8+; zero when talking
    /// to an older server).
    pub recorder_retained: u64,
    /// Reactor shards the watchdog currently flags as stalled (v8+).
    pub stalled_shards: u64,
    /// Pool workers the watchdog currently flags as stalled (v8+).
    pub stalled_workers: u64,
    /// Total stall edges the watchdog has ever flagged (v8+).
    pub watchdog_stalls: u64,
}

/// Structural analysis results (mirrors `cqcount_core::WidthReport`, with
/// `None` widths meaning "above the cap").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReportReply {
    /// α-acyclicity of the query hypergraph.
    pub acyclic: bool,
    /// Generalized hypertree width, if ≤ cap.
    pub ghw: Option<u64>,
    /// `#`-hypertree width, if ≤ cap.
    pub sharp_width: Option<u64>,
    /// Quantified star size.
    pub star_size: u64,
    /// Atom count.
    pub atoms: u64,
    /// Variable count.
    pub vars: u64,
    /// Free-variable count.
    pub free: u64,
    /// The cap the width searches ran up to.
    pub cap: u64,
}

/// Upper bound on span nodes in one `PROFILE` reply (defense in depth on
/// decode; the server also truncates on encode).
pub const MAX_SPAN_NODES: usize = 65_536;
/// Upper bound on span tree depth on decode.
pub const MAX_SPAN_DEPTH: usize = 128;
/// Upper bound on counters or tags attached to a single span node.
pub const MAX_SPAN_FIELDS: usize = 64;

/// One node of a `PROFILE` span tree. Times are nanoseconds; `start_ns` is
/// relative to the root span's start, so a reply is self-contained.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Stage name (e.g. `parse`, `plan.decompose`, `algebra.join`).
    pub name: String,
    /// Offset from the root span's start, in nanoseconds.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// Numeric counters (rows in/out, comparisons, bytes emitted, ...).
    pub counters: Vec<(String, u64)>,
    /// String tags (plan outcome, degradation reason, ...).
    pub tags: Vec<(String, String)>,
    /// Child spans, ordered by start time.
    pub children: Vec<SpanNode>,
}

/// The reply to a `PROFILE` request: the count plus the traced execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileReply {
    /// The exact count, as a decimal string (arbitrary precision).
    pub value: String,
    /// Human-readable plan label.
    pub plan: String,
    /// Which cache level (if any) served the request.
    pub cached: CacheTier,
    /// True when a ladder rung (not the chosen plan) produced the count.
    pub degraded: bool,
    /// The query's canonical 64-bit fingerprint.
    pub fingerprint: u64,
    /// End-to-end wall time of the request span, nanoseconds.
    pub total_ns: u64,
    /// Spans the tracer dropped process-wide so far (ring overflow); a
    /// nonzero delta across requests means trees may be incomplete.
    pub dropped: u64,
    /// The request's root span.
    pub root: SpanNode,
}

/// Upper bound on samples in one `HISTORY` reply.
pub const MAX_HISTORY_SAMPLES: usize = 4096;
/// Upper bound on metric entries in one history sample.
pub const MAX_HISTORY_ENTRIES: usize = 4096;
/// Upper bound on span trees in one `FLIGHT` reply.
pub const MAX_FLIGHT_TRACES: usize = 256;
/// Upper bound on incidents in one `FLIGHT` reply.
pub const MAX_FLIGHT_INCIDENTS: usize = 4096;

/// One metrics-history sample inside a [`Response::History`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistorySampleReply {
    /// Monotonic sample sequence (ring-wide, starts at 1).
    pub seq: u64,
    /// Wall-clock sample time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// Milliseconds since server start.
    pub uptime_ms: u64,
    /// `(series, value)` pairs: counters and gauges by name, histograms
    /// flattened to `_count`/`_sum`/`_p99` series.
    pub entries: Vec<(String, u64)>,
}

/// The reply to a `HISTORY` request. Protocol v8.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistoryReply {
    /// The server's advertised sampling interval (0 = history disabled).
    pub interval_ms: u64,
    /// The sequence the *next* sample will get; `next_seq - 1` is the
    /// newest existing sample, pass it back as `since_seq` to poll.
    pub next_seq: u64,
    /// Matching samples, oldest first.
    pub samples: Vec<HistorySampleReply>,
}

/// One retained span tree inside a [`Response::Flight`]. Protocol v8.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlightTrace {
    /// Capture sequence (shared with incidents: one timeline).
    pub seq: u64,
    /// Opcode label (`count`, `mutate`, …).
    pub op: String,
    /// Why it was retained (`slow`, `error`, `degraded`, `delta_fault`,
    /// `read_only`, `watchdog`).
    pub reason: String,
    /// End-to-end latency, microseconds.
    pub latency_us: u64,
    /// The retention threshold in force (0 for non-latency retentions).
    pub threshold_us: u64,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
    /// The request's span tree.
    pub root: SpanNode,
}

/// One discrete incident inside a [`Response::Flight`]. Protocol v8.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightIncident {
    /// Capture sequence (shared with traces: one timeline).
    pub seq: u64,
    /// Short machine-readable kind (`stall`, `read_only`, …).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
    /// Wall-clock capture time, milliseconds since the Unix epoch.
    pub unix_ms: u64,
}

/// The reply to a `FLIGHT` request. Protocol v8.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlightReply {
    /// Retained span trees, oldest first.
    pub traces: Vec<FlightTrace>,
    /// Retained incidents, oldest first.
    pub incidents: Vec<FlightIncident>,
}

/// A server-to-client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// A successful count.
    Count {
        /// The exact count, as a decimal string (arbitrary precision).
        value: String,
        /// Human-readable plan label (e.g. `sharp-pipeline(width=2)`).
        plan: String,
        /// Which cache level (if any) served the request.
        cached: CacheTier,
        /// True when the planner fell back to a cheaper plan because the
        /// decomposition search blew its budget (the count is still exact).
        degraded: bool,
        /// The query's canonical 64-bit fingerprint.
        fingerprint: u64,
    },
    /// An answer prefix from `Enumerate`.
    Rows {
        /// Each row holds the free variables' constants, in head order.
        rows: Vec<Vec<String>>,
        /// True when the prefix was cut short by the limit.
        truncated: bool,
    },
    /// Structural analysis results.
    Report(ReportReply),
    /// Server counters.
    Stats(StatsReply),
    /// Acknowledgement of an admin command, with the database epoch it
    /// produced (0 for `Flush`).
    Ok {
        /// The (new) epoch.
        epoch: u64,
    },
    /// The span tree + count for a `Profile` request. Protocol v3.
    Profile(ProfileReply),
    /// Prometheus-style text exposition. Protocol v3.
    Metrics {
        /// The rendered exposition text.
        text: String,
    },
    /// Acknowledgement of an `Insert`/`Delete`/`Mutate`. Protocol v6.
    Mutated {
        /// Ops that actually altered the database (0 for a duplicate
        /// insert or an absent delete; a retried batch that already
        /// landed reports 0 — mutations are not idempotent to retry).
        changed: u64,
        /// The database's mutation sequence number after the batch; it
        /// bumps once per effective op, never on no-ops or reloads.
        mutation_seq: u64,
    },
    /// Acknowledgement of a `Sync`: everything up to `durable_seq` is on
    /// disk. Protocol v7.
    Synced {
        /// The database's current epoch.
        epoch: u64,
        /// The database's mutation sequence at the sync point.
        mutation_seq: u64,
        /// Highest mutation sequence covered by the fsync + snapshot (0
        /// when the server has no `--data-dir` — nothing is durable).
        durable_seq: u64,
    },
    /// Metrics-history samples for a `History` request. Protocol v8.
    History(HistoryReply),
    /// The flight recorder's retentions for a `Flight` request.
    /// Protocol v8.
    Flight(FlightReply),
    /// Anything that went wrong.
    Error {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail (round-trippable for typed errors).
        message: String,
        /// For `Overloaded`: how long the client should back off before
        /// retrying, in milliseconds (0 = no hint).
        retry_after_ms: u64,
    },
}

// ---------------------------------------------------------------------
// primitives

/// Writes a ULEB128 varint.
pub fn write_uleb(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a ULEB128 varint (at most 10 bytes for a `u64`).
pub fn read_uleb(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or("truncated varint")?;
        *pos += 1;
        if shift >= 64 {
            return Err("varint overflows u64".into());
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

pub(crate) fn write_str(out: &mut Vec<u8>, s: &str) {
    write_uleb(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn read_str(buf: &[u8], pos: &mut usize) -> Result<String, String> {
    let len = read_uleb(buf, pos)? as usize;
    if len > MAX_STRING {
        return Err(format!("string of {len} bytes exceeds cap"));
    }
    let end = pos.checked_add(len).ok_or("string length overflow")?;
    let bytes = buf.get(*pos..end).ok_or("truncated string")?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| "string is not UTF-8".into())
}

fn write_u64_le(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u64_le(buf: &[u8], pos: &mut usize) -> Result<u64, String> {
    let end = pos.checked_add(8).ok_or("u64 length overflow")?;
    let bytes = buf.get(*pos..end).ok_or("truncated u64")?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

/// `Some(w) ↦ w+1`, `None ↦ 0` — options over widths.
fn write_opt(out: &mut Vec<u8>, v: Option<u64>) {
    write_uleb(out, v.map_or(0, |w| w + 1));
}

fn read_opt(buf: &[u8], pos: &mut usize) -> Result<Option<u64>, String> {
    let raw = read_uleb(buf, pos)?;
    Ok(raw.checked_sub(1))
}

// ---------------------------------------------------------------------
// framing

/// Encodes one complete frame in the given header `version`. `req_id` is
/// carried only by v5 headers and ignored (must-be-unused) below that.
pub fn frame_bytes(version: u8, req_id: u64, opcode: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&MAGIC);
    out.push(version);
    out.push(opcode);
    if version >= V5 {
        write_uleb(&mut out, req_id);
    }
    write_uleb(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    out
}

fn write_frame(w: &mut impl Write, opcode: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame_bytes(V4, 0, opcode, payload))?;
    w.flush()
}

/// A raw frame: the header fields plus payload bytes.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Header version the frame arrived with (v2..=v5). Replies echo it.
    pub version: u8,
    /// The request id (v5 headers only; 0 for pre-v5 frames).
    pub req_id: u64,
    /// The opcode byte.
    pub opcode: u8,
    /// The payload.
    pub payload: Vec<u8>,
}

/// Reads a ULEB128 varint byte-by-byte off a stream.
fn read_uleb_stream(r: &mut impl Read, what: &str) -> io::Result<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{what} varint overflow"),
            ));
        }
        v |= u64::from(b[0] & 0x7f) << shift;
        if b[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Reads one frame. `Ok(None)` means the peer closed the connection
/// cleanly (EOF before any header byte).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut first = [0u8; 1];
    if r.read(&mut first)? == 0 {
        return Ok(None);
    }
    let mut rest = [0u8; 3];
    r.read_exact(&mut rest)?;
    if [first[0], rest[0]] != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = rest[1];
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported protocol version {version}"),
        ));
    }
    let opcode = rest[2];
    let req_id = if version >= V5 {
        read_uleb_stream(r, "request id")?
    } else {
        0
    };
    let len = read_uleb_stream(r, "length")?;
    if len as usize > MAX_PAYLOAD {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("payload of {len} bytes exceeds cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(Frame {
        version,
        req_id,
        opcode,
        payload,
    }))
}

/// Incremental frame parser for an evented read loop: examines a buffer
/// prefix without consuming input.
///
/// * `Ok(None)` — the buffer holds an incomplete (but so far valid)
///   frame; read more bytes and call again.
/// * `Ok(Some((frame, consumed)))` — one whole frame; the caller drops
///   the first `consumed` bytes and calls again on the rest.
/// * `Err(..)` — the bytes can never become a valid frame (bad magic,
///   unsupported version, runaway varint, oversized payload); the caller
///   answers with a protocol error and closes.
pub fn parse_frame_prefix(buf: &[u8]) -> Result<Option<(Frame, usize)>, String> {
    // An in-buffer varint reader distinguishing "need more bytes" (Ok
    // with None) from "can never terminate" (Err).
    fn uleb_prefix(buf: &[u8], pos: &mut usize, what: &str) -> Result<Option<u64>, String> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let Some(&byte) = buf.get(*pos) else {
                return Ok(None);
            };
            *pos += 1;
            if shift >= 64 {
                return Err(format!("{what} varint overflow"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(Some(v));
            }
            shift += 7;
        }
    }

    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] != MAGIC[0] || (buf.len() > 1 && buf[1] != MAGIC[1]) {
        return Err("bad magic".into());
    }
    if buf.len() > 2 && !(MIN_VERSION..=VERSION).contains(&buf[2]) {
        return Err(format!("unsupported protocol version {}", buf[2]));
    }
    if buf.len() < 4 {
        return Ok(None);
    }
    let version = buf[2];
    let opcode = buf[3];
    let mut pos = 4usize;
    let req_id = if version >= V5 {
        match uleb_prefix(buf, &mut pos, "request id")? {
            Some(v) => v,
            None => return Ok(None),
        }
    } else {
        0
    };
    let len = match uleb_prefix(buf, &mut pos, "length")? {
        Some(v) => v,
        None => return Ok(None),
    };
    if len as usize > MAX_PAYLOAD {
        return Err(format!("payload of {len} bytes exceeds cap"));
    }
    let end = pos + len as usize;
    if buf.len() < end {
        return Ok(None);
    }
    Ok(Some((
        Frame {
            version,
            req_id,
            opcode,
            payload: buf[pos..end].to_vec(),
        },
        end,
    )))
}

// ---------------------------------------------------------------------
// requests

const OP_COUNT: u8 = 0x01;
const OP_ENUMERATE: u8 = 0x02;
const OP_WIDTH_REPORT: u8 = 0x03;
const OP_STATS: u8 = 0x04;
const OP_RELOAD: u8 = 0x05;
const OP_FLUSH: u8 = 0x06;
const OP_PROFILE: u8 = 0x07;
const OP_METRICS: u8 = 0x08;
const OP_INSERT: u8 = 0x09;
const OP_DELETE: u8 = 0x0a;
const OP_MUTATE: u8 = 0x0b;
const OP_SYNC: u8 = 0x0c;
const OP_HISTORY: u8 = 0x0d;
const OP_FLIGHT: u8 = 0x0e;

const OP_R_COUNT: u8 = 0x81;
const OP_R_ROWS: u8 = 0x82;
const OP_R_REPORT: u8 = 0x83;
const OP_R_STATS: u8 = 0x84;
const OP_R_OK: u8 = 0x85;
const OP_R_PROFILE: u8 = 0x87;
const OP_R_METRICS: u8 = 0x88;
const OP_R_MUTATED: u8 = 0x89;
const OP_R_SYNCED: u8 = 0x8a;
const OP_R_HISTORY: u8 = 0x8b;
const OP_R_FLIGHT: u8 = 0x8c;
const OP_R_ERROR: u8 = 0xff;

fn write_tuple(p: &mut Vec<u8>, values: &[String]) {
    write_uleb(p, values.len() as u64);
    for v in values {
        write_str(p, v);
    }
}

fn read_tuple(buf: &[u8], pos: &mut usize) -> Result<Vec<String>, String> {
    let n = read_uleb(buf, pos)? as usize;
    if n > MAX_TUPLE_ARITY {
        return Err(format!("tuple arity {n} exceeds cap"));
    }
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(read_str(buf, pos)?);
    }
    Ok(values)
}

fn write_span_node(p: &mut Vec<u8>, node: &SpanNode) {
    write_str(p, &node.name);
    write_uleb(p, node.start_ns);
    write_uleb(p, node.duration_ns);
    write_uleb(p, node.counters.len() as u64);
    for (k, v) in &node.counters {
        write_str(p, k);
        write_uleb(p, *v);
    }
    write_uleb(p, node.tags.len() as u64);
    for (k, v) in &node.tags {
        write_str(p, k);
        write_str(p, v);
    }
    write_uleb(p, node.children.len() as u64);
    for c in &node.children {
        write_span_node(p, c);
    }
}

/// Decodes a span node; `remaining` bounds the total node count across the
/// whole tree and `depth` the recursion, so a malicious frame can neither
/// overallocate nor blow the stack.
fn read_span_node(
    buf: &[u8],
    pos: &mut usize,
    remaining: &mut usize,
    depth: usize,
) -> Result<SpanNode, String> {
    if depth > MAX_SPAN_DEPTH {
        return Err(format!("span tree deeper than {MAX_SPAN_DEPTH}"));
    }
    *remaining = remaining
        .checked_sub(1)
        .ok_or_else(|| format!("span tree larger than {MAX_SPAN_NODES} nodes"))?;
    let name = read_str(buf, pos)?;
    let start_ns = read_uleb(buf, pos)?;
    let duration_ns = read_uleb(buf, pos)?;
    let ncounters = read_uleb(buf, pos)? as usize;
    if ncounters > MAX_SPAN_FIELDS {
        return Err(format!("{ncounters} span counters exceeds cap"));
    }
    let mut counters = Vec::with_capacity(ncounters);
    for _ in 0..ncounters {
        let k = read_str(buf, pos)?;
        let v = read_uleb(buf, pos)?;
        counters.push((k, v));
    }
    let ntags = read_uleb(buf, pos)? as usize;
    if ntags > MAX_SPAN_FIELDS {
        return Err(format!("{ntags} span tags exceeds cap"));
    }
    let mut tags = Vec::with_capacity(ntags);
    for _ in 0..ntags {
        let k = read_str(buf, pos)?;
        let v = read_str(buf, pos)?;
        tags.push((k, v));
    }
    let nchildren = read_uleb(buf, pos)? as usize;
    if nchildren > *remaining {
        return Err(format!("span tree larger than {MAX_SPAN_NODES} nodes"));
    }
    let mut children = Vec::with_capacity(nchildren);
    for _ in 0..nchildren {
        children.push(read_span_node(buf, pos, remaining, depth + 1)?);
    }
    Ok(SpanNode {
        name,
        start_ns,
        duration_ns,
        counters,
        tags,
        children,
    })
}

impl Request {
    /// Writes the request as one v4 frame (the blocking client's wire
    /// format; unchanged across the v5 bump).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let (opcode, p) = self.wire_parts();
        write_frame(w, opcode, &p)
    }

    /// Encodes the request as one frame in the given header version;
    /// `req_id` rides in v5 headers and is ignored below that.
    pub fn encode(&self, version: u8, req_id: u64) -> Vec<u8> {
        let (opcode, p) = self.wire_parts();
        frame_bytes(version, req_id, opcode, &p)
    }

    /// The (opcode, payload) pair shared by every header version.
    fn wire_parts(&self) -> (u8, Vec<u8>) {
        let mut p = Vec::new();
        let opcode = match self {
            Request::Count {
                db,
                query,
                budget_ms,
            } => {
                write_str(&mut p, db);
                write_str(&mut p, query);
                write_uleb(&mut p, *budget_ms);
                OP_COUNT
            }
            Request::Enumerate {
                db,
                query,
                limit,
                budget_ms,
            } => {
                write_str(&mut p, db);
                write_str(&mut p, query);
                write_uleb(&mut p, *limit);
                write_uleb(&mut p, *budget_ms);
                OP_ENUMERATE
            }
            Request::WidthReport { query, cap } => {
                write_str(&mut p, query);
                write_uleb(&mut p, *cap);
                OP_WIDTH_REPORT
            }
            Request::Stats => OP_STATS,
            Request::Reload { db, text } => {
                write_str(&mut p, db);
                write_str(&mut p, text);
                OP_RELOAD
            }
            Request::Flush => OP_FLUSH,
            Request::Profile {
                db,
                query,
                budget_ms,
            } => {
                write_str(&mut p, db);
                write_str(&mut p, query);
                write_uleb(&mut p, *budget_ms);
                OP_PROFILE
            }
            Request::Metrics => OP_METRICS,
            Request::Insert { db, rel, values } => {
                write_str(&mut p, db);
                write_str(&mut p, rel);
                write_tuple(&mut p, values);
                OP_INSERT
            }
            Request::Delete { db, rel, values } => {
                write_str(&mut p, db);
                write_str(&mut p, rel);
                write_tuple(&mut p, values);
                OP_DELETE
            }
            Request::Mutate { db, ops } => {
                write_str(&mut p, db);
                write_uleb(&mut p, ops.len() as u64);
                for op in ops {
                    p.push(u8::from(op.insert));
                    write_str(&mut p, &op.rel);
                    write_tuple(&mut p, &op.values);
                }
                OP_MUTATE
            }
            Request::Sync { db } => {
                write_str(&mut p, db);
                OP_SYNC
            }
            Request::History { since_seq, limit } => {
                write_uleb(&mut p, *since_seq);
                write_uleb(&mut p, *limit);
                OP_HISTORY
            }
            Request::Flight { limit } => {
                write_uleb(&mut p, *limit);
                OP_FLIGHT
            }
        };
        (opcode, p)
    }

    /// Decodes a request frame.
    pub fn decode(frame: &Frame) -> Result<Request, String> {
        let buf = &frame.payload[..];
        let mut pos = 0usize;
        let req = match frame.opcode {
            OP_COUNT => Request::Count {
                db: read_str(buf, &mut pos)?,
                query: read_str(buf, &mut pos)?,
                budget_ms: read_uleb(buf, &mut pos)?,
            },
            OP_ENUMERATE => Request::Enumerate {
                db: read_str(buf, &mut pos)?,
                query: read_str(buf, &mut pos)?,
                limit: read_uleb(buf, &mut pos)?,
                budget_ms: read_uleb(buf, &mut pos)?,
            },
            OP_WIDTH_REPORT => Request::WidthReport {
                query: read_str(buf, &mut pos)?,
                cap: read_uleb(buf, &mut pos)?,
            },
            OP_STATS => Request::Stats,
            OP_RELOAD => Request::Reload {
                db: read_str(buf, &mut pos)?,
                text: read_str(buf, &mut pos)?,
            },
            OP_FLUSH => Request::Flush,
            OP_PROFILE => Request::Profile {
                db: read_str(buf, &mut pos)?,
                query: read_str(buf, &mut pos)?,
                budget_ms: read_uleb(buf, &mut pos)?,
            },
            OP_METRICS => Request::Metrics,
            OP_INSERT => Request::Insert {
                db: read_str(buf, &mut pos)?,
                rel: read_str(buf, &mut pos)?,
                values: read_tuple(buf, &mut pos)?,
            },
            OP_DELETE => Request::Delete {
                db: read_str(buf, &mut pos)?,
                rel: read_str(buf, &mut pos)?,
                values: read_tuple(buf, &mut pos)?,
            },
            OP_MUTATE => {
                let db = read_str(buf, &mut pos)?;
                let nops = read_uleb(buf, &mut pos)? as usize;
                if nops > MAX_MUTATION_OPS {
                    return Err(format!("{nops} mutation ops exceeds cap"));
                }
                let mut ops = Vec::with_capacity(nops.min(1024));
                for _ in 0..nops {
                    let kind = *buf.get(pos).ok_or("truncated mutation kind")?;
                    pos += 1;
                    if kind > 1 {
                        return Err(format!("bad mutation kind byte 0x{kind:02x}"));
                    }
                    ops.push(MutationOp {
                        insert: kind == 1,
                        rel: read_str(buf, &mut pos)?,
                        values: read_tuple(buf, &mut pos)?,
                    });
                }
                Request::Mutate { db, ops }
            }
            OP_SYNC => Request::Sync {
                db: read_str(buf, &mut pos)?,
            },
            OP_HISTORY => Request::History {
                since_seq: read_uleb(buf, &mut pos)?,
                limit: read_uleb(buf, &mut pos)?,
            },
            OP_FLIGHT => Request::Flight {
                limit: read_uleb(buf, &mut pos)?,
            },
            other => return Err(format!("unknown request opcode 0x{other:02x}")),
        };
        if pos != buf.len() {
            return Err(format!("{} trailing bytes in request", buf.len() - pos));
        }
        Ok(req)
    }
}

impl Response {
    /// Writes the response as one v4 frame (the blocking client's wire
    /// format; unchanged across the v5 bump).
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let (opcode, p) = self.wire_parts();
        write_frame(w, opcode, &p)
    }

    /// Encodes the response as one frame in the given header version,
    /// echoing the request's `req_id` when `version` is v5+.
    pub fn encode(&self, version: u8, req_id: u64) -> Vec<u8> {
        let (opcode, p) = self.wire_parts();
        frame_bytes(version, req_id, opcode, &p)
    }

    /// The (opcode, payload) pair shared by every header version.
    fn wire_parts(&self) -> (u8, Vec<u8>) {
        let mut p = Vec::new();
        let opcode = match self {
            Response::Count {
                value,
                plan,
                cached,
                degraded,
                fingerprint,
            } => {
                write_str(&mut p, value);
                write_str(&mut p, plan);
                p.push(*cached as u8);
                p.push(u8::from(*degraded));
                write_u64_le(&mut p, *fingerprint);
                OP_R_COUNT
            }
            Response::Rows { rows, truncated } => {
                write_uleb(&mut p, rows.len() as u64);
                for row in rows {
                    write_uleb(&mut p, row.len() as u64);
                    for col in row {
                        write_str(&mut p, col);
                    }
                }
                p.push(u8::from(*truncated));
                OP_R_ROWS
            }
            Response::Report(r) => {
                p.push(u8::from(r.acyclic));
                write_opt(&mut p, r.ghw);
                write_opt(&mut p, r.sharp_width);
                for v in [r.star_size, r.atoms, r.vars, r.free, r.cap] {
                    write_uleb(&mut p, v);
                }
                OP_R_REPORT
            }
            Response::Stats(s) => {
                for v in [
                    s.served,
                    s.overloaded,
                    s.plan_hits,
                    s.plan_misses,
                    s.count_hits,
                    s.count_misses,
                    s.malformed,
                    s.budget_exceeded,
                    s.panicked,
                    s.reaped,
                    s.degraded,
                    s.faults_injected,
                ] {
                    write_uleb(&mut p, v);
                }
                write_uleb(&mut p, s.dbs.len() as u64);
                for d in &s.dbs {
                    write_str(&mut p, &d.name);
                    write_uleb(&mut p, d.epoch);
                    write_u64_le(&mut p, d.fingerprint);
                    write_uleb(&mut p, d.tuples);
                }
                // v4 trailing fields: planner search counters. Decoders
                // treat them as optional, so a v3 reply (ending at the db
                // list) still parses.
                for v in [
                    s.planner_blocks_solved,
                    s.planner_memo_hits,
                    s.planner_negative_reuse,
                    s.planner_candidates,
                    s.planner_universes,
                    s.planner_widths_searched,
                ] {
                    write_uleb(&mut p, v);
                }
                // v6 trailing fields: mutation counters. Optional on
                // decode like the planner block, so v4/v5 replies (ending
                // at the planner counters) still parse.
                for v in [s.mutations_applied, s.delta_bags_touched, s.delta_fallbacks] {
                    write_uleb(&mut p, v);
                }
                // v7 trailing fields: per-database durability status, in
                // the same order as the db list above. Optional on decode
                // like the earlier blocks.
                for d in &s.dbs {
                    write_uleb(&mut p, d.mutation_seq);
                    write_uleb(&mut p, d.durable_seq);
                    let flags = u8::from(d.persisted) | (u8::from(d.read_only) << 1);
                    p.push(flags);
                    write_uleb(&mut p, d.recovered_records);
                }
                // v8 trailing fields: watchdog + flight recorder counters.
                // Optional on decode like every earlier block.
                for v in [
                    s.recorder_retained,
                    s.stalled_shards,
                    s.stalled_workers,
                    s.watchdog_stalls,
                ] {
                    write_uleb(&mut p, v);
                }
                // Trailing per-db memory accounting (store epoch), in db
                // list order: heap-resident vs. mmap-served bytes.
                // Optional on decode like every earlier block.
                for d in &s.dbs {
                    write_uleb(&mut p, d.resident_bytes);
                    write_uleb(&mut p, d.mapped_bytes);
                }
                OP_R_STATS
            }
            Response::Ok { epoch } => {
                write_uleb(&mut p, *epoch);
                OP_R_OK
            }
            Response::Profile(r) => {
                write_str(&mut p, &r.value);
                write_str(&mut p, &r.plan);
                p.push(r.cached as u8);
                p.push(u8::from(r.degraded));
                write_u64_le(&mut p, r.fingerprint);
                write_uleb(&mut p, r.total_ns);
                write_uleb(&mut p, r.dropped);
                write_span_node(&mut p, &r.root);
                OP_R_PROFILE
            }
            Response::Metrics { text } => {
                write_str(&mut p, text);
                OP_R_METRICS
            }
            Response::Mutated {
                changed,
                mutation_seq,
            } => {
                write_uleb(&mut p, *changed);
                write_uleb(&mut p, *mutation_seq);
                OP_R_MUTATED
            }
            Response::Synced {
                epoch,
                mutation_seq,
                durable_seq,
            } => {
                write_uleb(&mut p, *epoch);
                write_uleb(&mut p, *mutation_seq);
                write_uleb(&mut p, *durable_seq);
                OP_R_SYNCED
            }
            Response::History(h) => {
                write_uleb(&mut p, h.interval_ms);
                write_uleb(&mut p, h.next_seq);
                write_uleb(&mut p, h.samples.len() as u64);
                for s in &h.samples {
                    write_uleb(&mut p, s.seq);
                    write_uleb(&mut p, s.unix_ms);
                    write_uleb(&mut p, s.uptime_ms);
                    write_uleb(&mut p, s.entries.len() as u64);
                    for (name, value) in &s.entries {
                        write_str(&mut p, name);
                        write_uleb(&mut p, *value);
                    }
                }
                OP_R_HISTORY
            }
            Response::Flight(f) => {
                write_uleb(&mut p, f.traces.len() as u64);
                for t in &f.traces {
                    write_uleb(&mut p, t.seq);
                    write_str(&mut p, &t.op);
                    write_str(&mut p, &t.reason);
                    write_uleb(&mut p, t.latency_us);
                    write_uleb(&mut p, t.threshold_us);
                    write_uleb(&mut p, t.unix_ms);
                    write_span_node(&mut p, &t.root);
                }
                write_uleb(&mut p, f.incidents.len() as u64);
                for i in &f.incidents {
                    write_uleb(&mut p, i.seq);
                    write_str(&mut p, &i.kind);
                    write_str(&mut p, &i.detail);
                    write_uleb(&mut p, i.unix_ms);
                }
                OP_R_FLIGHT
            }
            Response::Error {
                code,
                message,
                retry_after_ms,
            } => {
                p.push(*code as u8);
                write_str(&mut p, message);
                write_uleb(&mut p, *retry_after_ms);
                OP_R_ERROR
            }
        };
        (opcode, p)
    }

    /// Decodes a response frame.
    pub fn decode(frame: &Frame) -> Result<Response, String> {
        let buf = &frame.payload[..];
        let mut pos = 0usize;
        let take_u8 = |buf: &[u8], pos: &mut usize| -> Result<u8, String> {
            let b = *buf.get(*pos).ok_or("truncated byte field")?;
            *pos += 1;
            Ok(b)
        };
        let resp = match frame.opcode {
            OP_R_COUNT => {
                let value = read_str(buf, &mut pos)?;
                let plan = read_str(buf, &mut pos)?;
                let cached =
                    CacheTier::from_u8(take_u8(buf, &mut pos)?).ok_or("bad cache tier byte")?;
                let degraded = take_u8(buf, &mut pos)? != 0;
                let fingerprint = read_u64_le(buf, &mut pos)?;
                Response::Count {
                    value,
                    plan,
                    cached,
                    degraded,
                    fingerprint,
                }
            }
            OP_R_ROWS => {
                let n = read_uleb(buf, &mut pos)? as usize;
                if n > MAX_ROWS {
                    return Err(format!("{n} rows exceeds cap"));
                }
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let cols = read_uleb(buf, &mut pos)? as usize;
                    if cols > 4096 {
                        return Err(format!("{cols} columns exceeds cap"));
                    }
                    let mut row = Vec::with_capacity(cols);
                    for _ in 0..cols {
                        row.push(read_str(buf, &mut pos)?);
                    }
                    rows.push(row);
                }
                let truncated = take_u8(buf, &mut pos)? != 0;
                Response::Rows { rows, truncated }
            }
            OP_R_REPORT => {
                let acyclic = take_u8(buf, &mut pos)? != 0;
                let ghw = read_opt(buf, &mut pos)?;
                let sharp_width = read_opt(buf, &mut pos)?;
                let mut vals = [0u64; 5];
                for v in &mut vals {
                    *v = read_uleb(buf, &mut pos)?;
                }
                Response::Report(ReportReply {
                    acyclic,
                    ghw,
                    sharp_width,
                    star_size: vals[0],
                    atoms: vals[1],
                    vars: vals[2],
                    free: vals[3],
                    cap: vals[4],
                })
            }
            OP_R_STATS => {
                let mut vals = [0u64; 12];
                for v in &mut vals {
                    *v = read_uleb(buf, &mut pos)?;
                }
                let ndbs = read_uleb(buf, &mut pos)? as usize;
                if ndbs > 65536 {
                    return Err(format!("{ndbs} databases exceeds cap"));
                }
                let mut dbs = Vec::with_capacity(ndbs.min(1024));
                for _ in 0..ndbs {
                    dbs.push(DbSummary {
                        name: read_str(buf, &mut pos)?,
                        epoch: read_uleb(buf, &mut pos)?,
                        fingerprint: read_u64_le(buf, &mut pos)?,
                        tuples: read_uleb(buf, &mut pos)?,
                        ..DbSummary::default()
                    });
                }
                // v4 trailing planner counters; absent in v3 replies.
                let mut planner = [0u64; 6];
                if pos != buf.len() {
                    for v in &mut planner {
                        *v = read_uleb(buf, &mut pos)?;
                    }
                }
                // v6 trailing mutation counters; absent in v4/v5 replies.
                let mut mutation = [0u64; 3];
                if pos != buf.len() {
                    for v in &mut mutation {
                        *v = read_uleb(buf, &mut pos)?;
                    }
                }
                // v7 trailing per-db durability status; absent before v7.
                if pos != buf.len() {
                    for d in &mut dbs {
                        d.mutation_seq = read_uleb(buf, &mut pos)?;
                        d.durable_seq = read_uleb(buf, &mut pos)?;
                        let flags = take_u8(buf, &mut pos)?;
                        d.persisted = flags & 1 != 0;
                        d.read_only = flags & 2 != 0;
                        d.recovered_records = read_uleb(buf, &mut pos)?;
                    }
                }
                // v8 trailing watchdog + recorder counters; absent before.
                let mut forensics = [0u64; 4];
                if pos != buf.len() {
                    for v in &mut forensics {
                        *v = read_uleb(buf, &mut pos)?;
                    }
                }
                // Trailing per-db memory accounting; absent from servers
                // without the mmap store.
                if pos != buf.len() {
                    for d in &mut dbs {
                        d.resident_bytes = read_uleb(buf, &mut pos)?;
                        d.mapped_bytes = read_uleb(buf, &mut pos)?;
                    }
                }
                Response::Stats(StatsReply {
                    served: vals[0],
                    overloaded: vals[1],
                    plan_hits: vals[2],
                    plan_misses: vals[3],
                    count_hits: vals[4],
                    count_misses: vals[5],
                    malformed: vals[6],
                    budget_exceeded: vals[7],
                    panicked: vals[8],
                    reaped: vals[9],
                    degraded: vals[10],
                    faults_injected: vals[11],
                    dbs,
                    planner_blocks_solved: planner[0],
                    planner_memo_hits: planner[1],
                    planner_negative_reuse: planner[2],
                    planner_candidates: planner[3],
                    planner_universes: planner[4],
                    planner_widths_searched: planner[5],
                    mutations_applied: mutation[0],
                    delta_bags_touched: mutation[1],
                    delta_fallbacks: mutation[2],
                    recorder_retained: forensics[0],
                    stalled_shards: forensics[1],
                    stalled_workers: forensics[2],
                    watchdog_stalls: forensics[3],
                })
            }
            OP_R_OK => Response::Ok {
                epoch: read_uleb(buf, &mut pos)?,
            },
            OP_R_PROFILE => {
                let value = read_str(buf, &mut pos)?;
                let plan = read_str(buf, &mut pos)?;
                let cached =
                    CacheTier::from_u8(take_u8(buf, &mut pos)?).ok_or("bad cache tier byte")?;
                let degraded = take_u8(buf, &mut pos)? != 0;
                let fingerprint = read_u64_le(buf, &mut pos)?;
                let total_ns = read_uleb(buf, &mut pos)?;
                let dropped = read_uleb(buf, &mut pos)?;
                let mut remaining = MAX_SPAN_NODES;
                let root = read_span_node(buf, &mut pos, &mut remaining, 0)?;
                Response::Profile(ProfileReply {
                    value,
                    plan,
                    cached,
                    degraded,
                    fingerprint,
                    total_ns,
                    dropped,
                    root,
                })
            }
            OP_R_METRICS => Response::Metrics {
                text: read_str(buf, &mut pos)?,
            },
            OP_R_MUTATED => Response::Mutated {
                changed: read_uleb(buf, &mut pos)?,
                mutation_seq: read_uleb(buf, &mut pos)?,
            },
            OP_R_SYNCED => Response::Synced {
                epoch: read_uleb(buf, &mut pos)?,
                mutation_seq: read_uleb(buf, &mut pos)?,
                durable_seq: read_uleb(buf, &mut pos)?,
            },
            OP_R_HISTORY => {
                let interval_ms = read_uleb(buf, &mut pos)?;
                let next_seq = read_uleb(buf, &mut pos)?;
                let nsamples = read_uleb(buf, &mut pos)? as usize;
                if nsamples > MAX_HISTORY_SAMPLES {
                    return Err(format!("{nsamples} history samples exceeds cap"));
                }
                let mut samples = Vec::with_capacity(nsamples.min(1024));
                for _ in 0..nsamples {
                    let seq = read_uleb(buf, &mut pos)?;
                    let unix_ms = read_uleb(buf, &mut pos)?;
                    let uptime_ms = read_uleb(buf, &mut pos)?;
                    let nentries = read_uleb(buf, &mut pos)? as usize;
                    if nentries > MAX_HISTORY_ENTRIES {
                        return Err(format!("{nentries} history entries exceeds cap"));
                    }
                    let mut entries = Vec::with_capacity(nentries.min(1024));
                    for _ in 0..nentries {
                        let name = read_str(buf, &mut pos)?;
                        let value = read_uleb(buf, &mut pos)?;
                        entries.push((name, value));
                    }
                    samples.push(HistorySampleReply {
                        seq,
                        unix_ms,
                        uptime_ms,
                        entries,
                    });
                }
                Response::History(HistoryReply {
                    interval_ms,
                    next_seq,
                    samples,
                })
            }
            OP_R_FLIGHT => {
                let ntraces = read_uleb(buf, &mut pos)? as usize;
                if ntraces > MAX_FLIGHT_TRACES {
                    return Err(format!("{ntraces} flight traces exceeds cap"));
                }
                let mut traces = Vec::with_capacity(ntraces.min(256));
                for _ in 0..ntraces {
                    let seq = read_uleb(buf, &mut pos)?;
                    let op = read_str(buf, &mut pos)?;
                    let reason = read_str(buf, &mut pos)?;
                    let latency_us = read_uleb(buf, &mut pos)?;
                    let threshold_us = read_uleb(buf, &mut pos)?;
                    let unix_ms = read_uleb(buf, &mut pos)?;
                    let mut remaining = MAX_SPAN_NODES;
                    let root = read_span_node(buf, &mut pos, &mut remaining, 0)?;
                    traces.push(FlightTrace {
                        seq,
                        op,
                        reason,
                        latency_us,
                        threshold_us,
                        unix_ms,
                        root,
                    });
                }
                let nincidents = read_uleb(buf, &mut pos)? as usize;
                if nincidents > MAX_FLIGHT_INCIDENTS {
                    return Err(format!("{nincidents} flight incidents exceeds cap"));
                }
                let mut incidents = Vec::with_capacity(nincidents.min(1024));
                for _ in 0..nincidents {
                    incidents.push(FlightIncident {
                        seq: read_uleb(buf, &mut pos)?,
                        kind: read_str(buf, &mut pos)?,
                        detail: read_str(buf, &mut pos)?,
                        unix_ms: read_uleb(buf, &mut pos)?,
                    });
                }
                Response::Flight(FlightReply { traces, incidents })
            }
            OP_R_ERROR => {
                let code =
                    ErrorCode::from_u8(take_u8(buf, &mut pos)?).ok_or("bad error code byte")?;
                Response::Error {
                    code,
                    message: read_str(buf, &mut pos)?,
                    retry_after_ms: read_uleb(buf, &mut pos)?,
                }
            }
            other => return Err(format!("unknown response opcode 0x{other:02x}")),
        };
        if pos != buf.len() {
            return Err(format!("{} trailing bytes in response", buf.len() - pos));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_request(req: Request) {
        let mut buf = Vec::new();
        req.write_to(&mut buf).unwrap();
        let frame = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(Request::decode(&frame).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let mut buf = Vec::new();
        resp.write_to(&mut buf).unwrap();
        let frame = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(Response::decode(&frame).unwrap(), resp);
    }

    #[test]
    fn uleb_roundtrips() {
        for v in [0u64, 1, 127, 128, 300, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uleb(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uleb(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Count {
            db: "main".into(),
            query: "ans(X) :- r(X, Y).".into(),
            budget_ms: 0,
        });
        roundtrip_request(Request::Enumerate {
            db: "main".into(),
            query: "ans(X) :- r(X, Y).".into(),
            limit: 10,
            budget_ms: 250,
        });
        roundtrip_request(Request::WidthReport {
            query: "ans(X) :- r(X, Y).".into(),
            cap: 3,
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Reload {
            db: "main".into(),
            text: "r(a, b). r(b, c).".into(),
        });
        roundtrip_request(Request::Flush);
    }

    #[test]
    fn mutation_frames_roundtrip() {
        roundtrip_request(Request::Insert {
            db: "main".into(),
            rel: "edge".into(),
            values: vec!["a".into(), "b".into()],
        });
        roundtrip_request(Request::Delete {
            db: "main".into(),
            rel: "edge".into(),
            values: vec![],
        });
        roundtrip_request(Request::Mutate {
            db: "main".into(),
            ops: vec![
                MutationOp {
                    insert: true,
                    rel: "edge".into(),
                    values: vec!["a".into(), "b".into()],
                },
                MutationOp {
                    insert: false,
                    rel: "label".into(),
                    values: vec!["a".into()],
                },
            ],
        });
        roundtrip_request(Request::Mutate {
            db: "main".into(),
            ops: vec![],
        });
        roundtrip_response(Response::Mutated {
            changed: 2,
            mutation_seq: 17,
        });
        roundtrip_response(Response::Mutated {
            changed: 0,
            mutation_seq: u64::MAX,
        });
    }

    #[test]
    fn sync_frames_roundtrip() {
        roundtrip_request(Request::Sync { db: "main".into() });
        roundtrip_response(Response::Synced {
            epoch: 3,
            mutation_seq: 91,
            durable_seq: 91,
        });
        roundtrip_response(Response::Synced {
            epoch: 1,
            mutation_seq: u64::MAX,
            durable_seq: 0,
        });
    }

    #[test]
    fn history_frames_roundtrip() {
        roundtrip_request(Request::History {
            since_seq: 0,
            limit: 0,
        });
        roundtrip_request(Request::History {
            since_seq: 41,
            limit: 128,
        });
        roundtrip_response(Response::History(HistoryReply::default()));
        roundtrip_response(Response::History(HistoryReply {
            interval_ms: 250,
            next_seq: 44,
            samples: vec![
                HistorySampleReply {
                    seq: 42,
                    unix_ms: 1_700_000_000_123,
                    uptime_ms: 10_500,
                    entries: vec![
                        ("cqcount_requests_served_total".into(), 900),
                        ("cqcount_request_latency_us_p99".into(), 4_800),
                    ],
                },
                HistorySampleReply {
                    seq: 43,
                    unix_ms: 1_700_000_000_373,
                    uptime_ms: 10_750,
                    entries: vec![("cqcount_requests_served_total".into(), 907)],
                },
            ],
        }));
    }

    #[test]
    fn flight_frames_roundtrip() {
        roundtrip_request(Request::Flight { limit: 0 });
        roundtrip_request(Request::Flight { limit: 16 });
        roundtrip_response(Response::Flight(FlightReply::default()));
        roundtrip_response(Response::Flight(FlightReply {
            traces: vec![FlightTrace {
                seq: 7,
                op: "mutate".into(),
                reason: "slow".into(),
                latency_us: 412_000,
                threshold_us: 9_300,
                unix_ms: 1_700_000_000_555,
                root: SpanNode {
                    name: "request".into(),
                    start_ns: 0,
                    duration_ns: 412_000_000,
                    counters: vec![("wait_ns".into(), 1_000)],
                    tags: vec![("op".into(), "mutate".into())],
                    children: vec![SpanNode {
                        name: "wal.fsync".into(),
                        start_ns: 5_000,
                        duration_ns: 400_000_000,
                        ..SpanNode::default()
                    }],
                },
            }],
            incidents: vec![FlightIncident {
                seq: 8,
                kind: "stall".into(),
                detail: "worker-1 busy 412ms > 100ms".into(),
                unix_ms: 1_700_000_000_600,
            }],
        }));
    }

    #[test]
    fn hostile_history_and_flight_replies_are_rejected_cleanly() {
        // Declared sample count over the cap.
        let mut p = Vec::new();
        write_uleb(&mut p, 0); // interval
        write_uleb(&mut p, 1); // next_seq
        write_uleb(&mut p, MAX_HISTORY_SAMPLES as u64 + 1);
        let frame = Frame {
            version: V8,
            req_id: 0,
            opcode: OP_R_HISTORY,
            payload: p,
        };
        let err = Response::decode(&frame).unwrap_err();
        assert!(err.contains("exceeds cap"), "{err:?}");

        // Declared trace count over the cap.
        let mut p = Vec::new();
        write_uleb(&mut p, MAX_FLIGHT_TRACES as u64 + 1);
        let frame = Frame {
            version: V8,
            req_id: 0,
            opcode: OP_R_FLIGHT,
            payload: p,
        };
        let err = Response::decode(&frame).unwrap_err();
        assert!(err.contains("exceeds cap"), "{err:?}");
    }

    #[test]
    fn v7_stats_without_watchdog_block_still_parses() {
        // A v7 peer stops after the per-db durability block; the v8
        // decoder must treat the forensics counters as absent, not
        // truncated.
        let mut p = Vec::new();
        for v in 0..12u64 {
            write_uleb(&mut p, v);
        }
        write_uleb(&mut p, 1); // one db
        write_str(&mut p, "main");
        write_uleb(&mut p, 4); // epoch
        write_u64_le(&mut p, 99); // fingerprint
        write_uleb(&mut p, 12); // tuples
        for v in 0..6u64 {
            write_uleb(&mut p, v); // planner block
        }
        for v in 0..3u64 {
            write_uleb(&mut p, v); // mutation block
        }
        write_uleb(&mut p, 7); // mutation_seq
        write_uleb(&mut p, 7); // durable_seq
        p.push(0x01); // persisted, not read-only
        write_uleb(&mut p, 0); // recovered_records
        let frame = Frame {
            version: V7,
            req_id: 0,
            opcode: OP_R_STATS,
            payload: p,
        };
        let Response::Stats(s) = Response::decode(&frame).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(s.dbs[0].mutation_seq, 7);
        assert!(s.dbs[0].persisted);
        assert_eq!(s.recorder_retained, 0);
        assert_eq!(s.stalled_shards, 0);
        assert_eq!(s.stalled_workers, 0);
        assert_eq!(s.watchdog_stalls, 0);
    }

    #[test]
    fn stats_with_durability_flags_roundtrips() {
        roundtrip_response(Response::Stats(StatsReply {
            dbs: vec![
                DbSummary {
                    name: "a".into(),
                    epoch: 1,
                    fingerprint: 7,
                    tuples: 4,
                    mutation_seq: 10,
                    durable_seq: 6,
                    persisted: true,
                    read_only: true,
                    recovered_records: 0,
                    resident_bytes: 4096,
                    mapped_bytes: 1 << 20,
                },
                DbSummary {
                    name: "b".into(),
                    epoch: 2,
                    fingerprint: 8,
                    tuples: 5,
                    ..DbSummary::default()
                },
            ],
            ..StatsReply::default()
        }));
    }

    #[test]
    fn stats_without_memory_block_still_parses() {
        // A peer predating the mmap store stops after the forensics
        // counters; the decoder must treat the per-db memory block as
        // absent, not truncated.
        let mut p = Vec::new();
        for v in 0..12u64 {
            write_uleb(&mut p, v);
        }
        write_uleb(&mut p, 1); // one db
        write_str(&mut p, "main");
        write_uleb(&mut p, 4); // epoch
        write_u64_le(&mut p, 99); // fingerprint
        write_uleb(&mut p, 12); // tuples
        for v in 0..6u64 {
            write_uleb(&mut p, v); // planner block
        }
        for v in 0..3u64 {
            write_uleb(&mut p, v); // mutation block
        }
        write_uleb(&mut p, 7); // mutation_seq
        write_uleb(&mut p, 7); // durable_seq
        p.push(0x01);
        write_uleb(&mut p, 0); // recovered_records
        for v in 0..4u64 {
            write_uleb(&mut p, v); // forensics block
        }
        let frame = Frame {
            version: V8,
            req_id: 0,
            opcode: OP_R_STATS,
            payload: p,
        };
        let Response::Stats(s) = Response::decode(&frame).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(s.watchdog_stalls, 3);
        assert_eq!(s.dbs[0].resident_bytes, 0);
        assert_eq!(s.dbs[0].mapped_bytes, 0);
    }

    #[test]
    fn v6_stats_without_durability_block_still_parses() {
        // A v6 peer stops after the mutation counters; the v7 decoder
        // must treat the per-db durability block as absent, not truncated.
        let mut p = Vec::new();
        for v in 0..12u64 {
            write_uleb(&mut p, v);
        }
        write_uleb(&mut p, 1); // one db
        write_str(&mut p, "main");
        write_uleb(&mut p, 4); // epoch
        write_u64_le(&mut p, 99); // fingerprint
        write_uleb(&mut p, 12); // tuples
        for v in 0..6u64 {
            write_uleb(&mut p, v); // planner block
        }
        for v in 0..3u64 {
            write_uleb(&mut p, v); // mutation block
        }
        let frame = Frame {
            version: V6,
            req_id: 0,
            opcode: OP_R_STATS,
            payload: p,
        };
        let Response::Stats(s) = Response::decode(&frame).unwrap() else {
            panic!("expected stats");
        };
        assert_eq!(s.dbs.len(), 1);
        assert_eq!(s.dbs[0].mutation_seq, 0);
        assert_eq!(s.dbs[0].durable_seq, 0);
        assert!(!s.dbs[0].persisted);
        assert!(!s.dbs[0].read_only);
    }

    #[test]
    fn hostile_mutation_frames_are_rejected_cleanly() {
        // A batch whose declared op count is over the cap.
        let mut p = Vec::new();
        write_str(&mut p, "main");
        write_uleb(&mut p, MAX_MUTATION_OPS as u64 + 1);
        let frame = Frame {
            version: V6,
            req_id: 0,
            opcode: OP_MUTATE,
            payload: p,
        };
        let err = Request::decode(&frame).unwrap_err();
        assert!(err.contains("exceeds cap"), "{err:?}");

        // A tuple whose declared arity is over the cap.
        let mut p = Vec::new();
        write_str(&mut p, "main");
        write_str(&mut p, "edge");
        write_uleb(&mut p, MAX_TUPLE_ARITY as u64 + 1);
        let frame = Frame {
            version: V6,
            req_id: 0,
            opcode: OP_INSERT,
            payload: p,
        };
        let err = Request::decode(&frame).unwrap_err();
        assert!(err.contains("exceeds cap"), "{err:?}");

        // An op kind byte that is neither insert nor delete.
        let mut p = Vec::new();
        write_str(&mut p, "main");
        write_uleb(&mut p, 1);
        p.push(0x07);
        write_str(&mut p, "edge");
        write_uleb(&mut p, 0);
        let frame = Frame {
            version: V6,
            req_id: 0,
            opcode: OP_MUTATE,
            payload: p,
        };
        let err = Request::decode(&frame).unwrap_err();
        assert!(err.contains("kind"), "{err:?}");
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Count {
            value: "123456789012345678901234567890".into(),
            plan: "sharp-pipeline(width=2)".into(),
            cached: CacheTier::PlanWarm,
            degraded: true,
            fingerprint: 0xdead_beef_cafe_f00d,
        });
        roundtrip_response(Response::Rows {
            rows: vec![vec!["a".into(), "b".into()], vec!["c".into(), "d".into()]],
            truncated: true,
        });
        roundtrip_response(Response::Report(ReportReply {
            acyclic: false,
            ghw: Some(2),
            sharp_width: None,
            star_size: 2,
            atoms: 9,
            vars: 9,
            free: 3,
            cap: 3,
        }));
        roundtrip_response(Response::Stats(StatsReply {
            served: 10,
            overloaded: 1,
            plan_hits: 4,
            plan_misses: 2,
            count_hits: 3,
            count_misses: 3,
            malformed: 2,
            budget_exceeded: 1,
            panicked: 1,
            reaped: 4,
            degraded: 1,
            faults_injected: 9,
            dbs: vec![DbSummary {
                name: "main".into(),
                epoch: 2,
                fingerprint: 42,
                tuples: 17,
                mutation_seq: 9,
                durable_seq: 8,
                persisted: true,
                read_only: false,
                recovered_records: 3,
                resident_bytes: 123,
                mapped_bytes: 456,
            }],
            planner_blocks_solved: 321,
            planner_memo_hits: 100,
            planner_negative_reuse: 7,
            planner_candidates: 5000,
            planner_universes: 90,
            planner_widths_searched: 3,
            mutations_applied: 12,
            delta_bags_touched: 31,
            delta_fallbacks: 2,
            recorder_retained: 2,
            stalled_shards: 1,
            stalled_workers: 0,
            watchdog_stalls: 3,
        }));
        roundtrip_response(Response::Ok { epoch: 3 });
        roundtrip_response(Response::Stats(StatsReply::default()));
        roundtrip_response(Response::Error {
            code: ErrorCode::BudgetExceeded,
            message: "plan error: budget exceeded after 50ms".into(),
            retry_after_ms: 0,
        });
        roundtrip_response(Response::Error {
            code: ErrorCode::Overloaded,
            message: "overloaded: request queue at capacity 64".into(),
            retry_after_ms: 125,
        });
    }

    #[test]
    fn profile_and_metrics_roundtrip() {
        roundtrip_request(Request::Profile {
            db: "main".into(),
            query: "ans(X, Y) :- e(X, Y), e(Y, Z), e(Z, X).".into(),
            budget_ms: 500,
        });
        roundtrip_request(Request::Metrics);
        roundtrip_response(Response::Metrics {
            text: "# TYPE cqcount_requests_total counter\n\
                   cqcount_requests_total{op=\"count\"} 3\n"
                .into(),
        });
        roundtrip_response(Response::Profile(ProfileReply {
            value: "5".into(),
            plan: "sharp-pipeline(width=2)".into(),
            cached: CacheTier::Cold,
            degraded: false,
            fingerprint: 0x1234_5678_9abc_def0,
            total_ns: 1_234_567,
            dropped: 0,
            root: SpanNode {
                name: "request".into(),
                start_ns: 0,
                duration_ns: 1_234_567,
                counters: vec![],
                tags: vec![("op".into(), "profile".into())],
                children: vec![
                    SpanNode {
                        name: "parse".into(),
                        start_ns: 10,
                        duration_ns: 900,
                        ..SpanNode::default()
                    },
                    SpanNode {
                        name: "count.sharp".into(),
                        start_ns: 1_000,
                        duration_ns: 1_200_000,
                        counters: vec![("width".into(), 2)],
                        tags: vec![],
                        children: vec![SpanNode {
                            name: "algebra.join".into(),
                            start_ns: 2_000,
                            duration_ns: 800_000,
                            counters: vec![
                                ("rows_left".into(), 100),
                                ("rows_right".into(), 100),
                                ("rows_out".into(), 140),
                                ("bytes_out".into(), 1_680),
                            ],
                            tags: vec![],
                            children: vec![],
                        }],
                    },
                ],
            },
        }));
    }

    #[test]
    fn hostile_span_trees_are_rejected_cleanly() {
        // Declared child count beyond the node cap.
        let mut p = Vec::new();
        write_str(&mut p, "root");
        write_uleb(&mut p, 0); // start
        write_uleb(&mut p, 0); // duration
        write_uleb(&mut p, 0); // counters
        write_uleb(&mut p, 0); // tags
        write_uleb(&mut p, MAX_SPAN_NODES as u64 + 7); // children
        let mut pos = 0;
        let mut remaining = MAX_SPAN_NODES;
        let err = read_span_node(&p, &mut pos, &mut remaining, 0).unwrap_err();
        assert!(err.contains("larger than"), "{err:?}");

        // A frame that nests one child per level past the depth cap.
        let mut p = Vec::new();
        for _ in 0..(MAX_SPAN_DEPTH + 2) {
            write_str(&mut p, "n");
            write_uleb(&mut p, 0);
            write_uleb(&mut p, 0);
            write_uleb(&mut p, 0);
            write_uleb(&mut p, 0);
            write_uleb(&mut p, 1); // one child, recurse
        }
        let mut pos = 0;
        let mut remaining = MAX_SPAN_NODES;
        let err = read_span_node(&p, &mut pos, &mut remaining, 0).unwrap_err();
        assert!(err.contains("deeper than"), "{err:?}");

        // Counter/tag counts over the field cap.
        let mut p = Vec::new();
        write_str(&mut p, "n");
        write_uleb(&mut p, 0);
        write_uleb(&mut p, 0);
        write_uleb(&mut p, MAX_SPAN_FIELDS as u64 + 1);
        let mut pos = 0;
        let mut remaining = MAX_SPAN_NODES;
        let err = read_span_node(&p, &mut pos, &mut remaining, 0).unwrap_err();
        assert!(err.contains("exceeds cap"), "{err:?}");
    }

    #[test]
    fn v2_frames_still_parse_under_v6() {
        // A v2 peer sends VERSION = 0x02; the daemon must keep accepting it.
        let mut buf = Vec::new();
        Request::Stats.write_to(&mut buf).unwrap();
        assert_eq!(buf[2], V4, "the blocking client's wire format is v4");
        buf[2] = MIN_VERSION;
        let frame = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(frame.version, MIN_VERSION);
        assert_eq!(frame.req_id, 0, "pre-v5 frames carry no request id");
        assert_eq!(Request::decode(&frame).unwrap(), Request::Stats);
        // But versions outside [MIN_VERSION, VERSION] stay rejected.
        for bad in [0x00, 0x01, 0x09, 0x7f] {
            buf[2] = bad;
            assert!(read_frame(&mut Cursor::new(&buf)).is_err(), "version {bad}");
        }
    }

    #[test]
    fn v5_frames_carry_and_echo_request_ids() {
        let req = Request::Count {
            db: "main".into(),
            query: "ans(X) :- r(X, Y).".into(),
            budget_ms: 7,
        };
        for id in [0u64, 1, 127, 128, 300_000, u64::MAX] {
            let bytes = req.encode(V5, id);
            assert_eq!(bytes[2], V5);
            let frame = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
            assert_eq!(frame.version, V5);
            assert_eq!(frame.req_id, id);
            assert_eq!(Request::decode(&frame).unwrap(), req);

            let resp = Response::Ok { epoch: 3 };
            let bytes = resp.encode(V5, id);
            let frame = read_frame(&mut Cursor::new(&bytes)).unwrap().unwrap();
            assert_eq!(frame.req_id, id);
            assert_eq!(Response::decode(&frame).unwrap(), resp);
        }
        // The v4 encoding of the same request has no id and is the
        // blocking client's exact wire format.
        let mut via_write_to = Vec::new();
        req.write_to(&mut via_write_to).unwrap();
        assert_eq!(req.encode(V4, 0), via_write_to);
        assert!(req.encode(V5, 1).len() > via_write_to.len());
    }

    #[test]
    fn parse_frame_prefix_is_incremental_and_exact() {
        let req = Request::Count {
            db: "main".into(),
            query: "ans(X, Y) :- r(X, Y), s(Y, Z).".into(),
            budget_ms: 250,
        };
        for (version, id) in [(V4, 0u64), (V5, 42)] {
            let bytes = req.encode(version, id);
            // Every strict prefix: incomplete, never an error or a frame.
            for cut in 0..bytes.len() {
                match parse_frame_prefix(&bytes[..cut]) {
                    Ok(None) => {}
                    other => panic!("prefix {cut}/{}: {other:?}", bytes.len()),
                }
            }
            // The whole frame parses and consumes exactly its bytes, with
            // pipelined trailing data left untouched.
            let mut stream = bytes.clone();
            stream.extend_from_slice(&bytes);
            let (frame, used) = parse_frame_prefix(&stream).unwrap().unwrap();
            assert_eq!(used, bytes.len());
            assert_eq!(frame.version, version);
            assert_eq!(frame.req_id, id);
            assert_eq!(Request::decode(&frame).unwrap(), req);
            let (frame2, used2) = parse_frame_prefix(&stream[used..]).unwrap().unwrap();
            assert_eq!(used2, bytes.len());
            assert_eq!(frame2.req_id, id);
        }

        // Fatal inputs fail fast, before the frame is complete.
        assert!(parse_frame_prefix(b"XQ").is_err(), "bad magic byte 0");
        assert!(parse_frame_prefix(b"CX").is_err(), "bad magic byte 1");
        assert!(
            parse_frame_prefix(&[MAGIC[0], MAGIC[1], 0x7f]).is_err(),
            "unsupported version"
        );
        let mut runaway = vec![MAGIC[0], MAGIC[1], V4, OP_STATS];
        runaway.extend_from_slice(&[0x80; 11]);
        assert!(parse_frame_prefix(&runaway).is_err(), "runaway varint");
        let mut oversized = vec![MAGIC[0], MAGIC[1], V4, OP_STATS];
        write_uleb(&mut oversized, MAX_PAYLOAD as u64 + 1);
        assert!(parse_frame_prefix(&oversized).is_err(), "oversized payload");
    }

    #[test]
    fn older_stats_replies_without_trailing_fields_still_decode() {
        let full = Response::Stats(StatsReply {
            served: 5,
            planner_blocks_solved: 9,
            planner_widths_searched: 2,
            mutations_applied: 4,
            ..StatsReply::default()
        });
        let mut buf = Vec::new();
        full.write_to(&mut buf).unwrap();
        let frame = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();

        // A v4/v5 server's STATS reply ends at the planner counters; the
        // decoder must read it with the mutation and forensics counters
        // defaulting to zero. All trailing values are < 128 here, so the
        // planner block is six bytes, the mutation block three, and the
        // v8 forensics block four (the db list is empty, so the v7 per-db
        // block is zero bytes).
        let mut v5 = frame.clone();
        v5.payload.truncate(v5.payload.len() - 7);
        let got = match Response::decode(&v5).unwrap() {
            Response::Stats(s) => s,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(got.served, 5);
        assert_eq!(got.planner_blocks_solved, 9);
        assert_eq!(got.mutations_applied, 0);

        // A v3 reply ends at the db list; every optional block defaults.
        let mut v3 = frame.clone();
        v3.payload.truncate(v3.payload.len() - 13);
        let got = match Response::decode(&v3).unwrap() {
            Response::Stats(s) => s,
            other => panic!("expected stats, got {other:?}"),
        };
        assert_eq!(got.served, 5);
        assert_eq!(got.planner_blocks_solved, 0);
        assert_eq!(got.planner_widths_searched, 0);
        assert_eq!(got.mutations_applied, 0);
    }

    #[test]
    fn eof_before_header_is_clean_close() {
        assert!(read_frame(&mut Cursor::new(&[])).unwrap().is_none());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut buf = Vec::new();
        Request::Stats.write_to(&mut buf).unwrap();
        let mut corrupted = buf.clone();
        corrupted[0] = b'X';
        assert!(read_frame(&mut Cursor::new(&corrupted)).is_err());
        let mut wrong_version = buf.clone();
        wrong_version[2] = 0x7f;
        assert!(read_frame(&mut Cursor::new(&wrong_version)).is_err());
    }

    #[test]
    fn oversized_payload_is_rejected_before_allocation() {
        for version in [V4, V5] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&MAGIC);
            buf.push(version);
            buf.push(OP_COUNT);
            if version >= V5 {
                write_uleb(&mut buf, 9); // request id
            }
            write_uleb(&mut buf, (MAX_PAYLOAD + 1) as u64);
            assert!(read_frame(&mut Cursor::new(&buf)).is_err());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut p = Vec::new();
        write_uleb(&mut p, 7);
        let frame = Frame {
            version: V4,
            req_id: 0,
            opcode: OP_STATS,
            payload: p,
        };
        assert!(Request::decode(&frame).is_err());
    }
}
