//! Seeded, deterministic fault injection for chaos-testing the daemon.
//!
//! A [`FaultInjector`] wraps connections and jobs with injected failures —
//! short reads/writes, mid-frame disconnects, artificial latency, forced
//! worker panics, and forced resource-cap trips — so the hardening in
//! [`crate::server`] and [`crate::client`] can be exercised on demand
//! (`cqcountd --fault-profile flaky-net`) and regression-tested.
//!
//! **Determinism.** Every decision is drawn from `cqcount_arith::prng`
//! generators derived from a single seed (`CQCOUNT_FAULT_SEED`): each
//! connection gets three independent lanes (read, write, jobs) seeded from
//! `(seed, connection id)`. I/O faults trigger at *byte offsets* of the
//! connection's streams, not at call counts — `read`/`write` call
//! boundaries depend on TCP timing, byte positions do not — so a serial
//! client replaying the same request script against the same seed observes
//! the identical [`FaultEvent`] sequence, run after run.

use cqcount_arith::prng::{Rng, SplitMix64};
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What to break and how often. Probabilities are per counting job; I/O
/// faults are spaced by a mean byte gap per stream direction.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultProfile {
    /// Profile name, for logs and `--fault-profile`.
    pub label: &'static str,
    /// Mean gap in bytes between injected I/O faults (0 disables them).
    pub io_gap: u64,
    /// Weight of short reads/writes among I/O faults.
    pub short_weight: u32,
    /// Weight of injected latency among I/O faults.
    pub latency_weight: u32,
    /// Weight of mid-frame disconnects among I/O faults.
    pub disconnect_weight: u32,
    /// Upper bound on a single injected latency, in milliseconds.
    pub latency_max_ms: u64,
    /// Probability that a counting job panics inside the worker.
    pub worker_panic_p: f64,
    /// Probability that a counting job's resource budget is tripped at
    /// admission (simulating an allocation/budget cap firing mid-request).
    pub cap_trip_p: f64,
}

impl FaultProfile {
    /// No faults (the production default).
    pub fn off() -> FaultProfile {
        FaultProfile {
            label: "off",
            io_gap: 0,
            short_weight: 0,
            latency_weight: 0,
            disconnect_weight: 0,
            latency_max_ms: 0,
            worker_panic_p: 0.0,
            cap_trip_p: 0.0,
        }
    }

    /// Network-shaped trouble only: short reads/writes, small latencies,
    /// occasional mid-frame disconnects. Safe to retry through.
    pub fn flaky_net() -> FaultProfile {
        FaultProfile {
            label: "flaky-net",
            io_gap: 48,
            short_weight: 8,
            latency_weight: 3,
            disconnect_weight: 1,
            latency_max_ms: 2,
            worker_panic_p: 0.0,
            cap_trip_p: 0.0,
        }
    }

    /// Pure latency injection (no data-level faults).
    pub fn slow_net() -> FaultProfile {
        FaultProfile {
            label: "slow-net",
            io_gap: 32,
            short_weight: 0,
            latency_weight: 1,
            disconnect_weight: 0,
            latency_max_ms: 5,
            worker_panic_p: 0.0,
            cap_trip_p: 0.0,
        }
    }

    /// Everything at once: flaky network plus worker panics and forced
    /// cap trips.
    pub fn chaos() -> FaultProfile {
        FaultProfile {
            label: "chaos",
            io_gap: 48,
            short_weight: 6,
            latency_weight: 3,
            disconnect_weight: 1,
            latency_max_ms: 3,
            worker_panic_p: 0.05,
            cap_trip_p: 0.05,
        }
    }

    /// Crash faults only: no network or worker trouble, but the daemon
    /// schedules one seeded process abort at a durability kill-point
    /// (see [`CrashPlan::from_seed`]). The binary pairs this label with
    /// a [`CrashPlan`]; the profile itself injects nothing.
    pub fn crash() -> FaultProfile {
        FaultProfile {
            label: "crash",
            ..FaultProfile::off()
        }
    }

    /// Parses a `--fault-profile` name.
    pub fn parse(name: &str) -> Result<FaultProfile, String> {
        match name {
            "off" | "none" => Ok(FaultProfile::off()),
            "flaky-net" => Ok(FaultProfile::flaky_net()),
            "slow-net" => Ok(FaultProfile::slow_net()),
            "chaos" => Ok(FaultProfile::chaos()),
            "crash" => Ok(FaultProfile::crash()),
            other => Err(format!(
                "unknown fault profile {other:?} (expected off, flaky-net, slow-net, chaos, or crash)"
            )),
        }
    }

    /// Does this profile inject anything at all?
    pub fn is_active(&self) -> bool {
        (self.io_gap > 0 && self.io_weight_total() > 0)
            || self.worker_panic_p > 0.0
            || self.cap_trip_p > 0.0
    }

    fn io_weight_total(&self) -> u32 {
        self.short_weight + self.latency_weight + self.disconnect_weight
    }
}

/// A point on the durability path where a seeded crash may fire.
/// These are the four places where dying tells a different story:
/// before the WAL append (batch fully lost), after the append but
/// before fsync (acknowledgement never sent, bytes only in user space —
/// lost), after fsync (durable but unacknowledged), and between a
/// snapshot's temp-file write and its rename (previous snapshot must
/// still carry recovery).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    /// Before the record reaches the WAL writer.
    PreAppend,
    /// After the buffered append, before flush/fsync.
    PreFsync,
    /// After the fsync, before the acknowledgement is built.
    PostFsync,
    /// Between a snapshot's durable temp file and its rename.
    MidSnapshot,
}

impl CrashPoint {
    /// All points, in the order `from_seed` indexes them.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::PreAppend,
        CrashPoint::PreFsync,
        CrashPoint::PostFsync,
        CrashPoint::MidSnapshot,
    ];

    /// The `--crash-at` spelling of this point.
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::PreAppend => "pre-append",
            CrashPoint::PreFsync => "pre-fsync",
            CrashPoint::PostFsync => "post-fsync",
            CrashPoint::MidSnapshot => "mid-snapshot",
        }
    }

    /// Parses a `--crash-at` point name.
    pub fn parse(name: &str) -> Result<CrashPoint, String> {
        CrashPoint::ALL
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| {
                format!(
                    "unknown crash point {name:?} (expected pre-append, pre-fsync, post-fsync, or mid-snapshot)"
                )
            })
    }
}

/// One scheduled process abort: die on the `at`-th time execution passes
/// `point`. The abort is a `std::process::abort()` — indistinguishable
/// from `kill -9` as far as the files on disk are concerned — so the
/// crash-recovery tests drive the *real* daemon binary through it and
/// restart from the data directory.
#[derive(Debug)]
pub struct CrashPlan {
    point: CrashPoint,
    at: u64,
    hits: AtomicU64,
}

impl CrashPlan {
    /// A plan that aborts on the `at`-th pass of `point` (1-based; an
    /// `at` of 0 is clamped to 1).
    pub fn new(point: CrashPoint, at: u64) -> CrashPlan {
        CrashPlan {
            point,
            at: at.max(1),
            hits: AtomicU64::new(0),
        }
    }

    /// Parses a `--crash-at POINT:N` spec, e.g. `pre-fsync:3`.
    pub fn parse(spec: &str) -> Result<CrashPlan, String> {
        let (point, at) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad crash spec {spec:?} (expected POINT:N)"))?;
        let at: u64 = at
            .parse()
            .map_err(|_| format!("bad crash count in {spec:?}"))?;
        Ok(CrashPlan::new(CrashPoint::parse(point)?, at))
    }

    /// Derives a deterministic plan from the fault seed
    /// (`--fault-profile crash` without an explicit `--crash-at`): the
    /// point and the hit count both come from a [`SplitMix64`] stream,
    /// so the same seed schedules the same abort, run after run.
    pub fn from_seed(seed: u64) -> CrashPlan {
        let mut g = SplitMix64::new(seed ^ 0xC4A5_11FE_DB01_7A3E);
        let point = CrashPoint::ALL[(g.next_u64() % 4) as usize];
        let at = 1 + g.next_u64() % 8;
        CrashPlan::new(point, at)
    }

    /// The scheduled point, for logs.
    pub fn point(&self) -> CrashPoint {
        self.point
    }

    /// The scheduled hit count, for logs.
    pub fn at(&self) -> u64 {
        self.at
    }

    /// Called at each kill-point on the durability path. Counts a hit if
    /// the point matches and aborts the process when the schedule says
    /// so. Never returns when it fires.
    pub fn hit(&self, point: CrashPoint) {
        if point != self.point {
            return;
        }
        let n = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        if n == self.at {
            eprintln!(
                "cqcountd: injected crash at kill-point {}#{}",
                self.point.name(),
                self.at
            );
            std::process::abort();
        }
    }
}

/// One injected failure, for the replayable chaos log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// A `read` was truncated to a single byte.
    ShortRead,
    /// A `write` accepted only a single byte.
    ShortWrite,
    /// The connection was torn down mid-stream.
    Disconnect,
    /// An artificial delay was inserted before the transfer.
    Latency,
    /// The worker deliberately panicked while running the job.
    WorkerPanic,
    /// The job's budget was cancelled at admission (cap trip).
    CapTrip,
}

/// A recorded injection: which connection, what, and where (`pos` is the
/// stream byte offset for I/O faults, the per-connection job index for
/// job faults).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Connection id (accept order, starting at 0).
    pub conn: u64,
    /// What was injected.
    pub kind: FaultKind,
    /// Byte offset (I/O faults) or job index (job faults).
    pub pos: u64,
}

/// Faults decided for one queued counting job.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobFaults {
    /// Panic inside the worker instead of running the job.
    pub panic: bool,
    /// Cancel the job's budget before it starts.
    pub cap_trip: bool,
}

/// The seeded fault source shared by every connection of one server.
#[derive(Debug)]
pub struct FaultInjector {
    profile: FaultProfile,
    seed: u64,
    next_conn: AtomicU64,
    injected: AtomicU64,
    events: Mutex<Vec<FaultEvent>>,
}

impl FaultInjector {
    /// A new injector; `seed` fixes every future decision.
    pub fn new(profile: FaultProfile, seed: u64) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            profile,
            seed,
            next_conn: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        })
    }

    /// The active profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Derives the per-connection fault state for the next accepted
    /// connection (ids follow accept order).
    pub fn connection(self: &Arc<FaultInjector>) -> Arc<ConnFaults> {
        let conn = self.next_conn.fetch_add(1, Ordering::SeqCst);
        // Three independent lanes so read, write, and job decisions never
        // perturb each other's streams.
        let mut expand = SplitMix64::new(self.seed ^ conn.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Arc::new(ConnFaults {
            injector: Arc::clone(self),
            conn,
            read: Mutex::new(Lane::new(Rng::seed_from_u64(expand.next_u64()))),
            write: Mutex::new(Lane::new(Rng::seed_from_u64(expand.next_u64()))),
            jobs: Mutex::new(JobLane {
                rng: Rng::seed_from_u64(expand.next_u64()),
                count: 0,
            }),
        })
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// A snapshot of the full event log (insertion order).
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().unwrap().clone()
    }

    fn record(&self, ev: FaultEvent) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.events.lock().unwrap().push(ev);
    }
}

/// One stream direction's deterministic fault schedule.
#[derive(Debug)]
struct Lane {
    rng: Rng,
    /// Bytes transferred so far in this direction.
    pos: u64,
    /// Byte offset of the next scheduled fault (0 = not yet drawn).
    next_at: u64,
}

impl Lane {
    fn new(rng: Rng) -> Lane {
        Lane {
            rng,
            pos: 0,
            next_at: 0,
        }
    }

    /// Mean-`gap` spacing, strictly positive, drawn from the lane's rng.
    fn schedule(&mut self, gap: u64) {
        self.next_at = self.pos + 1 + self.rng.below(2 * gap.max(1));
    }
}

#[derive(Debug)]
struct JobLane {
    rng: Rng,
    count: u64,
}

/// Per-connection fault state: three seeded lanes plus the shared log.
#[derive(Debug)]
pub struct ConnFaults {
    injector: Arc<FaultInjector>,
    conn: u64,
    read: Mutex<Lane>,
    write: Mutex<Lane>,
    jobs: Mutex<JobLane>,
}

/// What the I/O wrapper should do for the current transfer.
enum IoDecision {
    /// Transfer at most this many bytes (keeps fault offsets byte-exact).
    Pass(usize),
    /// Truncate the transfer to one byte.
    Short,
    /// Tear the connection down.
    Disconnect,
}

impl ConnFaults {
    /// The connection id (accept order).
    pub fn conn_id(&self) -> u64 {
        self.conn
    }

    /// Wraps one half of a duplicated stream. Both halves of a connection
    /// should share the same `ConnFaults` (reads and writes advance
    /// independent lanes).
    pub fn wrap(self: &Arc<ConnFaults>, stream: TcpStream) -> FaultyStream {
        FaultyStream {
            inner: stream,
            conn: Arc::clone(self),
        }
    }

    /// Draws the faults for the next counting job on this connection.
    pub fn job_faults(&self) -> JobFaults {
        let profile = self.injector.profile.clone();
        let mut lane = self.jobs.lock().unwrap();
        lane.count += 1;
        let idx = lane.count;
        let faults = JobFaults {
            panic: lane.rng.chance(profile.worker_panic_p),
            cap_trip: lane.rng.chance(profile.cap_trip_p),
        };
        drop(lane);
        if faults.panic {
            self.injector.record(FaultEvent {
                conn: self.conn,
                kind: FaultKind::WorkerPanic,
                pos: idx,
            });
        }
        if faults.cap_trip {
            self.injector.record(FaultEvent {
                conn: self.conn,
                kind: FaultKind::CapTrip,
                pos: idx,
            });
        }
        faults
    }

    /// Decides what happens to a transfer of up to `want` bytes on the
    /// given lane. Latency faults sleep here and then pass the transfer.
    fn decide(&self, lane: &Mutex<Lane>, want: usize, reading: bool) -> IoDecision {
        let profile = &self.injector.profile;
        let total = profile.io_weight_total();
        if profile.io_gap == 0 || total == 0 || want == 0 {
            return IoDecision::Pass(want);
        }
        let mut lane = lane.lock().unwrap();
        if lane.next_at == 0 {
            lane.schedule(profile.io_gap);
        }
        if lane.pos < lane.next_at {
            // No fault inside this transfer: cap it so the next fault
            // still lands on its exact byte offset.
            let room = (lane.next_at - lane.pos) as usize;
            return IoDecision::Pass(want.min(room));
        }
        // A fault is due at this offset.
        let pos = lane.pos;
        let roll = lane.rng.below(u64::from(total)) as u32;
        lane.schedule(profile.io_gap);
        let (kind, decision) = if roll < profile.short_weight {
            if reading {
                (FaultKind::ShortRead, IoDecision::Short)
            } else {
                (FaultKind::ShortWrite, IoDecision::Short)
            }
        } else if roll < profile.short_weight + profile.latency_weight {
            let ms = lane.rng.below(profile.latency_max_ms + 1);
            drop(lane);
            std::thread::sleep(Duration::from_millis(ms));
            (FaultKind::Latency, IoDecision::Pass(want))
        } else {
            (FaultKind::Disconnect, IoDecision::Disconnect)
        };
        self.injector.record(FaultEvent {
            conn: self.conn,
            kind,
            pos,
        });
        decision
    }

    fn advance(&self, lane: &Mutex<Lane>, n: usize) {
        if self.injector.profile.io_gap > 0 {
            lane.lock().unwrap().pos += n as u64;
        }
    }
}

/// A `TcpStream` wrapper that applies a connection's injected I/O faults.
/// Short transfers honor the `Read`/`Write` contracts (they are *legal*
/// partial transfers — robust callers must already loop); disconnects
/// shut the socket down for real so the peer observes them too.
#[derive(Debug)]
pub struct FaultyStream {
    inner: TcpStream,
    conn: Arc<ConnFaults>,
}

impl Read for FaultyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.conn.decide(&self.conn.read, buf.len(), true) {
            IoDecision::Pass(cap) => {
                let n = self.inner.read(&mut buf[..cap])?;
                self.conn.advance(&self.conn.read, n);
                Ok(n)
            }
            IoDecision::Short => {
                let cap = 1.min(buf.len());
                let n = self.inner.read(&mut buf[..cap])?;
                self.conn.advance(&self.conn.read, n);
                Ok(n)
            }
            IoDecision::Disconnect => {
                let _ = self.inner.shutdown(Shutdown::Both);
                Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "fault injection: forced disconnect",
                ))
            }
        }
    }
}

impl Write for FaultyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.conn.decide(&self.conn.write, buf.len(), false) {
            IoDecision::Pass(cap) => {
                let n = self.inner.write(&buf[..cap])?;
                self.conn.advance(&self.conn.write, n);
                Ok(n)
            }
            IoDecision::Short => {
                let n = self.inner.write(&buf[..1.min(buf.len())])?;
                self.conn.advance(&self.conn.write, n);
                Ok(n)
            }
            IoDecision::Disconnect => {
                let _ = self.inner.shutdown(Shutdown::Both);
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "fault injection: forced disconnect",
                ))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_parse_and_classify() {
        assert!(!FaultProfile::off().is_active());
        assert!(FaultProfile::flaky_net().is_active());
        assert!(FaultProfile::chaos().is_active());
        assert_eq!(FaultProfile::parse("off").unwrap().label, "off");
        assert_eq!(FaultProfile::parse("chaos").unwrap().label, "chaos");
        assert!(FaultProfile::parse("explode").is_err());
    }

    #[test]
    fn job_fault_draws_are_deterministic_per_seed() {
        let draws = |seed: u64| -> Vec<JobFaults> {
            let inj = FaultInjector::new(FaultProfile::chaos(), seed);
            let conn = inj.connection();
            (0..64).map(|_| conn.job_faults()).collect()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8), "different seeds should differ");
        // chaos probabilities are low but nonzero: something fires in 64.
        let inj = FaultInjector::new(FaultProfile::chaos(), 7);
        let conn = inj.connection();
        for _ in 0..64 {
            conn.job_faults();
        }
        assert!(inj.injected() > 0);
    }

    #[test]
    fn connections_get_independent_lanes() {
        let inj = FaultInjector::new(FaultProfile::chaos(), 1);
        let a = inj.connection();
        let b = inj.connection();
        assert_ne!(a.conn_id(), b.conn_id());
        let fa: Vec<JobFaults> = (0..32).map(|_| a.job_faults()).collect();
        let fb: Vec<JobFaults> = (0..32).map(|_| b.job_faults()).collect();
        assert_ne!(fa, fb, "lanes must be seeded per connection");
    }

    #[test]
    fn event_log_orders_job_faults_by_index() {
        let inj = FaultInjector::new(
            FaultProfile {
                worker_panic_p: 1.0,
                ..FaultProfile::off()
            },
            3,
        );
        let conn = inj.connection();
        for _ in 0..3 {
            assert!(conn.job_faults().panic);
        }
        let evs = inj.events();
        assert_eq!(evs.len(), 3);
        assert!(evs
            .iter()
            .enumerate()
            .all(|(i, e)| e.kind == FaultKind::WorkerPanic && e.pos == i as u64 + 1));
    }
}
