//! Database snapshots and the startup recovery path.
//!
//! A snapshot is one self-verifying file holding a database's full
//! content plus the `(epoch, mutation_seq)` point it captures. Since the
//! store format landed, snapshots *are* store images
//! ([`cqcount_relational::store`], magic `CQSTORE2`): sorted columnar
//! pages plus the persisted dedup index, CRC-guarded per section.
//! Recovery maps the file read-only and serves straight off the pages —
//! startup is O(mmap) + the WAL tail, not O(data). Relations stay frozen
//! on the mapped region until a mutation thaws them, and consecutive
//! epochs share unchanged pages copy-on-write.
//!
//! The previous generation's format (`CQSNAP1\n` | uleb body | crc32) is
//! still *read*: recovery dispatches on the 8-byte magic, so a daemon
//! upgraded in place recovers its old snapshots and writes store images
//! from then on.
//!
//! Writes are atomic: encode to `snapshot.tmp`, fsync, rename onto
//! `snap-<epoch>-<seq>.cqs` (fixed-width hex, so lexicographic order is
//! recovery order), fsync the directory, prune to the newest
//! [`KEEP_SNAPSHOTS`]. Recovery walks snapshots newest-first, takes the
//! first one whose CRC checks out, then replays the WAL tail strictly
//! above its sequence — see [`recover_db`] for the exact skip/stop rules.

use crate::protocol::{read_str, read_uleb};
use crate::wal::{scan_wal, truncate_to, wal_path};
use cqcount_relational::store::{encode_store, open_store};
use cqcount_relational::{Database, StoreError};
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

const LEGACY_MAGIC: &[u8; 8] = b"CQSNAP1\n";
const TMP_FILE: &str = "snapshot.tmp";
/// How many generations survive pruning. Two: the newest, plus its
/// predecessor as a fallback if the newest turns out unreadable later.
const KEEP_SNAPSHOTS: usize = 2;

/// CRC-32 shared with the WAL (same polynomial, same table).
use crate::wal::crc32;

/// Loads one snapshot file of either generation: store images are opened
/// through [`open_store`] (mmap when possible); anything starting with
/// the legacy magic goes through the uleb decoder. Every failure is a
/// `skip` for the caller — recovery falls back to the previous file.
fn load_snapshot(path: &Path) -> Result<(Database, u64, u64), String> {
    // Dispatch on the 8-byte magic (a legacy file can be shorter than a
    // store header, so the store opener alone cannot classify it).
    let mut magic = [0u8; 8];
    {
        use std::io::Read;
        let mut f = File::open(path).map_err(|e| e.to_string())?;
        f.read_exact(&mut magic).map_err(|e| e.to_string())?;
    }
    if &magic == LEGACY_MAGIC {
        let bytes = fs::read(path).map_err(|e| e.to_string())?;
        return decode_legacy(&bytes);
    }
    let loaded = open_store(path).map_err(|e: StoreError| e.to_string())?;
    Ok((loaded.db, loaded.epoch, loaded.seq))
}

/// Decodes and verifies a legacy (`CQSNAP1`) snapshot file's bytes.
fn decode_legacy(bytes: &[u8]) -> Result<(Database, u64, u64), String> {
    let rest = bytes
        .strip_prefix(LEGACY_MAGIC)
        .ok_or("bad snapshot magic")?;
    if rest.len() < 4 {
        return Err("snapshot too short for checksum".into());
    }
    let (body, crc_bytes) = rest.split_at(rest.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if crc32(body) != stored {
        return Err("snapshot checksum mismatch".into());
    }
    let mut pos = 0usize;
    let epoch = read_uleb(body, &mut pos)?;
    let seq = read_uleb(body, &mut pos)?;
    let nrels = read_uleb(body, &mut pos)?;
    let mut db = Database::default();
    for _ in 0..nrels {
        let name = read_str(body, &mut pos)?;
        let arity = read_uleb(body, &mut pos)? as usize;
        if arity > crate::protocol::MAX_TUPLE_ARITY {
            return Err(format!("snapshot claims arity {arity}"));
        }
        let ntuples = read_uleb(body, &mut pos)?;
        db.ensure_relation(&name, arity);
        for _ in 0..ntuples {
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(read_str(body, &mut pos)?);
            }
            let refs: Vec<&str> = values.iter().map(String::as_str).collect();
            db.add_fact(&name, &refs);
        }
    }
    if pos != body.len() {
        return Err("trailing bytes in snapshot body".into());
    }
    db.set_mutation_seq(seq);
    Ok((db, epoch, seq))
}

fn snap_file_name(epoch: u64, seq: u64) -> String {
    format!("snap-{epoch:016x}-{seq:016x}.cqs")
}

/// Atomically writes a snapshot of `db` into `db_dir` and prunes old
/// generations. Returns the encoded size in bytes. `mid_crash` fires
/// between the durable temp file and the rename — the `mid-snapshot`
/// kill-point: a crash there must leave the previous snapshot intact.
///
/// The file is a store image, so the *next* restart maps it instead of
/// parsing it. Frozen relations pass their pages through byte-identical,
/// which is what makes back-to-back snapshots of an idle database cheap.
pub(crate) fn write_snapshot(
    db_dir: &Path,
    db: &Database,
    epoch: u64,
    mid_crash: impl Fn(),
) -> std::io::Result<u64> {
    let seq = db.mutation_seq();
    let image = encode_store(db, epoch, seq);
    let tmp = db_dir.join(TMP_FILE);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_data()?;
    }
    mid_crash();
    let dest = db_dir.join(snap_file_name(epoch, seq));
    fs::rename(&tmp, &dest)?;
    if let Ok(dir) = File::open(db_dir) {
        let _ = dir.sync_all();
    }
    prune_snapshots(db_dir);
    Ok(image.len() as u64)
}

fn snapshot_files(db_dir: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    if let Ok(entries) = fs::read_dir(db_dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("snap-") && name.ends_with(".cqs") {
                files.push(entry.path());
            }
        }
    }
    // Fixed-width hex names: lexicographic == (epoch, seq) order.
    files.sort();
    files
}

fn prune_snapshots(db_dir: &Path) {
    let files = snapshot_files(db_dir);
    if files.len() > KEEP_SNAPSHOTS {
        for old in &files[..files.len() - KEEP_SNAPSHOTS] {
            let _ = fs::remove_file(old);
        }
    }
}

/// Everything recovery learned about one database directory.
pub(crate) struct Recovered {
    /// The rebuilt database (empty if nothing valid was on disk).
    pub(crate) db: Database,
    /// Epoch of the recovered instance (1 if starting fresh).
    pub(crate) epoch: u64,
    /// Whether a valid snapshot was loaded.
    pub(crate) snapshot_loaded: bool,
    /// Snapshot files that failed verification before one succeeded.
    pub(crate) snapshots_skipped: u64,
    /// WAL records replayed on top of the snapshot.
    pub(crate) replayed: u64,
    /// Bytes of torn/corrupt WAL tail truncated away.
    pub(crate) truncated_bytes: u64,
    /// The WAL ended in an incomplete record (normal crash residue).
    pub(crate) torn: bool,
    /// A complete WAL record or snapshot failed verification.
    pub(crate) corrupt: bool,
}

/// Rebuilds one database from its directory: newest valid snapshot plus
/// the WAL tail.
///
/// Replay rules, in order per record:
/// * `epoch != snapshot epoch` → stop (a reload superseded the tail;
///   its snapshot is the one we just loaded or a newer one that was
///   lost — either way the tail is not applicable).
/// * `seq_after <= snapshot seq` → skip (already folded in).
/// * apply the ops; if any op fails or the resulting `mutation_seq`
///   disagrees with `seq_after`, the log diverged from its base — stop
///   and treat the rest as corrupt.
///
/// The file is then truncated to the last applied boundary, so the next
/// append starts clean. If *no* valid snapshot exists but snapshot files
/// were present (all corrupt), the WAL has lost its base state: recovery
/// starts empty and does **not** replay, reporting corruption instead of
/// guessing.
pub(crate) fn recover_db(db_dir: &Path) -> std::io::Result<Recovered> {
    let replay_span = cqcount_obs::trace::span("recover.replay");
    let mut skipped = 0u64;
    let mut loaded: Option<(Database, u64, u64)> = None;
    let files = snapshot_files(db_dir);
    let had_snapshots = !files.is_empty();
    for path in files.iter().rev() {
        match load_snapshot(path) {
            Ok(parsed) => {
                loaded = Some(parsed);
                break;
            }
            Err(_) => skipped += 1,
        }
    }
    let snapshot_loaded = loaded.is_some();
    let (mut db, epoch, snap_seq) = loaded.unwrap_or_else(|| (Database::default(), 1, 0));

    let wal = wal_path(db_dir);
    let scan = scan_wal(&wal)?;
    let mut replayed = 0u64;
    let mut corrupt = scan.corrupt || (!snapshot_loaded && had_snapshots);
    let mut valid_len = scan.valid_len;
    if snapshot_loaded || !had_snapshots {
        for (i, rec) in scan.records.iter().enumerate() {
            if rec.epoch != epoch {
                valid_len = scan.ends.get(i.wrapping_sub(1)).copied().unwrap_or(0);
                break;
            }
            if rec.seq_after <= snap_seq {
                continue;
            }
            let mut ok = true;
            for op in &rec.ops {
                let values: Vec<&str> = op.values.iter().map(String::as_str).collect();
                let applied = if op.insert {
                    db.insert_tuple(&op.rel, &values)
                } else {
                    db.delete_tuple(&op.rel, &values)
                };
                if !matches!(applied, Ok(true)) {
                    ok = false;
                    break;
                }
            }
            if !ok || db.mutation_seq() != rec.seq_after {
                corrupt = true;
                valid_len = scan.ends.get(i.wrapping_sub(1)).copied().unwrap_or(0);
                // Roll back to the last consistent point we can name.
                db.set_mutation_seq(rec.seq_after);
                break;
            }
            replayed += 1;
        }
    } else {
        valid_len = 0;
    }

    let mut truncated_bytes = 0u64;
    let file_len = fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
    if file_len > valid_len {
        truncated_bytes = file_len - valid_len;
        truncate_to(&wal, valid_len)?;
    }

    replay_span.add("replayed", replayed);
    replay_span.add("truncated_bytes", truncated_bytes);
    drop(replay_span);
    Ok(Recovered {
        db,
        epoch,
        snapshot_loaded,
        snapshots_skipped: skipped,
        replayed,
        truncated_bytes,
        torn: scan.torn,
        corrupt,
    })
}

/// Encodes a database name into a filesystem-safe directory name.
/// Alphanumerics, `-` and `_` pass through; every other byte becomes
/// `%XX`. Injective, so distinct names never collide on disk.
pub(crate) fn encode_db_dir(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(b as char),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Inverse of [`encode_db_dir`]; `None` for names that are not valid
/// encodings (foreign files in the data dir are skipped, not fatal).
pub(crate) fn decode_db_dir(dir: &str) -> Option<String> {
    let bytes = dir.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = char::from(hex[0]).to_digit(16)?;
                let lo = char::from(hex[1]).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b @ (b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_') => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cqsnap_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_roundtrip_preserves_content_and_seq() {
        let dir = tmpdir("rt");
        let mut db = Database::default();
        db.add_fact("r", &["a", "b"]);
        db.add_fact("r", &["b", "c"]);
        db.add_fact("s", &["weird value", "has (parens)."]);
        db.insert_tuple("r", &["c", "d"]).unwrap();
        let fp = db.fingerprint();
        write_snapshot(&dir, &db, 3, || {}).unwrap();
        let rec = recover_db(&dir).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.epoch, 3);
        assert_eq!(rec.db.mutation_seq(), 1);
        assert_eq!(rec.db.fingerprint(), fp);
        assert_eq!(rec.replayed, 0);
        assert!(!rec.corrupt && !rec.torn);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous_generation() {
        let dir = tmpdir("fallback");
        let mut db = Database::default();
        db.add_fact("r", &["a", "b"]);
        write_snapshot(&dir, &db, 1, || {}).unwrap();
        let old_fp = db.fingerprint();
        db.insert_tuple("r", &["b", "c"]).unwrap();
        write_snapshot(&dir, &db, 1, || {}).unwrap();
        // Mangle the newest snapshot.
        let newest = snapshot_files(&dir).pop().unwrap();
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&newest, &bytes).unwrap();
        let rec = recover_db(&dir).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.snapshots_skipped, 1);
        assert_eq!(rec.db.fingerprint(), old_fp);
        fs::remove_dir_all(&dir).ok();
    }

    /// Writes a previous-generation (`CQSNAP1`) snapshot file, as an
    /// upgraded-in-place daemon would find on disk.
    fn write_legacy_snapshot(db_dir: &Path, db: &Database, epoch: u64) {
        use crate::protocol::{write_str, write_uleb};
        let seq = db.mutation_seq();
        let mut rels: Vec<_> = db.relations().collect();
        rels.sort_by_key(|(name, _)| name.to_owned());
        let mut body = Vec::new();
        write_uleb(&mut body, epoch);
        write_uleb(&mut body, seq);
        write_uleb(&mut body, rels.len() as u64);
        let interner = db.interner();
        for (name, rel) in rels {
            write_str(&mut body, name);
            write_uleb(&mut body, rel.arity() as u64);
            write_uleb(&mut body, rel.len() as u64);
            for tuple in rel.iter() {
                for &v in tuple.iter() {
                    write_str(&mut body, interner.name(v));
                }
            }
        }
        let mut bytes = LEGACY_MAGIC.to_vec();
        bytes.extend_from_slice(&body);
        bytes.extend_from_slice(&crc32(&body).to_le_bytes());
        fs::write(db_dir.join(snap_file_name(epoch, seq)), bytes).unwrap();
    }

    #[test]
    fn legacy_snapshots_still_recover() {
        let dir = tmpdir("legacy");
        let mut db = Database::default();
        db.add_fact("r", &["a", "b"]);
        db.add_fact("s", &["weird value", "has (parens)."]);
        db.insert_tuple("r", &["b", "c"]).unwrap();
        write_legacy_snapshot(&dir, &db, 7);
        let rec = recover_db(&dir).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.epoch, 7);
        assert_eq!(rec.db.mutation_seq(), 1);
        assert_eq!(rec.db.fingerprint(), db.fingerprint());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_relations_sit_on_the_snapshot_pages() {
        let dir = tmpdir("frozen");
        let mut db = Database::default();
        db.add_fact("r", &["a", "b"]);
        db.add_fact("r", &["b", "c"]);
        write_snapshot(&dir, &db, 1, || {}).unwrap();
        let rec = recover_db(&dir).unwrap();
        let r = rec.db.relation("r").unwrap();
        assert!(r.is_frozen(), "recovery must not copy pages into the heap");
        assert!(rec.db.resident_bytes() + rec.db.mapped_bytes() > 0);
        // A replayed mutation thaws the touched relation, nothing else.
        let mut db2 = rec.db;
        db2.insert_tuple("r", &["c", "d"]).unwrap();
        assert!(!db2.relation("r").unwrap().is_frozen());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn db_dir_encoding_roundtrips() {
        for name in ["main", "a b", "Ω/δ", "..", "%", "mixed_OK-9 %2F"] {
            let enc = encode_db_dir(name);
            assert!(enc
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'));
            assert_eq!(decode_db_dir(&enc).as_deref(), Some(name));
        }
        assert_eq!(decode_db_dir("has space"), None);
        assert_eq!(decode_db_dir("bad%zz"), None);
    }
}
