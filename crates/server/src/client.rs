//! Clients for the daemon: the blocking [`Client`] (one request in flight,
//! v4 frames) used by `cqcount-cli`, the e2e tests, and the throughput
//! bench, and the [`PipelinedClient`] (protocol v5, many requests in
//! flight on one connection, responses matched by request id).
//!
//! Resilience: [`ClientOptions`] adds connect/IO deadlines (a dead daemon
//! can no longer hang the caller forever) and a retry loop with
//! exponential backoff + seeded jitter for the idempotent opcodes —
//! `COUNT`, `STATS`, and `WIDTH_REPORT` are safe to repeat because the
//! server's caches are keyed by epoch, so a retry can only re-read. An
//! `Overloaded` reply's `retry_after_ms` hint stretches the backoff.
//! The pipelined client carries no retry loop: a window of in-flight
//! requests is not blindly repeatable, so transport errors surface to the
//! caller, who decides what to resubmit. Mutations (`INSERT`/`DELETE`/
//! `MUTATE`, protocol v6) are likewise never retried — a landed-but-lost
//! reply makes a blind retry report `changed == 0`, indistinguishable
//! from a genuine duplicate.

use crate::protocol::{
    read_frame, CacheTier, ErrorCode, FlightReply, HistoryReply, MutationOp, ProfileReply,
    ReportReply, Request, Response, StatsReply, V5, V8,
};
use cqcount_arith::prng::Rng;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// What went wrong on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with an error frame.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// Server backoff hint in milliseconds (0 = none); set on
        /// `Overloaded`.
        retry_after_ms: u64,
    },
    /// The server answered with a frame the client cannot interpret (wrong
    /// type for the request, or undecodable).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server { code, message, .. } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Is a retry worth attempting? Transport and protocol failures may have
/// eaten a reply to a request that actually succeeded — which is exactly
/// why only idempotent opcodes go through the retry loop. Server-side
/// errors retry only when the condition is transient.
fn retryable(e: &ClientError) -> bool {
    match e {
        ClientError::Io(_) | ClientError::Protocol(_) => true,
        ClientError::Server { code, .. } => matches!(
            code,
            ErrorCode::Overloaded | ErrorCode::Internal | ErrorCode::Protocol
        ),
    }
}

/// A successful count with its provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountReply {
    /// The exact count, as a decimal string.
    pub value: String,
    /// The plan label the server reported.
    pub plan: String,
    /// Which cache level served it.
    pub cached: CacheTier,
    /// True when the server fell back to a cheaper plan because planning
    /// blew its budget (the count is still exact).
    pub degraded: bool,
    /// The query's canonical 64-bit fingerprint.
    pub fingerprint: u64,
}

/// What a mutation accomplished (protocol v6 `MUTATED` reply).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MutationReceipt {
    /// Effective ops: tuples actually added or removed. A duplicate
    /// insert or an absent delete counts zero.
    pub changed: u64,
    /// The database's mutation sequence after the batch — monotonic per
    /// database, bumped once per effective op, reset by `RELOAD`.
    pub mutation_seq: u64,
}

/// What a `SYNC` made durable (protocol v7 `SYNCED` reply).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyncReceipt {
    /// The database's current epoch.
    pub epoch: u64,
    /// The database's mutation sequence at the sync point.
    pub mutation_seq: u64,
    /// Highest mutation sequence the server guarantees is on disk (`0`
    /// when the server runs without `--data-dir`).
    pub durable_seq: u64,
}

/// Client tunables; [`ClientOptions::default`] matches the pre-retry
/// behavior except that I/O now times out instead of hanging forever.
#[derive(Clone, Debug)]
pub struct ClientOptions {
    /// Connect deadline in milliseconds (0 = OS default).
    pub connect_timeout_ms: u64,
    /// Read/write deadline per syscall in milliseconds (0 = none).
    pub io_timeout_ms: u64,
    /// Extra attempts for idempotent requests after the first fails.
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt (capped).
    pub backoff_base_ms: u64,
    /// Seed for backoff jitter, so tests can replay retry schedules.
    pub retry_seed: u64,
}

impl Default for ClientOptions {
    fn default() -> ClientOptions {
        ClientOptions {
            connect_timeout_ms: 5_000,
            io_timeout_ms: 30_000,
            retries: 0,
            backoff_base_ms: 50,
            retry_seed: 0x5EED,
        }
    }
}

/// Longest single backoff sleep, hint or not.
const BACKOFF_CAP_MS: u64 = 2_000;

struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// A blocking connection to a `cqcountd`. One request in flight at a time;
/// reconnects transparently when a retry follows a transport error.
pub struct Client {
    addrs: Vec<SocketAddr>,
    options: ClientOptions,
    jitter: Rng,
    conn: Option<Conn>,
}

impl Client {
    /// Connects to the daemon with default options.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Client::connect_with(addr, ClientOptions::default())
    }

    /// Connects with explicit deadlines and retry policy.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        options: ClientOptions,
    ) -> Result<Client, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )));
        }
        let jitter = Rng::seed_from_u64(options.retry_seed);
        let mut client = Client {
            addrs,
            options,
            jitter,
            conn: None,
        };
        client.ensure_connected()?; // surface connect errors eagerly
        Ok(client)
    }

    fn ensure_connected(&mut self) -> Result<(), ClientError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut last: Option<io::Error> = None;
        for addr in &self.addrs {
            let attempt = if self.options.connect_timeout_ms > 0 {
                TcpStream::connect_timeout(
                    addr,
                    Duration::from_millis(self.options.connect_timeout_ms),
                )
            } else {
                TcpStream::connect(addr)
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    let io_timeout = (self.options.io_timeout_ms > 0)
                        .then(|| Duration::from_millis(self.options.io_timeout_ms));
                    stream.set_read_timeout(io_timeout)?;
                    stream.set_write_timeout(io_timeout)?;
                    let reader = BufReader::new(stream.try_clone()?);
                    self.conn = Some(Conn {
                        reader,
                        writer: BufWriter::new(stream),
                    });
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "no address to connect to")
        })))
    }

    /// One request/response exchange on the current connection. Transport
    /// failures poison the connection so the next attempt redials.
    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.roundtrip_at(crate::protocol::V4, req)
    }

    /// [`roundtrip`](Client::roundtrip) with an explicit frame version —
    /// the forensics opcodes (`HISTORY`/`FLIGHT`) ship in v8 headers, the
    /// rest stay on the blocking client's v4 framing.
    fn roundtrip_at(&mut self, version: u8, req: &Request) -> Result<Response, ClientError> {
        self.ensure_connected()?;
        let result = (|| {
            let conn = self.conn.as_mut().expect("just connected");
            conn.writer.write_all(&req.encode(version, 0))?;
            conn.writer.flush()?;
            let frame = read_frame(&mut conn.reader)?
                .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
            Response::decode(&frame).map_err(ClientError::Protocol)
        })();
        match result {
            Ok(Response::Error {
                code,
                message,
                retry_after_ms,
            }) => Err(ClientError::Server {
                code,
                message,
                retry_after_ms,
            }),
            Ok(resp) => Ok(resp),
            Err(e) => {
                // A half-finished exchange leaves the stream mid-frame:
                // drop it so a retry starts on a fresh connection.
                self.conn = None;
                Err(e)
            }
        }
    }

    /// The retry loop for idempotent requests: exponential backoff with
    /// seeded jitter, stretched to any server `retry_after_ms` hint.
    fn roundtrip_idempotent(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.roundtrip_idempotent_at(crate::protocol::V4, req)
    }

    fn roundtrip_idempotent_at(
        &mut self,
        version: u8,
        req: &Request,
    ) -> Result<Response, ClientError> {
        let mut attempt: u32 = 0;
        loop {
            match self.roundtrip_at(version, req) {
                Err(e) if attempt < self.options.retries && retryable(&e) => {
                    let hint = match &e {
                        ClientError::Server { retry_after_ms, .. } => *retry_after_ms,
                        _ => 0,
                    };
                    let base = self.options.backoff_base_ms.max(1);
                    let exp = base
                        .saturating_mul(1 << attempt.min(16))
                        .min(BACKOFF_CAP_MS);
                    let jittered = exp + self.jitter.below(base);
                    let wait = jittered.max(hint).min(BACKOFF_CAP_MS.max(hint));
                    std::thread::sleep(Duration::from_millis(wait));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Counts `query` over the named database. `budget_ms == 0` uses the
    /// server default. Idempotent: retried per [`ClientOptions::retries`].
    pub fn count(
        &mut self,
        db: &str,
        query: &str,
        budget_ms: u64,
    ) -> Result<CountReply, ClientError> {
        match self.roundtrip_idempotent(&Request::Count {
            db: db.into(),
            query: query.into(),
            budget_ms,
        })? {
            Response::Count {
                value,
                plan,
                cached,
                degraded,
                fingerprint,
            } => Ok(CountReply {
                value,
                plan,
                cached,
                degraded,
                fingerprint,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected a count response, got {other:?}"
            ))),
        }
    }

    /// Fetches up to `limit` answers. Returns `(rows, truncated)`. Not
    /// retried: a large row stream is not worth repeating blindly.
    pub fn enumerate(
        &mut self,
        db: &str,
        query: &str,
        limit: u64,
        budget_ms: u64,
    ) -> Result<(Vec<Vec<String>>, bool), ClientError> {
        match self.roundtrip(&Request::Enumerate {
            db: db.into(),
            query: query.into(),
            limit,
            budget_ms,
        })? {
            Response::Rows { rows, truncated } => Ok((rows, truncated)),
            other => Err(ClientError::Protocol(format!(
                "expected rows, got {other:?}"
            ))),
        }
    }

    /// Structural width report. `cap == 0` uses the server default.
    /// Idempotent: retried per [`ClientOptions::retries`].
    pub fn width_report(&mut self, query: &str, cap: u64) -> Result<ReportReply, ClientError> {
        match self.roundtrip_idempotent(&Request::WidthReport {
            query: query.into(),
            cap,
        })? {
            Response::Report(r) => Ok(r),
            other => Err(ClientError::Protocol(format!(
                "expected a report, got {other:?}"
            ))),
        }
    }

    /// Counts `query` under tracing and returns the span tree alongside
    /// the count (protocol v3 `PROFILE`). Idempotent like `count`: a retry
    /// can only re-read, so it goes through the backoff loop.
    pub fn profile(
        &mut self,
        db: &str,
        query: &str,
        budget_ms: u64,
    ) -> Result<ProfileReply, ClientError> {
        match self.roundtrip_idempotent(&Request::Profile {
            db: db.into(),
            query: query.into(),
            budget_ms,
        })? {
            Response::Profile(r) => Ok(r),
            other => Err(ClientError::Protocol(format!(
                "expected a profile response, got {other:?}"
            ))),
        }
    }

    /// The server's metrics registry in Prometheus text exposition format
    /// (protocol v3 `METRICS`). Idempotent: retried per
    /// [`ClientOptions::retries`].
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.roundtrip_idempotent(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(ClientError::Protocol(format!(
                "expected metrics text, got {other:?}"
            ))),
        }
    }

    /// Server counters. Idempotent: retried per [`ClientOptions::retries`].
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.roundtrip_idempotent(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Replaces (or installs) a database from datalog facts; returns the
    /// new epoch. Not retried: a reload bumps the epoch, so repeating it
    /// is observable.
    pub fn reload(&mut self, db: &str, text: &str) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Reload {
            db: db.into(),
            text: text.into(),
        })? {
            Response::Ok { epoch } => Ok(epoch),
            other => Err(ClientError::Protocol(format!(
                "expected an ack, got {other:?}"
            ))),
        }
    }

    /// Inserts one tuple into a loaded database (protocol v6). Returns
    /// the mutation receipt. Not retried: the opcode is not idempotent to
    /// repeat blindly — if the first attempt landed but its reply was
    /// lost, a blind retry reports `changed == 0` and the caller cannot
    /// tell a duplicate from a no-op. Callers who need at-least-once
    /// delivery should compare `mutation_seq` against a prior
    /// [`stats`](Client::stats) observation instead.
    pub fn insert(
        &mut self,
        db: &str,
        rel: &str,
        values: &[&str],
    ) -> Result<MutationReceipt, ClientError> {
        self.mutation_roundtrip(&Request::Insert {
            db: db.into(),
            rel: rel.into(),
            values: values.iter().map(|v| (*v).to_owned()).collect(),
        })
    }

    /// Deletes one tuple from a loaded database (protocol v6). Deleting
    /// an absent tuple is not an error: the receipt reports
    /// `changed == 0`. Not retried, for the same reason as
    /// [`insert`](Client::insert).
    pub fn delete(
        &mut self,
        db: &str,
        rel: &str,
        values: &[&str],
    ) -> Result<MutationReceipt, ClientError> {
        self.mutation_roundtrip(&Request::Delete {
            db: db.into(),
            rel: rel.into(),
            values: values.iter().map(|v| (*v).to_owned()).collect(),
        })
    }

    /// Applies a batch of mutations in order (protocol v6 `MUTATE`). Ops
    /// up to the first failure stay applied — the server names the
    /// offending op in its error. Not retried: resubmitting a batch whose
    /// prefix already landed double-applies nothing (inserts and deletes
    /// are set operations) but skews `changed`, so the decision belongs
    /// to the caller.
    pub fn mutate(
        &mut self,
        db: &str,
        ops: Vec<MutationOp>,
    ) -> Result<MutationReceipt, ClientError> {
        self.mutation_roundtrip(&Request::Mutate { db: db.into(), ops })
    }

    fn mutation_roundtrip(&mut self, req: &Request) -> Result<MutationReceipt, ClientError> {
        match self.roundtrip(req)? {
            Response::Mutated {
                changed,
                mutation_seq,
            } => Ok(MutationReceipt {
                changed,
                mutation_seq,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected a mutation receipt, got {other:?}"
            ))),
        }
    }

    /// Forces an fsync + snapshot cycle (protocol v7 `SYNC`); on return,
    /// every mutation up to `durable_seq` survives a crash. Idempotent —
    /// syncing twice is just slower — so it goes through the retry loop.
    pub fn sync(&mut self, db: &str) -> Result<SyncReceipt, ClientError> {
        match self.roundtrip_idempotent(&Request::Sync { db: db.into() })? {
            Response::Synced {
                epoch,
                mutation_seq,
                durable_seq,
            } => Ok(SyncReceipt {
                epoch,
                mutation_seq,
                durable_seq,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected a sync receipt, got {other:?}"
            ))),
        }
    }

    /// Fetches metrics-history samples with `seq > since_seq`, at most
    /// `limit` (0 = the server's cap), oldest first (protocol v8
    /// `HISTORY`). Pass the reply's `next_seq - 1` back as `since_seq`
    /// for gap-free incremental polling. Idempotent: retried per
    /// [`ClientOptions::retries`].
    pub fn history(&mut self, since_seq: u64, limit: u64) -> Result<HistoryReply, ClientError> {
        match self.roundtrip_idempotent_at(V8, &Request::History { since_seq, limit })? {
            Response::History(h) => Ok(h),
            other => Err(ClientError::Protocol(format!(
                "expected a history reply, got {other:?}"
            ))),
        }
    }

    /// Fetches the flight recorder's retained traces and incidents, at
    /// most `limit` of each (0 = the server's caps), oldest first
    /// (protocol v8 `FLIGHT`). Idempotent: retried per
    /// [`ClientOptions::retries`].
    pub fn flight(&mut self, limit: u64) -> Result<FlightReply, ClientError> {
        match self.roundtrip_idempotent_at(V8, &Request::Flight { limit })? {
            Response::Flight(f) => Ok(f),
            other => Err(ClientError::Protocol(format!(
                "expected a flight reply, got {other:?}"
            ))),
        }
    }

    /// Drops both cache levels. Not retried (admin op).
    pub fn flush(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Flush)? {
            Response::Ok { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected an ack, got {other:?}"
            ))),
        }
    }
}

/// A protocol-v5 client that keeps many requests in flight on one
/// connection.
///
/// [`submit`](PipelinedClient::submit) assigns the request a fresh id and
/// buffers its frame; [`flush`](PipelinedClient::flush) pushes the batch
/// onto the wire; [`recv`](PipelinedClient::recv) returns the next
/// response *in the order the server finished them* together with the id
/// it answers. Responses for cache-warm counts can overtake colder work
/// submitted before them — match on the id, never on arrival order.
///
/// Server-side failures (`Overloaded`, budget exhaustion, bad queries)
/// come back as ordinary [`Response::Error`] values so the caller can
/// attribute them to the request that caused them; only transport-level
/// problems surface as [`ClientError`].
pub struct PipelinedClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    inflight: usize,
}

impl PipelinedClient {
    /// Connects with default options.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<PipelinedClient, ClientError> {
        PipelinedClient::connect_with(addr, ClientOptions::default())
    }

    /// Connects with explicit deadlines. The retry fields of
    /// [`ClientOptions`] are ignored: a pipelined window is not blindly
    /// repeatable.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        options: ClientOptions,
    ) -> Result<PipelinedClient, ClientError> {
        let mut last: Option<io::Error> = None;
        for addr in addr.to_socket_addrs()? {
            let attempt = if options.connect_timeout_ms > 0 {
                TcpStream::connect_timeout(&addr, Duration::from_millis(options.connect_timeout_ms))
            } else {
                TcpStream::connect(addr)
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    let io_timeout = (options.io_timeout_ms > 0)
                        .then(|| Duration::from_millis(options.io_timeout_ms));
                    stream.set_read_timeout(io_timeout)?;
                    stream.set_write_timeout(io_timeout)?;
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(PipelinedClient {
                        reader,
                        writer: BufWriter::new(stream),
                        next_id: 1,
                        inflight: 0,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::NotConnected, "address resolved to nothing")
        })))
    }

    /// Buffers one request and returns the id its response will carry.
    /// Call [`flush`](PipelinedClient::flush) (or [`recv`]
    /// (PipelinedClient::recv), which flushes first) to put it on the wire.
    pub fn submit(&mut self, req: &Request) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(&req.encode(V5, id))?;
        self.inflight += 1;
        Ok(id)
    }

    /// Flushes every buffered request onto the socket.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Requests submitted but not yet answered by a [`recv`]
    /// (PipelinedClient::recv).
    pub fn inflight(&self) -> usize {
        self.inflight
    }

    /// Receives the next completed response as `(request id, response)`.
    /// Flushes pending writes first so a bare submit/recv loop cannot
    /// deadlock.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        self.flush()?;
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        let response = Response::decode(&frame).map_err(ClientError::Protocol)?;
        self.inflight = self.inflight.saturating_sub(1);
        Ok((frame.req_id, response))
    }
}
