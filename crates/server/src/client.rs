//! A small blocking client for the daemon — used by `cqcount-cli`, the
//! e2e tests, and the throughput bench.

use crate::protocol::{
    read_frame, CacheTier, ErrorCode, ReportReply, Request, Response, StatsReply,
};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// What went wrong on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server answered with an error frame.
    Server {
        /// Machine-readable category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a frame the client cannot interpret (wrong
    /// type for the request, or undecodable).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A successful count with its provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountReply {
    /// The exact count, as a decimal string.
    pub value: String,
    /// The plan label the server reported.
    pub plan: String,
    /// Which cache level served it.
    pub cached: CacheTier,
    /// The query's canonical 64-bit fingerprint.
    pub fingerprint: u64,
}

/// A blocking connection to a `cqcountd`. One request in flight at a time.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to the daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    fn roundtrip(&mut self, req: &Request) -> Result<Response, ClientError> {
        req.write_to(&mut self.writer)?;
        let frame = read_frame(&mut self.reader)?
            .ok_or_else(|| ClientError::Protocol("server closed the connection".into()))?;
        let resp = Response::decode(&frame).map_err(ClientError::Protocol)?;
        if let Response::Error { code, message } = resp {
            return Err(ClientError::Server { code, message });
        }
        Ok(resp)
    }

    /// Counts `query` over the named database. `budget_ms == 0` uses the
    /// server default.
    pub fn count(
        &mut self,
        db: &str,
        query: &str,
        budget_ms: u64,
    ) -> Result<CountReply, ClientError> {
        match self.roundtrip(&Request::Count {
            db: db.into(),
            query: query.into(),
            budget_ms,
        })? {
            Response::Count {
                value,
                plan,
                cached,
                fingerprint,
            } => Ok(CountReply {
                value,
                plan,
                cached,
                fingerprint,
            }),
            other => Err(ClientError::Protocol(format!(
                "expected a count response, got {other:?}"
            ))),
        }
    }

    /// Fetches up to `limit` answers. Returns `(rows, truncated)`.
    pub fn enumerate(
        &mut self,
        db: &str,
        query: &str,
        limit: u64,
        budget_ms: u64,
    ) -> Result<(Vec<Vec<String>>, bool), ClientError> {
        match self.roundtrip(&Request::Enumerate {
            db: db.into(),
            query: query.into(),
            limit,
            budget_ms,
        })? {
            Response::Rows { rows, truncated } => Ok((rows, truncated)),
            other => Err(ClientError::Protocol(format!(
                "expected rows, got {other:?}"
            ))),
        }
    }

    /// Structural width report. `cap == 0` uses the server default.
    pub fn width_report(&mut self, query: &str, cap: u64) -> Result<ReportReply, ClientError> {
        match self.roundtrip(&Request::WidthReport {
            query: query.into(),
            cap,
        })? {
            Response::Report(r) => Ok(r),
            other => Err(ClientError::Protocol(format!(
                "expected a report, got {other:?}"
            ))),
        }
    }

    /// Server counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(ClientError::Protocol(format!(
                "expected stats, got {other:?}"
            ))),
        }
    }

    /// Replaces (or installs) a database from datalog facts; returns the
    /// new epoch.
    pub fn reload(&mut self, db: &str, text: &str) -> Result<u64, ClientError> {
        match self.roundtrip(&Request::Reload {
            db: db.into(),
            text: text.into(),
        })? {
            Response::Ok { epoch } => Ok(epoch),
            other => Err(ClientError::Protocol(format!(
                "expected an ack, got {other:?}"
            ))),
        }
    }

    /// Drops both cache levels.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Flush)? {
            Response::Ok { .. } => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected an ack, got {other:?}"
            ))),
        }
    }
}
