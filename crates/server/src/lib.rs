//! `cqcount-server`: a counting query service over the paper's algorithms.
//!
//! The workspace's algorithm crates answer *one* question at a time; this
//! crate turns them into a long-running daemon (`cqcountd`) that serves
//! many clients over TCP with a small binary protocol ([`protocol`]) and
//! stays predictable under load:
//!
//! * **two-level caching** ([`cache`]) — prepared plans keyed on the
//!   canonical query fingerprint (level 1, survives data reloads) and
//!   exact counts keyed on (query, database, epoch) (level 2, invalidated
//!   by `RELOAD`'s epoch bump);
//! * **admission control** ([`server`]) — a bounded request queue that
//!   answers `Overloaded` instead of buffering, plus a per-request
//!   wall-clock budget enforced cooperatively inside the counting loops;
//! * **an evented front end** ([`reactor`]) — `poll(2)`-driven reactor
//!   shards over non-blocking sockets with incremental frame decode, so
//!   clients can pipeline requests (protocol v5 request ids); warm-hit
//!   counting requests are answered inline on the reactor thread without
//!   a queue round-trip;
//! * **typed clients** ([`client`]) — the blocking API used by
//!   `cqcount-cli`, the e2e tests, and the throughput bench, with
//!   deadlines and retry/backoff for the idempotent opcodes, plus a
//!   pipelined v5 client ([`client::PipelinedClient`]) that keeps many
//!   requests in flight on one connection;
//! * **incremental count maintenance** ([`mutation`]) — protocol v6
//!   `INSERT`/`DELETE`/`MUTATE` opcodes edit a loaded database in place;
//!   materialized join-tree counts (`cqcount-delta`) are patched along
//!   the mutated tuple's bag path instead of recounted, and the count
//!   cache is invalidated surgically (only entries whose query mentions a
//!   touched relation), never epoch-wide;
//! * **durability** ([`durable`]) — protocol v7: with `--data-dir` every
//!   effective mutation batch is appended to a checksummed write-ahead
//!   log before it is acknowledged (fsync policy per `--durability`),
//!   snapshots bound replay, and startup recovers the newest valid
//!   snapshot plus the WAL tail — truncating torn or corrupt tails
//!   cleanly; a durability I/O failure degrades the database to
//!   read-only while counts keep serving;
//! * **deterministic fault injection** ([`faults`]) — seeded chaos
//!   (short I/O, disconnects, latency, worker panics, cap trips) so every
//!   hardening path above is testable and replayable;
//! * **end-to-end observability** (protocol v3) — every operational
//!   counter lives on a `cqcount-obs` metrics registry exported by the
//!   `METRICS` opcode in Prometheus text format, `PROFILE` returns the
//!   full span tree of a traced count, and `--trace-log FILE` streams one
//!   JSON line per counting request;
//! * **after-the-fact forensics** (protocol v8) — a flight recorder
//!   speculatively traces every worker request and retains the span
//!   trees of the interesting ones (slow against a self-calibrating
//!   per-opcode p99 threshold, errored, degraded, delta-faulted,
//!   read-only refusals) in a bounded ring served by the `FLIGHT`
//!   opcode; a metrics-history ring samples every registered series on
//!   an interval (`HISTORY`); and a stall watchdog heartbeats every
//!   reactor shard and pool worker, flagging wedged threads as gauges,
//!   `STATS` counters, and recorder incidents.
//!
//! Everything is `std`-only, like the rest of the workspace.

pub mod cache;
pub mod client;
pub mod durable;
pub mod faults;
pub mod mutation;
pub mod protocol;
mod reactor;
pub mod server;
mod snapshot;
mod wal;

pub use client::{
    Client, ClientError, ClientOptions, CountReply, MutationReceipt, PipelinedClient, SyncReceipt,
};
pub use durable::DurabilityPolicy;
pub use faults::{CrashPlan, CrashPoint, FaultEvent, FaultInjector, FaultKind, FaultProfile};
pub use protocol::{
    CacheTier, ErrorCode, FlightIncident, FlightReply, FlightTrace, HistoryReply,
    HistorySampleReply, MutationOp, ProfileReply, ReportReply, Request, Response, SpanNode,
    StatsReply,
};
pub use server::{serve, ServerConfig, ServerHandle};
