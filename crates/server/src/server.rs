//! The daemon: TCP accept loop, admission control, worker pool, caches.
//!
//! Threading model (std-only):
//!
//! * one **accept** thread owns the listener and spawns a reader thread
//!   per connection;
//! * each **connection** thread decodes frames; admin requests (`STATS`,
//!   `RELOAD`, `FLUSH`, `METRICS`) are answered inline so operators can
//!   observe and heal an overloaded server, while counting work (`COUNT`,
//!   `ENUMERATE`, `WIDTH_REPORT`, `PROFILE`) is pushed onto a *bounded*
//!   queue — a full queue yields an immediate `Overloaded` error frame,
//!   never buffering;
//! * `workers` **worker** threads pop jobs, run them under the request's
//!   wall-clock [`Budget`], and send the response back to the connection
//!   thread over a per-job channel. Worker panics are caught, counted, and
//!   reported as `Internal` errors — a malformed request cannot take the
//!   daemon down.
//!
//! Resilience (PR 3): connections carry read/write deadlines and idle
//! peers are reaped; `Overloaded` errors carry a `retry_after_ms` hint;
//! when decomposition planning blows its budget the count *degrades* to a
//! cheaper exact plan instead of erroring (`degraded: true` in the reply);
//! and the whole stack can be wrapped in a seeded [`FaultInjector`]
//! (`--fault-profile`) for replayable chaos runs.
//!
//! Observability (PR 4): every operational counter lives on a
//! [`cqcount_obs::Registry`] exported verbatim by the `METRICS` opcode
//! (the v2 `STATS` reply reads the same counters, so the two can never
//! disagree); `PROFILE` runs a count under an active trace session and
//! returns the request's span tree — root span `request` on the worker,
//! with the planner, kernel, and pool spans attached under it; and
//! `--trace-log FILE` streams one JSON line per counting request with the
//! same tree, for offline analysis.

use crate::cache::{CountCache, PlanCache, PlanEntry};
use crate::faults::{ConnFaults, FaultEvent, FaultInjector, JobFaults};
use crate::protocol::{
    read_frame, CacheTier, DbSummary, ErrorCode, Frame, ProfileReply, ReportReply, Request,
    Response, SpanNode, StatsReply, MAX_SPAN_DEPTH, MAX_SPAN_FIELDS, MAX_SPAN_NODES,
};
use cqcount_core::planner::{
    count_prepared_resilient, prepare_plan_budgeted, WidthReport, WIDTH_CAP,
};
use cqcount_core::{for_each_answer, Budget, PlanError};
use cqcount_exec::BoundedQueue;
use cqcount_obs::metrics::{Counter, Gauge, Histogram, Registry};
use cqcount_obs::trace;
use cqcount_query::fingerprint::fingerprint;
use cqcount_query::{parse_database, parse_query, ConjunctiveQuery, Var};
use cqcount_relational::Database;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything tunable about a server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port — the tests' mode).
    pub addr: String,
    /// Worker threads executing counting jobs.
    pub workers: usize,
    /// Bounded request-queue capacity; beyond it, `Overloaded`.
    pub queue_cap: usize,
    /// Default per-request wall-clock budget (requests may lower or raise
    /// it; `0` in a request means this default).
    pub default_budget_ms: u64,
    /// Hard cap on rows an `ENUMERATE` may return.
    pub max_enumerate: usize,
    /// Width cap for plan searches and width reports.
    pub width_cap: usize,
    /// Plan-cache capacity (level 1).
    pub plan_cache_cap: usize,
    /// Count-cache capacity (level 2).
    pub count_cache_cap: usize,
    /// Per-connection read deadline in milliseconds (0 = none). A peer
    /// idle past this is reaped — the connection closes without a reply.
    pub read_timeout_ms: u64,
    /// Per-connection write deadline in milliseconds (0 = none); protects
    /// workers from clients that stop draining their socket.
    pub write_timeout_ms: u64,
    /// The `retry_after_ms` hint attached to `Overloaded` errors.
    pub overload_retry_after_ms: u64,
    /// Wall-clock budget for *planning* (the decomposition search).
    /// `None` shares the request budget; `Some(ms)` gives planning its own
    /// slice (`Some(0)` forces immediate degradation — the chaos tests'
    /// deterministic trigger).
    pub plan_budget_ms: Option<u64>,
    /// Fault-injection profile (default [`crate::faults::FaultProfile::off`]).
    pub fault_profile: crate::faults::FaultProfile,
    /// Seed for the fault injector (`CQCOUNT_FAULT_SEED`).
    pub fault_seed: u64,
    /// When set, every counting request is traced and its span tree is
    /// appended to this file as one JSON line (`--trace-log`).
    pub trace_log: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            default_budget_ms: 10_000,
            max_enumerate: 10_000,
            width_cap: WIDTH_CAP,
            plan_cache_cap: 1024,
            count_cache_cap: 4096,
            read_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            overload_retry_after_ms: 100,
            plan_budget_ms: None,
            fault_profile: crate::faults::FaultProfile::off(),
            fault_seed: 0,
            trace_log: None,
        }
    }
}

/// A loaded database at a specific epoch. Immutable once installed —
/// `RELOAD` swaps in a fresh `Arc`, so in-flight counts keep their
/// snapshot.
#[derive(Debug)]
pub struct DbState {
    /// The instance.
    pub db: Database,
    /// Bumped by every reload; part of the count-cache key.
    pub epoch: u64,
    /// Content fingerprint (observability only — correctness comes from
    /// the epoch).
    pub fingerprint: u64,
}

/// Request-latency buckets in microseconds: sub-millisecond cache hits up
/// through multi-second decomposition searches.
const LATENCY_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000, 30_000_000,
];

/// Reply-write buckets in microseconds (small frames unless `ENUMERATE` or
/// `PROFILE` streams a large payload to a slow peer).
const WRITE_BUCKETS_US: &[u64] = &[10, 50, 100, 500, 1_000, 10_000, 100_000, 1_000_000];

/// Every exported metric, pre-registered so the hot path is handle
/// dereferences only. The v2 `STATS` reply is a *view* over these same
/// counters ([`Shared::stats`]), not parallel bookkeeping.
struct Metrics {
    registry: Registry,
    /// Requests fully served (reply written; errors excluded only when the
    /// request never produced a reply).
    served: Counter,
    // Per-opcode admission counters (`cqcount_requests_total{op=...}`).
    req_count: Counter,
    req_enumerate: Counter,
    req_width_report: Counter,
    req_stats: Counter,
    req_reload: Counter,
    req_flush: Counter,
    req_profile: Counter,
    req_metrics: Counter,
    // Per-ErrorCode outcome counters (`cqcount_errors_total{code=...}`).
    err_protocol: Counter,
    err_parse: Counter,
    err_unknown_db: Counter,
    err_plan: Counter,
    err_budget_exceeded: Counter,
    err_overloaded: Counter,
    err_internal: Counter,
    degraded: Counter,
    panicked: Counter,
    reaped: Counter,
    queue_depth: Gauge,
    latency_us: Histogram,
    reply_write_us: Histogram,
    // Cache counters, shared with the caches themselves (the handles the
    // caches increment are the ones the registry renders).
    plan_hits: Counter,
    plan_misses: Counter,
    plan_evictions: Counter,
    count_hits: Counter,
    count_misses: Counter,
    count_evictions: Counter,
    faults_injected: Gauge,
}

impl Metrics {
    fn new() -> Metrics {
        let r = Registry::new();
        let req = |op| {
            r.counter_labeled(
                "cqcount_requests_total",
                "Requests admitted, by opcode.",
                "op",
                op,
            )
        };
        let err = |code| {
            r.counter_labeled(
                "cqcount_errors_total",
                "Error replies sent, by error code.",
                "code",
                code,
            )
        };
        let cache = |name, help, which| r.counter_labeled(name, help, "cache", which);
        Metrics {
            served: r.counter(
                "cqcount_requests_served_total",
                "Requests that produced a reply (including error replies).",
            ),
            req_count: req("count"),
            req_enumerate: req("enumerate"),
            req_width_report: req("width_report"),
            req_stats: req("stats"),
            req_reload: req("reload"),
            req_flush: req("flush"),
            req_profile: req("profile"),
            req_metrics: req("metrics"),
            err_protocol: err("protocol"),
            err_parse: err("parse"),
            err_unknown_db: err("unknown_db"),
            err_plan: err("plan"),
            err_budget_exceeded: err("budget_exceeded"),
            err_overloaded: err("overloaded"),
            err_internal: err("internal"),
            degraded: r.counter(
                "cqcount_degraded_total",
                "Counts served by a degraded (fallback) plan.",
            ),
            panicked: r.counter(
                "cqcount_worker_panics_total",
                "Worker panics caught (including injected ones).",
            ),
            reaped: r.counter(
                "cqcount_connections_reaped_total",
                "Connections closed by the idle/stall deadline.",
            ),
            queue_depth: r.gauge(
                "cqcount_queue_depth",
                "Counting jobs waiting in the bounded queue.",
            ),
            latency_us: r.histogram(
                "cqcount_request_latency_us",
                "Request latency from decode to reply-ready, microseconds.",
                LATENCY_BUCKETS_US,
            ),
            reply_write_us: r.histogram(
                "cqcount_reply_write_us",
                "Time spent encoding + writing a reply frame, microseconds.",
                WRITE_BUCKETS_US,
            ),
            plan_hits: cache("cqcount_cache_hits_total", "Cache hits.", "plan"),
            plan_misses: cache("cqcount_cache_misses_total", "Cache misses.", "plan"),
            plan_evictions: cache(
                "cqcount_cache_evictions_total",
                "Entries evicted by the FIFO bound.",
                "plan",
            ),
            count_hits: cache("cqcount_cache_hits_total", "Cache hits.", "count"),
            count_misses: cache("cqcount_cache_misses_total", "Cache misses.", "count"),
            count_evictions: cache(
                "cqcount_cache_evictions_total",
                "Entries evicted by the FIFO bound.",
                "count",
            ),
            faults_injected: r.gauge(
                "cqcount_faults_injected",
                "Faults injected so far (0 when no fault profile is active).",
            ),
            registry: r,
        }
    }

    /// Exposes the process-wide planner search counters on this registry
    /// (shared handles — the decomposition engine increments them
    /// directly, see `cqcount_obs::planner`).
    fn attach_planner_counters(&self) {
        let p = cqcount_obs::planner::counters();
        let events: [(&str, &Counter); 6] = [
            ("blocks_solved", &p.blocks_solved),
            ("memo_hits", &p.memo_hits),
            ("negative_reuse", &p.negative_reuse),
            ("candidates_yielded", &p.candidates_yielded),
            ("universes_opened", &p.universes_opened),
            ("widths_searched", &p.widths_searched),
        ];
        for (event, counter) in events {
            self.registry.attach_counter(
                "cqcount_planner_events_total",
                "Decomposition-search events, by kind (process-wide).",
                Some(("event", event)),
                counter,
            );
        }
    }

    /// The admission counter for a decoded request.
    fn op_counter(&self, r: &Request) -> &Counter {
        match r {
            Request::Count { .. } => &self.req_count,
            Request::Enumerate { .. } => &self.req_enumerate,
            Request::WidthReport { .. } => &self.req_width_report,
            Request::Stats => &self.req_stats,
            Request::Reload { .. } => &self.req_reload,
            Request::Flush => &self.req_flush,
            Request::Profile { .. } => &self.req_profile,
            Request::Metrics => &self.req_metrics,
        }
    }

    /// The outcome counter for an error code.
    fn err_counter(&self, code: ErrorCode) -> &Counter {
        match code {
            ErrorCode::Protocol => &self.err_protocol,
            ErrorCode::Parse => &self.err_parse,
            ErrorCode::UnknownDb => &self.err_unknown_db,
            ErrorCode::Plan => &self.err_plan,
            ErrorCode::BudgetExceeded => &self.err_budget_exceeded,
            ErrorCode::Overloaded => &self.err_overloaded,
            ErrorCode::Internal => &self.err_internal,
        }
    }
}

/// The short opcode label used for span tags and the trace log.
fn op_name(r: &Request) -> &'static str {
    match r {
        Request::Count { .. } => "count",
        Request::Enumerate { .. } => "enumerate",
        Request::WidthReport { .. } => "width_report",
        Request::Stats => "stats",
        Request::Reload { .. } => "reload",
        Request::Flush => "flush",
        Request::Profile { .. } => "profile",
        Request::Metrics => "metrics",
    }
}

struct Shared {
    config: ServerConfig,
    dbs: RwLock<HashMap<String, Arc<DbState>>>,
    plans: PlanCache,
    counts: CountCache,
    metrics: Metrics,
    injector: Option<Arc<FaultInjector>>,
    stop: AtomicBool,
    /// Open trace-log sink (`--trace-log`); workers append one JSON line
    /// per counting request.
    trace_log: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
    /// Monotonic sequence number for trace-log lines.
    trace_seq: AtomicU64,
}

impl Shared {
    /// Updates the per-`ErrorCode` observability counters for an outgoing
    /// response. Called once per response, just before it hits the wire.
    fn account(&self, response: &Response) {
        match response {
            Response::Error { code, .. } => self.metrics.err_counter(*code).inc(),
            Response::Count { degraded: true, .. } => self.metrics.degraded.inc(),
            Response::Profile(r) if r.degraded => self.metrics.degraded.inc(),
            _ => {}
        }
    }

    fn stats(&self) -> StatsReply {
        let (plan_hits, plan_misses) = self.plans.counters();
        let (count_hits, count_misses) = self.counts.counters();
        let planner = cqcount_obs::planner::counters();
        let mut dbs: Vec<DbSummary> = self
            .dbs
            .read()
            .unwrap()
            .iter()
            .map(|(name, st)| DbSummary {
                name: name.clone(),
                epoch: st.epoch,
                fingerprint: st.fingerprint,
                tuples: st.db.total_tuples() as u64,
            })
            .collect();
        dbs.sort_by(|a, b| a.name.cmp(&b.name));
        StatsReply {
            served: self.metrics.served.get(),
            overloaded: self.metrics.err_overloaded.get(),
            plan_hits,
            plan_misses,
            count_hits,
            count_misses,
            malformed: self.metrics.err_protocol.get(),
            budget_exceeded: self.metrics.err_budget_exceeded.get(),
            panicked: self.metrics.panicked.get(),
            reaped: self.metrics.reaped.get(),
            degraded: self.metrics.degraded.get(),
            faults_injected: self.injector.as_ref().map_or(0, |i| i.injected()),
            dbs,
            planner_blocks_solved: planner.blocks_solved.get(),
            planner_memo_hits: planner.memo_hits.get(),
            planner_negative_reuse: planner.negative_reuse.get(),
            planner_candidates: planner.candidates_yielded.get(),
            planner_universes: planner.universes_opened.get(),
            planner_widths_searched: planner.widths_searched.get(),
        }
    }

    /// Renders the metrics registry, refreshing the scrape-time gauges.
    fn render_metrics(&self, queue: &BoundedQueue<Job>) -> String {
        self.metrics.queue_depth.set(queue.len() as u64);
        self.metrics
            .faults_injected
            .set(self.injector.as_ref().map_or(0, |i| i.injected()));
        self.metrics.registry.render()
    }

    fn install_db(&self, name: &str, db: Database) -> u64 {
        let fingerprint = db.fingerprint();
        let mut dbs = self.dbs.write().unwrap();
        let epoch = dbs.get(name).map_or(1, |old| old.epoch + 1);
        dbs.insert(
            name.to_owned(),
            Arc::new(DbState {
                db,
                epoch,
                fingerprint,
            }),
        );
        epoch
    }
}

/// A counting job queued for a worker.
struct Job {
    request: Request,
    reply: mpsc::Sender<Response>,
    /// Faults drawn for this job at admission (default: none).
    faults: JobFaults,
    /// [`trace::now_ns`] at admission, for the root span's `wait_ns`.
    submitted_ns: u64,
    /// Time the connection thread spent decoding the request payload.
    decode_ns: u64,
}

/// A running server. Dropping the handle stops it; [`ServerHandle::shutdown`]
/// does the same explicitly. Shutdown is idempotent and never blocks on the
/// network: the accept loop polls a stop flag over a non-blocking listener,
/// so it winds down even if the listener has already died.
pub struct ServerHandle {
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<Job>>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Installs (or replaces) a database directly, bypassing the protocol.
    pub fn install_db(&self, name: &str, db: Database) -> u64 {
        self.shared.install_db(name, db)
    }

    /// Faults injected so far (0 when no fault profile is active).
    pub fn faults_injected(&self) -> u64 {
        self.shared.injector.as_ref().map_or(0, |i| i.injected())
    }

    /// The fault injector's replayable event log (empty when inactive).
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        self.shared
            .injector
            .as_ref()
            .map_or_else(Vec::new, |i| i.events())
    }

    /// Stops accepting, drains workers, and joins every owned thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Idempotent shutdown core, shared by [`ServerHandle::shutdown`] and
    /// `Drop`. Never blocks on the network: the accept thread notices the
    /// stop flag within its poll interval regardless of traffic, and a
    /// thread that already died joins immediately.
    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.queue.close();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(log) = &self.shared.trace_log {
            let _ = std::io::Write::flush(&mut *log.lock().unwrap());
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Binds, spawns the threads, and returns a handle. `initial` holds the
/// databases served from the start (more can arrive via `RELOAD`).
pub fn serve(
    config: ServerConfig,
    initial: Vec<(String, Database)>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // Non-blocking listener: the accept loop polls the stop flag instead
    // of relying on a wake-up connection, so shutdown works even when the
    // listener is wedged or already dead.
    listener.set_nonblocking(true)?;
    let injector = config
        .fault_profile
        .is_active()
        .then(|| FaultInjector::new(config.fault_profile.clone(), config.fault_seed));
    let trace_log = match &config.trace_log {
        Some(path) => Some(Mutex::new(std::io::BufWriter::new(std::fs::File::create(
            path,
        )?))),
        None => None,
    };
    let metrics = Metrics::new();
    metrics.attach_planner_counters();
    let plans = PlanCache::with_counters(
        config.plan_cache_cap,
        metrics.plan_hits.clone(),
        metrics.plan_misses.clone(),
        metrics.plan_evictions.clone(),
    );
    let counts = CountCache::with_counters(
        config.count_cache_cap,
        metrics.count_hits.clone(),
        metrics.count_misses.clone(),
        metrics.count_evictions.clone(),
    );
    let shared = Arc::new(Shared {
        plans,
        counts,
        metrics,
        dbs: RwLock::new(HashMap::new()),
        injector,
        stop: AtomicBool::new(false),
        trace_log,
        trace_seq: AtomicU64::new(0),
        config,
    });
    for (name, db) in initial {
        shared.install_db(&name, db);
    }
    let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(shared.config.queue_cap));

    let worker_threads: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    shared.metrics.queue_depth.set(queue.len() as u64);
                    let resp = catch_unwind(AssertUnwindSafe(|| {
                        if job.faults.panic {
                            panic!("fault injection: forced worker panic");
                        }
                        execute_job(&shared, &job)
                    }))
                    .unwrap_or_else(|_| {
                        shared.metrics.panicked.inc();
                        Response::Error {
                            code: ErrorCode::Internal,
                            message: "internal error: worker panicked".into(),
                            retry_after_ms: 0,
                        }
                    });
                    let _ = job.reply.send(resp);
                }
            })
        })
        .collect();

    let accept_thread = {
        let queue = Arc::clone(&queue);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
                Err(_) => {
                    // Transient accept errors (EMFILE, aborted handshakes)
                    // should not kill the loop; back off and re-check stop.
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            // Accepted sockets may inherit non-blocking mode; per-stream
            // deadlines come from timeouts, not O_NONBLOCK.
            if stream.set_nonblocking(false).is_err() {
                continue;
            }
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || serve_stream(stream, &shared, &queue));
        })
    };

    Ok(ServerHandle {
        shared,
        queue,
        addr,
        accept_thread: Some(accept_thread),
        worker_threads,
    })
}

/// Applies deadlines and (optionally) the fault injector to an accepted
/// stream, then runs the frame loop over the wrapped halves.
fn serve_stream(stream: TcpStream, shared: &Shared, queue: &BoundedQueue<Job>) {
    let timeout = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
    let _ = stream.set_read_timeout(timeout(shared.config.read_timeout_ms));
    let _ = stream.set_write_timeout(timeout(shared.config.write_timeout_ms));
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    match &shared.injector {
        Some(injector) => {
            let conn = injector.connection();
            serve_connection(
                std::io::BufReader::new(conn.wrap(read_half)),
                std::io::BufWriter::new(conn.wrap(stream)),
                Some(conn),
                shared,
                queue,
            );
        }
        None => serve_connection(
            std::io::BufReader::new(read_half),
            std::io::BufWriter::new(stream),
            None,
            shared,
            queue,
        ),
    }
}

/// Is this I/O error a read/write deadline expiring? (Unix reports
/// `WouldBlock` for socket timeouts, Windows `TimedOut`.)
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn serve_connection<R: Read, W: Write>(
    mut reader: R,
    mut writer: W,
    conn: Option<Arc<ConnFaults>>,
    shared: &Shared,
    queue: &BoundedQueue<Job>,
) {
    loop {
        let frame: Frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean close
            Err(e) if is_timeout(&e) => {
                // Idle or stalled peer: reap the connection. No reply — a
                // peer that stopped talking mid-frame cannot parse one.
                shared.metrics.reaped.inc();
                return;
            }
            Err(e) => {
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("protocol error: {e}"),
                    retry_after_ms: 0,
                };
                shared.account(&resp);
                let _ = resp.write_to(&mut writer);
                return;
            }
        };
        let decode_start = trace::now_ns();
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("protocol error: {e}"),
                    retry_after_ms: 0,
                };
                shared.account(&resp);
                if resp.write_to(&mut writer).is_err() {
                    return;
                }
                continue;
            }
        };
        let decode_ns = trace::now_ns().saturating_sub(decode_start);
        shared.metrics.op_counter(&request).inc();
        let response = match request {
            // Admin requests bypass admission control: they are cheap and
            // must work *especially* when the server is overloaded.
            Request::Stats => {
                shared.metrics.served.inc();
                Response::Stats(shared.stats())
            }
            Request::Metrics => {
                shared.metrics.served.inc();
                Response::Metrics {
                    text: shared.render_metrics(queue),
                }
            }
            Request::Reload { ref db, ref text } => {
                shared.metrics.served.inc();
                match parse_database(text) {
                    Ok(parsed) => Response::Ok {
                        epoch: shared.install_db(db, parsed),
                    },
                    Err(e) => Response::Error {
                        code: ErrorCode::Parse,
                        message: e.to_string(),
                        retry_after_ms: 0,
                    },
                }
            }
            Request::Flush => {
                shared.metrics.served.inc();
                shared.plans.clear();
                shared.counts.clear();
                Response::Ok { epoch: 0 }
            }
            // Counting work goes through the bounded queue. Faults for the
            // job (forced panic / cap trip) are drawn here, at admission,
            // so one lane of the connection's RNG decides them in order.
            other => {
                let (tx, rx) = mpsc::channel();
                let faults = conn.as_ref().map_or_else(JobFaults::default, |c| {
                    if counting_op(&other) {
                        c.job_faults()
                    } else {
                        JobFaults::default()
                    }
                });
                match queue.try_push(Job {
                    request: other,
                    reply: tx,
                    faults,
                    submitted_ns: trace::now_ns(),
                    decode_ns,
                }) {
                    Ok(()) => {
                        shared.metrics.queue_depth.set(queue.len() as u64);
                        match rx.recv() {
                            Ok(resp) => {
                                shared.metrics.served.inc();
                                resp
                            }
                            Err(_) => Response::Error {
                                code: ErrorCode::Internal,
                                message: "internal error: worker dropped the job".into(),
                                retry_after_ms: 0,
                            },
                        }
                    }
                    Err(_) => Response::Error {
                        code: ErrorCode::Overloaded,
                        message: format!(
                            "overloaded: request queue at capacity {}",
                            queue.capacity()
                        ),
                        retry_after_ms: shared.config.overload_retry_after_ms,
                    },
                }
            }
        };
        shared.account(&response);
        shared
            .metrics
            .latency_us
            .observe(trace::now_ns().saturating_sub(decode_start) / 1_000);
        let write_start = trace::now_ns();
        if response.write_to(&mut writer).is_err() {
            return;
        }
        shared
            .metrics
            .reply_write_us
            .observe(trace::now_ns().saturating_sub(write_start) / 1_000);
    }
}

/// Ops that run on workers (as opposed to inline admin ops).
fn counting_op(r: &Request) -> bool {
    matches!(
        r,
        Request::Count { .. }
            | Request::Enumerate { .. }
            | Request::WidthReport { .. }
            | Request::Profile { .. }
    )
}

/// Runs one queued job on a worker, under a `request` root span when a
/// trace consumer exists (a `PROFILE` request or an active `--trace-log`).
///
/// The root opens *on the worker* so the planner/kernel/pool spans nest
/// under it via the thread-local stack; queue wait and payload decode are
/// attached as root counters (`wait_ns`, `decode_ns`) because those
/// stretches happened before the root existed.
fn execute_job(shared: &Shared, job: &Job) -> Response {
    let profiling = matches!(job.request, Request::Profile { .. });
    let _session =
        (profiling || shared.trace_log.is_some()).then(cqcount_obs::trace::TraceSession::begin);
    let root = trace::span("request");
    let root_id = root.id();
    root.tag("op", op_name(&job.request));
    root.add("wait_ns", trace::now_ns().saturating_sub(job.submitted_ns));
    root.add("decode_ns", job.decode_ns);
    let response = run_job(shared, &job.request, job.faults);
    drop(root);
    if root_id.is_none() {
        return response;
    }
    let tree = trace::build_tree(trace::collect(root_id), root_id);
    if let (Some(log), Some(tree)) = (&shared.trace_log, &tree) {
        let seq = shared.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut line = String::new();
        write_trace_json(&mut line, seq, op_name(&job.request), tree);
        line.push('\n');
        let mut w = log.lock().unwrap();
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }
    if !profiling {
        return response;
    }
    match response {
        Response::Count {
            value,
            plan,
            cached,
            degraded,
            fingerprint,
        } => {
            let (total_ns, root_node) = match tree {
                Some(t) => (t.record.duration_ns(), span_node_of(&t)),
                // Ring overflow dropped the root; reply with an empty tree
                // rather than failing the count.
                None => (0, SpanNode::default()),
            };
            Response::Profile(ProfileReply {
                value,
                plan,
                cached,
                degraded,
                fingerprint,
                total_ns,
                dropped: trace::dropped(),
                root: root_node,
            })
        }
        other => other,
    }
}

/// Converts a collected span tree into the wire form: times rebased to the
/// root's start, node count and depth clamped to the protocol caps.
fn span_node_of(tree: &trace::TreeNode) -> SpanNode {
    fn convert(node: &trace::TreeNode, base: u64, depth: usize, budget: &mut usize) -> SpanNode {
        *budget -= 1;
        let rec = &node.record;
        let mut children = Vec::new();
        if depth + 1 < MAX_SPAN_DEPTH {
            for c in &node.children {
                if *budget == 0 {
                    break;
                }
                children.push(convert(c, base, depth + 1, budget));
            }
        }
        SpanNode {
            name: rec.name.to_owned(),
            start_ns: rec.start_ns.saturating_sub(base),
            duration_ns: rec.duration_ns(),
            counters: rec
                .counters
                .iter()
                .take(MAX_SPAN_FIELDS)
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            tags: rec
                .tags
                .iter()
                .take(MAX_SPAN_FIELDS)
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
            children,
        }
    }
    let mut budget = MAX_SPAN_NODES;
    convert(tree, tree.record.start_ns, 0, &mut budget)
}

/// Minimal JSON string escaping for trace-log lines (names and tags are
/// ASCII identifiers in practice, but tags can carry arbitrary text).
fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// One trace-log line: `{"seq":N,"op":"count","total_ns":T,"root":{...}}`.
/// Node order is the tree's (children by start time), so two runs of the
/// same seeded workload produce structurally identical lines.
fn write_trace_json(out: &mut String, seq: u64, op: &str, tree: &trace::TreeNode) {
    use std::fmt::Write as _;
    fn node(out: &mut String, n: &trace::TreeNode, base: u64) {
        use std::fmt::Write as _;
        let rec = &n.record;
        out.push_str("{\"name\":\"");
        json_escape(out, rec.name);
        let _ = write!(
            out,
            "\",\"start_ns\":{},\"duration_ns\":{}",
            rec.start_ns.saturating_sub(base),
            rec.duration_ns()
        );
        if !rec.counters.is_empty() {
            out.push_str(",\"counters\":{");
            for (i, (k, v)) in rec.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(out, k);
                let _ = write!(out, "\":{v}");
            }
            out.push('}');
        }
        if !rec.tags.is_empty() {
            out.push_str(",\"tags\":{");
            for (i, (k, v)) in rec.tags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(out, k);
                out.push_str("\":\"");
                json_escape(out, v);
                out.push('"');
            }
            out.push('}');
        }
        if !n.children.is_empty() {
            out.push_str(",\"children\":[");
            for (i, c) in n.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                node(out, c, base);
            }
            out.push(']');
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "{{\"seq\":{seq},\"op\":\"{op}\",\"total_ns\":{},\"root\":",
        tree.record.duration_ns()
    );
    node(out, tree, tree.record.start_ns);
    out.push('}');
}

fn plan_error_response(e: PlanError) -> Response {
    let code = match e {
        PlanError::BudgetExceeded { .. } => ErrorCode::BudgetExceeded,
        _ => ErrorCode::Plan,
    };
    Response::Error {
        code,
        message: e.to_string(),
        retry_after_ms: 0,
    }
}

/// Fetches (or computes and installs) the level-1 plan entry for `q`.
/// Returns the entry and whether it was a cache hit.
///
/// Planning runs under its own budget when `plan_budget_ms` is set,
/// otherwise it shares `request_budget`. A plan whose decomposition search
/// was cut short is **degraded**: it is returned for this request but
/// never cached, so a later request with headroom re-plans from scratch.
fn plan_for(
    shared: &Shared,
    canonical: &str,
    q: &ConjunctiveQuery,
    request_budget: &Budget,
) -> (Arc<PlanEntry>, bool) {
    let sp = trace::span("server.plan");
    if let Some(entry) = shared.plans.get(canonical) {
        sp.tag("cache", "hit");
        return (entry, true);
    }
    sp.tag("cache", "miss");
    let plan_budget = match shared.config.plan_budget_ms {
        Some(ms) => Budget::with_deadline(Duration::from_millis(ms)),
        None => request_budget.clone(),
    };
    let entry = Arc::new(PlanEntry {
        prepared: prepare_plan_budgeted(q, shared.config.width_cap, &plan_budget),
        report: Mutex::new(None),
    });
    if !entry.prepared.degraded {
        shared
            .plans
            .insert(canonical.to_owned(), Arc::clone(&entry));
    }
    (entry, false)
}

fn run_job(shared: &Shared, request: &Request, faults: JobFaults) -> Response {
    match request {
        Request::Count {
            db,
            query,
            budget_ms,
        }
        | Request::Profile {
            db,
            query,
            budget_ms,
        } => run_count(shared, db, query, *budget_ms, faults),
        Request::Enumerate {
            db,
            query,
            limit,
            budget_ms,
        } => run_enumerate(shared, db, query, *limit, *budget_ms, faults),
        Request::WidthReport { query, cap } => run_width_report(shared, query, *cap),
        // Admin requests are answered inline by the connection thread.
        _ => Response::Error {
            code: ErrorCode::Internal,
            message: "internal error: admin request reached a worker".into(),
            retry_after_ms: 0,
        },
    }
}

fn budget_for(shared: &Shared, budget_ms: u64, faults: JobFaults) -> Budget {
    let ms = if budget_ms == 0 {
        shared.config.default_budget_ms
    } else {
        budget_ms
    };
    let budget = if ms == 0 && !faults.cap_trip {
        Budget::unlimited()
    } else if ms == 0 {
        Budget::cancellable()
    } else {
        Budget::with_deadline(Duration::from_millis(ms))
    };
    if faults.cap_trip {
        // Simulate a resource cap firing mid-request: the budget trips
        // before the job starts and the client sees `BudgetExceeded`.
        budget.cancel();
    }
    budget
}

fn lookup_db(shared: &Shared, name: &str) -> Result<Arc<DbState>, Box<Response>> {
    shared
        .dbs
        .read()
        .unwrap()
        .get(name)
        .cloned()
        .ok_or_else(|| {
            Box::new(Response::Error {
                code: ErrorCode::UnknownDb,
                message: format!("unknown database {name:?}"),
                retry_after_ms: 0,
            })
        })
}

fn run_count(
    shared: &Shared,
    db_name: &str,
    query: &str,
    budget_ms: u64,
    faults: JobFaults,
) -> Response {
    let parse_sp = trace::span("server.parse");
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
                retry_after_ms: 0,
            }
        }
    };
    let fp = fingerprint(&q);
    drop(parse_sp);
    let state = match lookup_db(shared, db_name) {
        Ok(s) => s,
        Err(resp) => return *resp,
    };

    // Level 2: an exact count cached under the current epoch.
    let probe_sp = trace::span("server.cache_probe");
    let key = (fp.text.clone(), db_name.to_owned(), state.epoch);
    let warm = shared.counts.get(&key);
    probe_sp.tag("result", if warm.is_some() { "hit" } else { "miss" });
    drop(probe_sp);
    if let Some(value) = warm {
        return Response::Count {
            value: value.to_string(),
            plan: "cached".into(),
            cached: CacheTier::CountWarm,
            degraded: false,
            fingerprint: fp.hash,
        };
    }

    // Level 1: the prepared plan (degraded plans skip the cache).
    let budget = budget_for(shared, budget_ms, faults);
    let (entry, plan_hit) = plan_for(shared, &fp.text, &q, &budget);
    match count_prepared_resilient(&q, &state.db, &entry.prepared, &budget) {
        Ok((n, plan, degraded)) => {
            // Exact regardless of degradation, so always cacheable.
            shared.counts.insert(key, n.clone());
            let plan_label = match plan {
                cqcount_core::Plan::SharpPipeline { width } => {
                    format!("sharp-pipeline(width={width})")
                }
                cqcount_core::Plan::Hybrid { width, bound, .. } => {
                    format!("hybrid(width={width},bound={bound})")
                }
                cqcount_core::Plan::BruteForce { .. } => "brute-force".into(),
            };
            if degraded {
                // At this point the worker's span stack has unwound to the
                // root `request` span, so the reason tags the root — a
                // profiled degraded reply carries it on the tree's root.
                trace::tag_current(
                    "degraded",
                    format!("plan budget exhausted; fell back to {plan_label}"),
                );
            }
            Response::Count {
                value: n.to_string(),
                plan: plan_label,
                cached: if plan_hit {
                    CacheTier::PlanWarm
                } else {
                    CacheTier::Cold
                },
                degraded,
                fingerprint: fp.hash,
            }
        }
        Err(e) => plan_error_response(e),
    }
}

fn run_enumerate(
    shared: &Shared,
    db_name: &str,
    query: &str,
    limit: u64,
    budget_ms: u64,
    faults: JobFaults,
) -> Response {
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
                retry_after_ms: 0,
            }
        }
    };
    let state = match lookup_db(shared, db_name) {
        Ok(s) => s,
        Err(resp) => return *resp,
    };
    let budget = budget_for(shared, budget_ms, faults);
    let cap = (limit as usize).min(shared.config.max_enumerate);
    let free: Vec<Var> = q.free().into_iter().collect();
    // Any query decomposes at width = atom count, so enumeration is total.
    let width = shared.config.width_cap.max(q.atoms().len());
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut truncated = false;
    let mut tripped = false;
    let ok = for_each_answer(&q, &state.db, width, |answer| {
        if budget.is_exceeded() {
            tripped = true;
            return false;
        }
        if rows.len() >= cap {
            truncated = true;
            return false;
        }
        rows.push(
            free.iter()
                .map(|v| state.db.interner().name(answer[v]).to_owned())
                .collect(),
        );
        true
    });
    if tripped {
        return plan_error_response(PlanError::BudgetExceeded {
            elapsed_ms: budget.elapsed_ms().max(1),
        });
    }
    if !ok {
        return Response::Error {
            code: ErrorCode::Plan,
            message: "no decomposition found for enumeration".into(),
            retry_after_ms: 0,
        };
    }
    Response::Rows { rows, truncated }
}

fn run_width_report(shared: &Shared, query: &str, cap: u64) -> Response {
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
                retry_after_ms: 0,
            }
        }
    };
    let cap = if cap == 0 {
        shared.config.width_cap
    } else {
        cap as usize
    };
    let fp = fingerprint(&q);
    // Reports at the default cap share the plan entry's lazy slot; other
    // caps are computed fresh (rare, operator-driven).
    let report = if cap == shared.config.width_cap {
        // Width reports are operator-driven and cheap relative to counting;
        // plan under an unlimited budget so the cached entry is never
        // degraded.
        let (entry, _) = plan_for(shared, &fp.text, &q, &Budget::unlimited());
        let mut slot = entry.report.lock().unwrap();
        slot.get_or_insert_with(|| WidthReport::analyze(&q, cap))
            .clone()
    } else {
        WidthReport::analyze(&q, cap)
    };
    Response::Report(ReportReply {
        acyclic: report.acyclic,
        ghw: report.ghw.map(|w| w as u64),
        sharp_width: report.sharp_width.map(|w| w as u64),
        star_size: report.star_size as u64,
        atoms: report.atoms as u64,
        vars: report.vars as u64,
        free: report.free as u64,
        cap: report.cap as u64,
    })
}
