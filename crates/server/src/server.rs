//! The daemon: TCP accept loop, admission control, worker pool, caches.
//!
//! Threading model (std-only):
//!
//! * one **accept** thread owns the listener and spawns a reader thread
//!   per connection;
//! * each **connection** thread decodes frames; admin requests (`STATS`,
//!   `RELOAD`, `FLUSH`) are answered inline so operators can observe and
//!   heal an overloaded server, while counting work (`COUNT`,
//!   `ENUMERATE`, `WIDTH_REPORT`) is pushed onto a *bounded* queue — a
//!   full queue yields an immediate `Overloaded` error frame, never
//!   buffering;
//! * `workers` **worker** threads pop jobs, run them under the request's
//!   wall-clock [`Budget`], and send the response back to the connection
//!   thread over a per-job channel. Worker panics are caught and reported
//!   as `Internal` errors — a malformed request cannot take the daemon
//!   down.

use crate::cache::{CountCache, PlanCache, PlanEntry};
use crate::protocol::{
    read_frame, CacheTier, DbSummary, ErrorCode, Frame, ReportReply, Request, Response, StatsReply,
};
use cqcount_core::planner::{count_prepared, prepare_plan, WidthReport, WIDTH_CAP};
use cqcount_core::{for_each_answer, Budget, PlanError};
use cqcount_exec::BoundedQueue;
use cqcount_query::fingerprint::fingerprint;
use cqcount_query::{parse_database, parse_query, ConjunctiveQuery, Var};
use cqcount_relational::Database;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything tunable about a server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port — the tests' mode).
    pub addr: String,
    /// Worker threads executing counting jobs.
    pub workers: usize,
    /// Bounded request-queue capacity; beyond it, `Overloaded`.
    pub queue_cap: usize,
    /// Default per-request wall-clock budget (requests may lower or raise
    /// it; `0` in a request means this default).
    pub default_budget_ms: u64,
    /// Hard cap on rows an `ENUMERATE` may return.
    pub max_enumerate: usize,
    /// Width cap for plan searches and width reports.
    pub width_cap: usize,
    /// Plan-cache capacity (level 1).
    pub plan_cache_cap: usize,
    /// Count-cache capacity (level 2).
    pub count_cache_cap: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            default_budget_ms: 10_000,
            max_enumerate: 10_000,
            width_cap: WIDTH_CAP,
            plan_cache_cap: 1024,
            count_cache_cap: 4096,
        }
    }
}

/// A loaded database at a specific epoch. Immutable once installed —
/// `RELOAD` swaps in a fresh `Arc`, so in-flight counts keep their
/// snapshot.
#[derive(Debug)]
pub struct DbState {
    /// The instance.
    pub db: Database,
    /// Bumped by every reload; part of the count-cache key.
    pub epoch: u64,
    /// Content fingerprint (observability only — correctness comes from
    /// the epoch).
    pub fingerprint: u64,
}

struct Shared {
    config: ServerConfig,
    dbs: RwLock<HashMap<String, Arc<DbState>>>,
    plans: PlanCache,
    counts: CountCache,
    served: AtomicU64,
    overloaded: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    fn stats(&self) -> StatsReply {
        let (plan_hits, plan_misses) = self.plans.counters();
        let (count_hits, count_misses) = self.counts.counters();
        let mut dbs: Vec<DbSummary> = self
            .dbs
            .read()
            .unwrap()
            .iter()
            .map(|(name, st)| DbSummary {
                name: name.clone(),
                epoch: st.epoch,
                fingerprint: st.fingerprint,
                tuples: st.db.total_tuples() as u64,
            })
            .collect();
        dbs.sort_by(|a, b| a.name.cmp(&b.name));
        StatsReply {
            served: self.served.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            plan_hits,
            plan_misses,
            count_hits,
            count_misses,
            dbs,
        }
    }

    fn install_db(&self, name: &str, db: Database) -> u64 {
        let fingerprint = db.fingerprint();
        let mut dbs = self.dbs.write().unwrap();
        let epoch = dbs.get(name).map_or(1, |old| old.epoch + 1);
        dbs.insert(
            name.to_owned(),
            Arc::new(DbState {
                db,
                epoch,
                fingerprint,
            }),
        );
        epoch
    }
}

/// A counting job queued for a worker.
struct Job {
    request: Request,
    reply: mpsc::Sender<Response>,
}

/// A running server. Dropping the handle does *not* stop the server; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<Job>>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Installs (or replaces) a database directly, bypassing the protocol.
    pub fn install_db(&self, name: &str, db: Database) -> u64 {
        self.shared.install_db(name, db)
    }

    /// Stops accepting, drains workers, and joins every owned thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.queue.close();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Binds, spawns the threads, and returns a handle. `initial` holds the
/// databases served from the start (more can arrive via `RELOAD`).
pub fn serve(
    config: ServerConfig,
    initial: Vec<(String, Database)>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        plans: PlanCache::new(config.plan_cache_cap),
        counts: CountCache::new(config.count_cache_cap),
        dbs: RwLock::new(HashMap::new()),
        served: AtomicU64::new(0),
        overloaded: AtomicU64::new(0),
        stop: AtomicBool::new(false),
        config,
    });
    for (name, db) in initial {
        shared.install_db(&name, db);
    }
    let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(shared.config.queue_cap));

    let worker_threads: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    let resp = catch_unwind(AssertUnwindSafe(|| run_job(&shared, &job.request)))
                        .unwrap_or_else(|_| Response::Error {
                            code: ErrorCode::Internal,
                            message: "internal error: worker panicked".into(),
                        });
                    let _ = job.reply.send(resp);
                }
            })
        })
        .collect();

    let accept_thread = {
        let queue = Arc::clone(&queue);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let queue = Arc::clone(&queue);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || serve_connection(stream, &shared, &queue));
            }
        })
    };

    Ok(ServerHandle {
        shared,
        queue,
        addr,
        accept_thread: Some(accept_thread),
        worker_threads,
    })
}

fn serve_connection(stream: TcpStream, shared: &Shared, queue: &BoundedQueue<Job>) {
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = std::io::BufWriter::new(stream);
    loop {
        let frame: Frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean close
            Err(e) => {
                let _ = Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("protocol error: {e}"),
                }
                .write_to(&mut writer);
                return;
            }
        };
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                let _ = Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("protocol error: {e}"),
                }
                .write_to(&mut writer);
                continue;
            }
        };
        let response = match request {
            // Admin requests bypass admission control: they are cheap and
            // must work *especially* when the server is overloaded.
            Request::Stats => {
                shared.served.fetch_add(1, Ordering::Relaxed);
                Response::Stats(shared.stats())
            }
            Request::Reload { ref db, ref text } => {
                shared.served.fetch_add(1, Ordering::Relaxed);
                match parse_database(text) {
                    Ok(parsed) => Response::Ok {
                        epoch: shared.install_db(db, parsed),
                    },
                    Err(e) => Response::Error {
                        code: ErrorCode::Parse,
                        message: e.to_string(),
                    },
                }
            }
            Request::Flush => {
                shared.served.fetch_add(1, Ordering::Relaxed);
                shared.plans.clear();
                shared.counts.clear();
                Response::Ok { epoch: 0 }
            }
            // Counting work goes through the bounded queue.
            other => {
                let (tx, rx) = mpsc::channel();
                match queue.try_push(Job {
                    request: other,
                    reply: tx,
                }) {
                    Ok(()) => match rx.recv() {
                        Ok(resp) => {
                            shared.served.fetch_add(1, Ordering::Relaxed);
                            resp
                        }
                        Err(_) => Response::Error {
                            code: ErrorCode::Internal,
                            message: "internal error: worker dropped the job".into(),
                        },
                    },
                    Err(_) => {
                        shared.overloaded.fetch_add(1, Ordering::Relaxed);
                        Response::Error {
                            code: ErrorCode::Overloaded,
                            message: format!(
                                "overloaded: request queue at capacity {}",
                                queue.capacity()
                            ),
                        }
                    }
                }
            }
        };
        if response.write_to(&mut writer).is_err() {
            return;
        }
    }
}

fn plan_error_response(e: PlanError) -> Response {
    let code = match e {
        PlanError::BudgetExceeded { .. } => ErrorCode::BudgetExceeded,
        _ => ErrorCode::Plan,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Fetches (or computes and installs) the level-1 plan entry for `q`.
/// Returns the entry and whether it was a cache hit.
fn plan_for(shared: &Shared, canonical: &str, q: &ConjunctiveQuery) -> (Arc<PlanEntry>, bool) {
    if let Some(entry) = shared.plans.get(canonical) {
        return (entry, true);
    }
    let entry = Arc::new(PlanEntry {
        prepared: prepare_plan(q, shared.config.width_cap),
        report: Mutex::new(None),
    });
    shared
        .plans
        .insert(canonical.to_owned(), Arc::clone(&entry));
    (entry, false)
}

fn run_job(shared: &Shared, request: &Request) -> Response {
    match request {
        Request::Count {
            db,
            query,
            budget_ms,
        } => run_count(shared, db, query, *budget_ms),
        Request::Enumerate {
            db,
            query,
            limit,
            budget_ms,
        } => run_enumerate(shared, db, query, *limit, *budget_ms),
        Request::WidthReport { query, cap } => run_width_report(shared, query, *cap),
        // Admin requests are answered inline by the connection thread.
        _ => Response::Error {
            code: ErrorCode::Internal,
            message: "internal error: admin request reached a worker".into(),
        },
    }
}

fn budget_for(shared: &Shared, budget_ms: u64) -> Budget {
    let ms = if budget_ms == 0 {
        shared.config.default_budget_ms
    } else {
        budget_ms
    };
    if ms == 0 {
        Budget::unlimited()
    } else {
        Budget::with_deadline(Duration::from_millis(ms))
    }
}

fn lookup_db(shared: &Shared, name: &str) -> Result<Arc<DbState>, Response> {
    shared
        .dbs
        .read()
        .unwrap()
        .get(name)
        .cloned()
        .ok_or_else(|| Response::Error {
            code: ErrorCode::UnknownDb,
            message: format!("unknown database {name:?}"),
        })
}

fn run_count(shared: &Shared, db_name: &str, query: &str, budget_ms: u64) -> Response {
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
            }
        }
    };
    let fp = fingerprint(&q);
    let state = match lookup_db(shared, db_name) {
        Ok(s) => s,
        Err(resp) => return resp,
    };

    // Level 2: an exact count cached under the current epoch.
    let key = (fp.text.clone(), db_name.to_owned(), state.epoch);
    if let Some(value) = shared.counts.get(&key) {
        return Response::Count {
            value: value.to_string(),
            plan: "cached".into(),
            cached: CacheTier::CountWarm,
            fingerprint: fp.hash,
        };
    }

    // Level 1: the prepared plan.
    let (entry, plan_hit) = plan_for(shared, &fp.text, &q);
    let budget = budget_for(shared, budget_ms);
    match count_prepared(&q, &state.db, &entry.prepared, &budget) {
        Ok((n, plan)) => {
            shared.counts.insert(key, n.clone());
            Response::Count {
                value: n.to_string(),
                plan: match plan {
                    cqcount_core::Plan::SharpPipeline { width } => {
                        format!("sharp-pipeline(width={width})")
                    }
                    cqcount_core::Plan::Hybrid { width, bound, .. } => {
                        format!("hybrid(width={width},bound={bound})")
                    }
                    cqcount_core::Plan::BruteForce { .. } => "brute-force".into(),
                },
                cached: if plan_hit {
                    CacheTier::PlanWarm
                } else {
                    CacheTier::Cold
                },
                fingerprint: fp.hash,
            }
        }
        Err(e) => plan_error_response(e),
    }
}

fn run_enumerate(
    shared: &Shared,
    db_name: &str,
    query: &str,
    limit: u64,
    budget_ms: u64,
) -> Response {
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
            }
        }
    };
    let state = match lookup_db(shared, db_name) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let budget = budget_for(shared, budget_ms);
    let cap = (limit as usize).min(shared.config.max_enumerate);
    let free: Vec<Var> = q.free().into_iter().collect();
    // Any query decomposes at width = atom count, so enumeration is total.
    let width = shared.config.width_cap.max(q.atoms().len());
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut truncated = false;
    let mut tripped = false;
    let ok = for_each_answer(&q, &state.db, width, |answer| {
        if budget.is_exceeded() {
            tripped = true;
            return false;
        }
        if rows.len() >= cap {
            truncated = true;
            return false;
        }
        rows.push(
            free.iter()
                .map(|v| state.db.interner().name(answer[v]).to_owned())
                .collect(),
        );
        true
    });
    if tripped {
        return plan_error_response(PlanError::BudgetExceeded {
            elapsed_ms: budget.elapsed_ms().max(1),
        });
    }
    if !ok {
        return Response::Error {
            code: ErrorCode::Plan,
            message: "no decomposition found for enumeration".into(),
        };
    }
    Response::Rows { rows, truncated }
}

fn run_width_report(shared: &Shared, query: &str, cap: u64) -> Response {
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
            }
        }
    };
    let cap = if cap == 0 {
        shared.config.width_cap
    } else {
        cap as usize
    };
    let fp = fingerprint(&q);
    // Reports at the default cap share the plan entry's lazy slot; other
    // caps are computed fresh (rare, operator-driven).
    let report = if cap == shared.config.width_cap {
        let (entry, _) = plan_for(shared, &fp.text, &q);
        let mut slot = entry.report.lock().unwrap();
        slot.get_or_insert_with(|| WidthReport::analyze(&q, cap))
            .clone()
    } else {
        WidthReport::analyze(&q, cap)
    };
    Response::Report(ReportReply {
        acyclic: report.acyclic,
        ghw: report.ghw.map(|w| w as u64),
        sharp_width: report.sharp_width.map(|w| w as u64),
        star_size: report.star_size as u64,
        atoms: report.atoms as u64,
        vars: report.vars as u64,
        free: report.free as u64,
        cap: report.cap as u64,
    })
}
