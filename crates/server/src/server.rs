//! The daemon: evented front end, admission control, worker pool, caches.
//!
//! Threading model (std-only):
//!
//! * `reactors` **reactor shards** (see [`crate::reactor`]) share a
//!   `poll(2)`-driven event loop over non-blocking sockets: shard 0 owns
//!   the listener and deals accepted connections out round-robin; each
//!   shard decodes frames incrementally from per-connection buffers, so a
//!   client may **pipeline** many requests on one connection. Admin
//!   requests (`STATS`, `RELOAD`, `FLUSH`, `METRICS`) are answered inline
//!   so operators can observe and heal an overloaded server, and warm-hit
//!   counting requests take the **fast path** ([`try_fast_path`]): a raw
//!   query-text fingerprint probe plus a count-cache peek answers on the
//!   reactor thread with no parse, no queue, no thread handoff. Everything
//!   else is batch-admitted onto a *bounded* queue — a full queue yields
//!   an immediate `Overloaded` error frame, never buffering;
//! * `workers` **worker** threads pop jobs, run them under the request's
//!   wall-clock [`Budget`], and post the response back to the owning
//!   shard's completion mailbox. Worker panics are caught, counted, and
//!   reported as `Internal` errors — a malformed request cannot take the
//!   daemon down.
//!
//! Protocol v5 frames carry request ids, so pipelined responses ship in
//! completion order; v4 frames are answered strictly in request order via
//! a per-connection reorder buffer (see [`crate::reactor`]).
//!
//! Resilience (PR 3): connections carry read/write deadlines and idle
//! peers are reaped; `Overloaded` errors carry a `retry_after_ms` hint;
//! when decomposition planning blows its budget the count *degrades* to a
//! cheaper exact plan instead of erroring (`degraded: true` in the reply);
//! and the whole stack can be wrapped in a seeded [`FaultInjector`]
//! (`--fault-profile`) for replayable chaos runs.
//!
//! Observability (PR 4): every operational counter lives on a
//! [`cqcount_obs::Registry`] exported verbatim by the `METRICS` opcode
//! (the v2 `STATS` reply reads the same counters, so the two can never
//! disagree); `PROFILE` runs a count under an active trace session and
//! returns the request's span tree — root span `request` on the worker,
//! with the planner, kernel, and pool spans attached under it; and
//! `--trace-log FILE` streams one JSON line per counting request with the
//! same tree, for offline analysis. Trace lines are formatted by workers
//! (or by the reactor for fast-path hits) and flushed by the owning shard
//! once per drain batch — there is no global log lock on the hot path.

use crate::cache::{CountCache, FingerprintCache, Fingerprinted, PlanCache, PlanEntry};
use crate::faults::{FaultEvent, FaultInjector, JobFaults};
use crate::protocol::{
    CacheTier, DbSummary, ErrorCode, FlightIncident, FlightReply, FlightTrace, HistoryReply,
    HistorySampleReply, ProfileReply, ReportReply, Request, Response, SpanNode, StatsReply,
    MAX_FLIGHT_INCIDENTS, MAX_FLIGHT_TRACES, MAX_HISTORY_ENTRIES, MAX_HISTORY_SAMPLES,
    MAX_SPAN_DEPTH, MAX_SPAN_FIELDS, MAX_SPAN_NODES,
};
use crate::reactor::{run_reactor, Completion, ReactorConfig, ReactorSet};
use cqcount_core::planner::{
    count_prepared_resilient, prepare_plan_budgeted, WidthReport, WIDTH_CAP,
};
use cqcount_core::{for_each_answer, Budget, PlanError};
use cqcount_exec::BoundedQueue;
use cqcount_obs::flight::{FlightRecorder, RetainReason};
use cqcount_obs::history::MetricsHistory;
use cqcount_obs::metrics::{Counter, Gauge, Histogram, Registry};
use cqcount_obs::trace;
use cqcount_obs::watchdog::{HeartbeatKind, Watchdog};
use cqcount_query::fingerprint::fingerprint;
use cqcount_query::{parse_database, parse_query, ConjunctiveQuery, Var};
use cqcount_relational::Database;
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything tunable about a server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port — the tests' mode).
    pub addr: String,
    /// Worker threads executing counting jobs.
    pub workers: usize,
    /// Reactor shards running the evented front end. `0` (the default)
    /// auto-sizes to half the available parallelism, clamped to `1..=4` —
    /// one shard saturates a loopback listener; counting work is what
    /// scales with cores, and that belongs to `workers`.
    pub reactors: usize,
    /// Bounded request-queue capacity; beyond it, `Overloaded`.
    pub queue_cap: usize,
    /// Default per-request wall-clock budget (requests may lower or raise
    /// it; `0` in a request means this default).
    pub default_budget_ms: u64,
    /// Hard cap on rows an `ENUMERATE` may return.
    pub max_enumerate: usize,
    /// Width cap for plan searches and width reports.
    pub width_cap: usize,
    /// Plan-cache capacity (level 1).
    pub plan_cache_cap: usize,
    /// Count-cache capacity (level 2).
    pub count_cache_cap: usize,
    /// Per-connection read deadline in milliseconds (0 = none). A peer
    /// idle past this is reaped — the connection closes without a reply.
    pub read_timeout_ms: u64,
    /// Per-connection write deadline in milliseconds (0 = none); protects
    /// workers from clients that stop draining their socket.
    pub write_timeout_ms: u64,
    /// The `retry_after_ms` hint attached to `Overloaded` errors.
    pub overload_retry_after_ms: u64,
    /// Wall-clock budget for *planning* (the decomposition search).
    /// `None` shares the request budget; `Some(ms)` gives planning its own
    /// slice (`Some(0)` forces immediate degradation — the chaos tests'
    /// deterministic trigger).
    pub plan_budget_ms: Option<u64>,
    /// Fault-injection profile (default [`crate::faults::FaultProfile::off`]).
    pub fault_profile: crate::faults::FaultProfile,
    /// Seed for the fault injector (`CQCOUNT_FAULT_SEED`).
    pub fault_seed: u64,
    /// When set, every counting request is traced and its span tree is
    /// appended to this file as one JSON line (`--trace-log`).
    pub trace_log: Option<std::path::PathBuf>,
    /// Most materialized counts kept live for incremental maintenance
    /// (see [`crate::mutation`]); `0` disables materialization, so
    /// mutations only invalidate.
    pub materialize_cap: usize,
    /// Durable root (`--data-dir`). `None` (the default) keeps the v6
    /// in-memory behavior: no WAL, no snapshots, no recovery.
    pub data_dir: Option<std::path::PathBuf>,
    /// WAL fsync policy (`--durability`); ignored without `data_dir`.
    pub durability: crate::durable::DurabilityPolicy,
    /// Snapshot + WAL-truncate after this many logged batches (`0`
    /// disables the threshold; `RELOAD` and `SYNC` still snapshot).
    pub snapshot_every: u64,
    /// Fault injection: fail every WAL write after the first N
    /// (`--wal-fail-after`), flipping the database read-only.
    pub wal_fail_after: Option<u64>,
    /// Fault injection: abort the process at a durability kill-point
    /// (`--crash-at`, or seeded via `--fault-profile crash`).
    pub crash_plan: Option<Arc<crate::faults::CrashPlan>>,
    /// Flight-recorder capacity: span trees retained for forensics
    /// (`--recorder-cap`; 0 disables the recorder entirely).
    pub recorder_cap: usize,
    /// Floor of the recorder's self-calibrating latency threshold in
    /// microseconds (`--recorder-threshold-us`). The effective per-opcode
    /// threshold is `max(this, live p99 of that opcode)`.
    pub recorder_threshold_us: u64,
    /// Metrics-history sampling interval (`--history-interval-ms`; 0
    /// disables history).
    pub history_interval_ms: u64,
    /// Metrics-history ring capacity in samples (`--history-cap`).
    pub history_cap: usize,
    /// Watchdog stall threshold in milliseconds (`--watchdog-stall-ms`;
    /// 0 disables the watchdog).
    pub watchdog_stall_ms: u64,
    /// Fault injection: on the Nth WAL fsync (1-based), sleep for the
    /// given milliseconds before syncing (`--wal-fsync-stall N:MS`) —
    /// the deterministic trigger for the forensics e2e test.
    pub wal_fsync_stall: Option<(u64, u64)>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            reactors: 0,
            queue_cap: 64,
            default_budget_ms: 10_000,
            max_enumerate: 10_000,
            width_cap: WIDTH_CAP,
            plan_cache_cap: 1024,
            count_cache_cap: 4096,
            read_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            overload_retry_after_ms: 100,
            plan_budget_ms: None,
            fault_profile: crate::faults::FaultProfile::off(),
            fault_seed: 0,
            trace_log: None,
            materialize_cap: 32,
            data_dir: None,
            durability: crate::durable::DurabilityPolicy::Batch,
            snapshot_every: 4096,
            wal_fail_after: None,
            crash_plan: None,
            recorder_cap: 64,
            recorder_threshold_us: 10_000,
            history_interval_ms: 1_000,
            history_cap: 512,
            watchdog_stall_ms: 2_000,
            wal_fsync_stall: None,
        }
    }
}

/// A loaded database at a specific epoch. `RELOAD` swaps in a fresh
/// `Arc`, so in-flight counts keep their state handle; protocol v6
/// mutations edit the instance *in place* under the write lock — counts
/// hold the read lock for their whole run, so they see either all of a
/// mutation batch or none of it.
#[derive(Debug)]
pub struct DbState {
    /// The instance. Readers (counts, enumerations, stats) take the read
    /// lock; mutation batches take the write lock.
    pub db: RwLock<Database>,
    /// Bumped by every reload; part of the count-cache key. Mutations do
    /// **not** bump it — they invalidate surgically by relation.
    pub epoch: u64,
    /// Content fingerprint at install time (observability only —
    /// correctness comes from the epoch and the mutation sweeps).
    pub fingerprint: u64,
    /// Durable state (WAL + snapshots) when the server has a
    /// `--data-dir`; `None` keeps the database memory-only. `RELOAD`
    /// re-uses the same handle across epochs — old-epoch WAL records are
    /// discarded at replay by the epoch check.
    pub(crate) durable: Option<Arc<crate::durable::DbDurable>>,
}

/// Request-latency buckets in microseconds: sub-millisecond cache hits up
/// through multi-second decomposition searches.
const LATENCY_BUCKETS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000, 30_000_000,
];

/// Reply-write buckets in microseconds (small frames unless `ENUMERATE` or
/// `PROFILE` streams a large payload to a slow peer).
const WRITE_BUCKETS_US: &[u64] = &[10, 50, 100, 500, 1_000, 10_000, 100_000, 1_000_000];

/// Every exported metric, pre-registered so the hot path is handle
/// dereferences only. The v2 `STATS` reply is a *view* over these same
/// counters ([`Shared::stats`]), not parallel bookkeeping.
pub(crate) struct Metrics {
    registry: Registry,
    /// Requests fully served (reply written; errors excluded only when the
    /// request never produced a reply).
    pub(crate) served: Counter,
    // Per-opcode admission counters (`cqcount_requests_total{op=...}`).
    req_count: Counter,
    req_enumerate: Counter,
    req_width_report: Counter,
    req_stats: Counter,
    req_reload: Counter,
    req_flush: Counter,
    req_profile: Counter,
    req_metrics: Counter,
    req_insert: Counter,
    req_delete: Counter,
    req_mutate: Counter,
    req_sync: Counter,
    req_history: Counter,
    req_flight: Counter,
    // Per-ErrorCode outcome counters (`cqcount_errors_total{code=...}`).
    err_protocol: Counter,
    err_parse: Counter,
    err_unknown_db: Counter,
    err_plan: Counter,
    err_budget_exceeded: Counter,
    err_overloaded: Counter,
    err_internal: Counter,
    err_read_only: Counter,
    degraded: Counter,
    panicked: Counter,
    pub(crate) reaped: Counter,
    pub(crate) queue_depth: Gauge,
    pub(crate) latency_us: Histogram,
    /// Per-opcode request-latency series
    /// (`cqcount_request_latency_by_op_us{op=...}`) — the flight
    /// recorder's self-calibrating thresholds read their live p99.
    latency_by_op: Vec<(&'static str, Histogram)>,
    pub(crate) reply_write_us: Histogram,
    /// Warm-hit requests answered inline on a reactor shard.
    pub(crate) fast_path_hits: Counter,
    /// Reactor poll returns (idle ticks included).
    pub(crate) reactor_wakeups: Counter,
    // Cache counters, shared with the caches themselves (the handles the
    // caches increment are the ones the registry renders).
    plan_hits: Counter,
    plan_misses: Counter,
    plan_evictions: Counter,
    count_hits: Counter,
    count_misses: Counter,
    count_evictions: Counter,
    faults_injected: Gauge,
    /// Effective tuple mutations applied (no-ops excluded).
    pub(crate) mutations: Counter,
    /// Join-tree bags re-aggregated by incremental maintenance.
    pub(crate) delta_bags_touched: Counter,
    /// Mutations that dropped a materialization and fell back to
    /// targeted invalidation.
    pub(crate) delta_fallbacks: Counter,
    /// WAL records appended (one per effective mutation batch).
    pub(crate) wal_records: Counter,
    /// Bytes appended to WALs.
    pub(crate) wal_bytes: Counter,
    /// Completed WAL fsyncs.
    pub(crate) wal_fsyncs: Counter,
    /// Snapshots written (threshold, `SYNC`, and `RELOAD`).
    pub(crate) snapshots: Counter,
    /// WAL records replayed during startup recovery.
    pub(crate) wal_replayed: Counter,
    /// Snapshots successfully loaded during startup recovery.
    pub(crate) recovery_snapshots: Counter,
    /// Torn WAL tails truncated during recovery (expected crash residue).
    pub(crate) recovery_torn: Counter,
    /// Corrupt WAL records or snapshots hit during recovery (never
    /// expected; the crash-smoke CI gate demands zero).
    pub(crate) recovery_corrupt: Counter,
    /// WAL bytes discarded by recovery truncation.
    pub(crate) recovery_truncated_bytes: Counter,
    /// Databases currently read-only (scrape-time gauge).
    pub(crate) read_only_dbs: Gauge,
    /// Span trees retained by the flight recorder.
    pub(crate) recorder_retained: Counter,
    /// Incidents recorded by the flight recorder.
    pub(crate) recorder_incidents: Counter,
    /// Stall edges flagged by the watchdog (one per transition).
    pub(crate) watchdog_stalls: Counter,
    /// Reactor shards currently flagged as stalled.
    pub(crate) watchdog_stalled_shards: Gauge,
    /// Pool workers currently flagged as stalled.
    pub(crate) watchdog_stalled_workers: Gauge,
    /// Metrics-history samples taken.
    pub(crate) history_samples: Counter,
}

/// Every opcode label, in wire order — the per-opcode latency family
/// pre-registers one series per label so the hot path never allocates.
const OP_LABELS: &[&str] = &[
    "count",
    "enumerate",
    "width_report",
    "stats",
    "reload",
    "flush",
    "profile",
    "metrics",
    "insert",
    "delete",
    "mutate",
    "sync",
    "history",
    "flight",
];

impl Metrics {
    fn new() -> Metrics {
        let r = Registry::new();
        let req = |op| {
            r.counter_labeled(
                "cqcount_requests_total",
                "Requests admitted, by opcode.",
                "op",
                op,
            )
        };
        let err = |code| {
            r.counter_labeled(
                "cqcount_errors_total",
                "Error replies sent, by error code.",
                "code",
                code,
            )
        };
        let cache = |name, help, which| r.counter_labeled(name, help, "cache", which);
        Metrics {
            served: r.counter(
                "cqcount_requests_served_total",
                "Requests that produced a reply (including error replies).",
            ),
            req_count: req("count"),
            req_enumerate: req("enumerate"),
            req_width_report: req("width_report"),
            req_stats: req("stats"),
            req_reload: req("reload"),
            req_flush: req("flush"),
            req_profile: req("profile"),
            req_metrics: req("metrics"),
            req_insert: req("insert"),
            req_delete: req("delete"),
            req_mutate: req("mutate"),
            req_sync: req("sync"),
            req_history: req("history"),
            req_flight: req("flight"),
            err_protocol: err("protocol"),
            err_parse: err("parse"),
            err_unknown_db: err("unknown_db"),
            err_plan: err("plan"),
            err_budget_exceeded: err("budget_exceeded"),
            err_overloaded: err("overloaded"),
            err_internal: err("internal"),
            err_read_only: err("read_only"),
            degraded: r.counter(
                "cqcount_degraded_total",
                "Counts served by a degraded (fallback) plan.",
            ),
            panicked: r.counter(
                "cqcount_worker_panics_total",
                "Worker panics caught (including injected ones).",
            ),
            reaped: r.counter(
                "cqcount_connections_reaped_total",
                "Connections closed by the idle/stall deadline.",
            ),
            queue_depth: r.gauge(
                "cqcount_queue_depth",
                "Counting jobs waiting in the bounded queue.",
            ),
            latency_us: r.histogram(
                "cqcount_request_latency_us",
                "Request latency from decode to reply-ready, microseconds.",
                LATENCY_BUCKETS_US,
            ),
            latency_by_op: OP_LABELS
                .iter()
                .map(|op| {
                    (
                        *op,
                        r.histogram_labeled(
                            "cqcount_request_latency_by_op_us",
                            "Request latency by opcode, microseconds.",
                            "op",
                            op,
                            LATENCY_BUCKETS_US,
                        ),
                    )
                })
                .collect(),
            reply_write_us: r.histogram(
                "cqcount_reply_write_us",
                "Time spent encoding + writing a reply frame, microseconds.",
                WRITE_BUCKETS_US,
            ),
            fast_path_hits: r.counter(
                "cqcount_fast_path_hits_total",
                "Warm-hit requests answered inline on the reactor (no queue).",
            ),
            reactor_wakeups: r.counter(
                "cqcount_reactor_wakeups_total",
                "Reactor poll wakeups across all shards.",
            ),
            plan_hits: cache("cqcount_cache_hits_total", "Cache hits.", "plan"),
            plan_misses: cache("cqcount_cache_misses_total", "Cache misses.", "plan"),
            plan_evictions: cache(
                "cqcount_cache_evictions_total",
                "Entries evicted by the FIFO bound.",
                "plan",
            ),
            count_hits: cache("cqcount_cache_hits_total", "Cache hits.", "count"),
            count_misses: cache("cqcount_cache_misses_total", "Cache misses.", "count"),
            count_evictions: cache(
                "cqcount_cache_evictions_total",
                "Entries evicted by the FIFO bound.",
                "count",
            ),
            faults_injected: r.gauge(
                "cqcount_faults_injected",
                "Faults injected so far (0 when no fault profile is active).",
            ),
            mutations: r.counter(
                "cqcount_mutations_total",
                "Effective tuple mutations applied (duplicate inserts and absent deletes excluded).",
            ),
            delta_bags_touched: r.counter(
                "cqcount_delta_bags_touched_total",
                "Join-tree bags re-aggregated by incremental count maintenance.",
            ),
            delta_fallbacks: r.counter(
                "cqcount_delta_fallbacks_total",
                "Materializations dropped mid-mutation (fell back to cache invalidation).",
            ),
            wal_records: r.counter(
                "cqcount_wal_records_total",
                "WAL records appended (one per effective mutation batch).",
            ),
            wal_bytes: r.counter("cqcount_wal_bytes_total", "Bytes appended to WALs."),
            wal_fsyncs: r.counter("cqcount_wal_fsyncs_total", "Completed WAL fsyncs."),
            snapshots: r.counter(
                "cqcount_snapshots_written_total",
                "Checksummed snapshots written (threshold, SYNC, and RELOAD).",
            ),
            wal_replayed: r.counter(
                "cqcount_wal_records_replayed_total",
                "WAL records replayed during startup recovery.",
            ),
            recovery_snapshots: r.counter(
                "cqcount_recovery_snapshots_loaded_total",
                "Snapshots successfully loaded during startup recovery.",
            ),
            recovery_torn: r.counter(
                "cqcount_recovery_torn_tails_total",
                "Torn WAL tails truncated during recovery (normal crash residue).",
            ),
            recovery_corrupt: r.counter(
                "cqcount_recovery_corrupt_records_total",
                "Corrupt WAL records or snapshots found during recovery.",
            ),
            recovery_truncated_bytes: r.counter(
                "cqcount_recovery_truncated_bytes_total",
                "WAL bytes discarded by recovery truncation.",
            ),
            read_only_dbs: r.gauge(
                "cqcount_read_only_dbs",
                "Databases currently degraded to read-only after a durability failure.",
            ),
            recorder_retained: r.counter(
                "cqcount_recorder_retained_total",
                "Span trees retained by the flight recorder.",
            ),
            recorder_incidents: r.counter(
                "cqcount_recorder_incidents_total",
                "Discrete incidents recorded by the flight recorder.",
            ),
            watchdog_stalls: r.counter(
                "cqcount_watchdog_stalls_total",
                "Stall edges the watchdog flagged (one per transition into stalled).",
            ),
            watchdog_stalled_shards: r.gauge(
                "cqcount_watchdog_stalled_shards",
                "Reactor shards currently flagged as stalled.",
            ),
            watchdog_stalled_workers: r.gauge(
                "cqcount_watchdog_stalled_workers",
                "Pool workers currently flagged as stalled past their deadline budget.",
            ),
            history_samples: r.counter(
                "cqcount_history_samples_total",
                "Metrics-history samples recorded.",
            ),
            registry: r,
        }
    }

    /// Exposes the process-wide planner search counters on this registry
    /// (shared handles — the decomposition engine increments them
    /// directly, see `cqcount_obs::planner`).
    fn attach_planner_counters(&self) {
        let p = cqcount_obs::planner::counters();
        let events: [(&str, &Counter); 6] = [
            ("blocks_solved", &p.blocks_solved),
            ("memo_hits", &p.memo_hits),
            ("negative_reuse", &p.negative_reuse),
            ("candidates_yielded", &p.candidates_yielded),
            ("universes_opened", &p.universes_opened),
            ("widths_searched", &p.widths_searched),
        ];
        for (event, counter) in events {
            self.registry.attach_counter(
                "cqcount_planner_events_total",
                "Decomposition-search events, by kind (process-wide).",
                Some(("event", event)),
                counter,
            );
        }
    }

    /// The admission counter for a decoded request.
    pub(crate) fn op_counter(&self, r: &Request) -> &Counter {
        match r {
            Request::Count { .. } => &self.req_count,
            Request::Enumerate { .. } => &self.req_enumerate,
            Request::WidthReport { .. } => &self.req_width_report,
            Request::Stats => &self.req_stats,
            Request::Reload { .. } => &self.req_reload,
            Request::Flush => &self.req_flush,
            Request::Profile { .. } => &self.req_profile,
            Request::Metrics => &self.req_metrics,
            Request::Insert { .. } => &self.req_insert,
            Request::Delete { .. } => &self.req_delete,
            Request::Mutate { .. } => &self.req_mutate,
            Request::Sync { .. } => &self.req_sync,
            Request::History { .. } => &self.req_history,
            Request::Flight { .. } => &self.req_flight,
        }
    }

    /// The registry backing every handle (the history sampler's input).
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The latency histogram for an opcode label, if registered.
    pub(crate) fn op_latency(&self, op: &str) -> Option<&Histogram> {
        self.latency_by_op
            .iter()
            .find(|(label, _)| *label == op)
            .map(|(_, h)| h)
    }

    /// The outcome counter for an error code.
    fn err_counter(&self, code: ErrorCode) -> &Counter {
        match code {
            ErrorCode::Protocol => &self.err_protocol,
            ErrorCode::Parse => &self.err_parse,
            ErrorCode::UnknownDb => &self.err_unknown_db,
            ErrorCode::Plan => &self.err_plan,
            ErrorCode::BudgetExceeded => &self.err_budget_exceeded,
            ErrorCode::Overloaded => &self.err_overloaded,
            ErrorCode::Internal => &self.err_internal,
            ErrorCode::ReadOnly => &self.err_read_only,
        }
    }
}

/// The short opcode label used for span tags and the trace log.
pub(crate) fn op_name(r: &Request) -> &'static str {
    match r {
        Request::Count { .. } => "count",
        Request::Enumerate { .. } => "enumerate",
        Request::WidthReport { .. } => "width_report",
        Request::Stats => "stats",
        Request::Reload { .. } => "reload",
        Request::Flush => "flush",
        Request::Profile { .. } => "profile",
        Request::Metrics => "metrics",
        Request::Insert { .. } => "insert",
        Request::Delete { .. } => "delete",
        Request::Mutate { .. } => "mutate",
        Request::Sync { .. } => "sync",
        Request::History { .. } => "history",
        Request::Flight { .. } => "flight",
    }
}

/// The `--trace-log` sink. Lines are pre-formatted by whoever ran the
/// request (worker or reactor fast path); shards append a whole drain
/// batch per lock acquisition, so the mutex is off the per-request path.
pub(crate) struct TraceSink {
    file: Mutex<std::fs::File>,
}

impl TraceSink {
    /// Appends a batch of newline-terminated JSON lines.
    pub(crate) fn append(&self, batch: &str) {
        let _ = self.file.lock().unwrap().write_all(batch.as_bytes());
    }

    /// Pushes buffered lines to disk on graceful shutdown.
    pub(crate) fn sync(&self) {
        let _ = self.file.lock().unwrap().sync_all();
    }
}

pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) dbs: RwLock<HashMap<String, Arc<DbState>>>,
    pub(crate) plans: PlanCache,
    pub(crate) counts: CountCache,
    /// Level 0: raw query text → canonical form + fingerprint, installed
    /// by workers after parsing. The reactor's fast path probes it so a
    /// warm hit never parses.
    pub(crate) fingerprints: FingerprintCache,
    pub(crate) metrics: Metrics,
    /// Live materialized counts, patched in place by mutations.
    pub(crate) materialized: crate::mutation::MaterializedSet,
    pub(crate) injector: Option<Arc<FaultInjector>>,
    /// Durable root (`--data-dir`): WAL + snapshot configuration shared
    /// by every database; `None` keeps the server memory-only.
    pub(crate) durable_store: Option<crate::durable::DurableStore>,
    pub(crate) stop: AtomicBool,
    /// Open trace-log sink (`--trace-log`).
    pub(crate) trace: Option<TraceSink>,
    /// Monotonic sequence number for trace-log lines.
    trace_seq: AtomicU64,
    /// The flight recorder (`recorder_cap > 0`): every worker request is
    /// speculatively traced and retained here when it proves interesting.
    pub(crate) recorder: Option<Arc<FlightRecorder>>,
    /// The metrics-history ring, fed by the sampler thread.
    pub(crate) history: Option<Arc<MetricsHistory>>,
    /// The stall watchdog; shards and workers register heartbeats here.
    pub(crate) watchdog: Option<Arc<Watchdog>>,
}

impl Shared {
    /// Updates the per-`ErrorCode` observability counters for an outgoing
    /// response. Called once per response, just before it hits the wire.
    pub(crate) fn account(&self, response: &Response) {
        match response {
            Response::Error { code, .. } => self.metrics.err_counter(*code).inc(),
            Response::Count { degraded: true, .. } => self.metrics.degraded.inc(),
            Response::Profile(r) if r.degraded => self.metrics.degraded.inc(),
            _ => {}
        }
    }

    fn stats(&self) -> StatsReply {
        let (plan_hits, plan_misses) = self.plans.counters();
        let (count_hits, count_misses) = self.counts.counters();
        let planner = cqcount_obs::planner::counters();
        let mut dbs: Vec<DbSummary> = self
            .dbs
            .read()
            .unwrap()
            .iter()
            .map(|(name, st)| {
                let (tuples, mutation_seq, resident_bytes, mapped_bytes) = {
                    let db = st.db.read().unwrap();
                    (
                        db.total_tuples() as u64,
                        db.mutation_seq(),
                        db.resident_bytes() as u64,
                        db.mapped_bytes() as u64,
                    )
                };
                DbSummary {
                    name: name.clone(),
                    epoch: st.epoch,
                    fingerprint: st.fingerprint,
                    tuples,
                    mutation_seq,
                    durable_seq: st.durable.as_ref().map_or(0, |d| d.durable_seq()),
                    persisted: st.durable.is_some(),
                    read_only: st.durable.as_ref().is_some_and(|d| d.read_only()),
                    recovered_records: st.durable.as_ref().map_or(0, |d| d.recovered_records),
                    resident_bytes,
                    mapped_bytes,
                }
            })
            .collect();
        dbs.sort_by(|a, b| a.name.cmp(&b.name));
        StatsReply {
            served: self.metrics.served.get(),
            overloaded: self.metrics.err_overloaded.get(),
            plan_hits,
            plan_misses,
            count_hits,
            count_misses,
            malformed: self.metrics.err_protocol.get(),
            budget_exceeded: self.metrics.err_budget_exceeded.get(),
            panicked: self.metrics.panicked.get(),
            reaped: self.metrics.reaped.get(),
            degraded: self.metrics.degraded.get(),
            faults_injected: self.injector.as_ref().map_or(0, |i| i.injected()),
            dbs,
            planner_blocks_solved: planner.blocks_solved.get(),
            planner_memo_hits: planner.memo_hits.get(),
            planner_negative_reuse: planner.negative_reuse.get(),
            planner_candidates: planner.candidates_yielded.get(),
            planner_universes: planner.universes_opened.get(),
            planner_widths_searched: planner.widths_searched.get(),
            mutations_applied: self.metrics.mutations.get(),
            delta_bags_touched: self.metrics.delta_bags_touched.get(),
            delta_fallbacks: self.metrics.delta_fallbacks.get(),
            recorder_retained: self.recorder.as_ref().map_or(0, |r| r.retained()),
            stalled_shards: self.metrics.watchdog_stalled_shards.get(),
            stalled_workers: self.metrics.watchdog_stalled_workers.get(),
            watchdog_stalls: self.metrics.watchdog_stalls.get(),
        }
    }

    /// The flight recorder's latency threshold for one opcode: the live
    /// p99 of that opcode's latency series, floored by the configured
    /// minimum so a fast, healthy opcode doesn't retain its own noise.
    pub(crate) fn retention_threshold_us(&self, op: &str) -> u64 {
        let p99 = self
            .metrics
            .op_latency(op)
            .and_then(|h| h.quantile(0.99))
            .unwrap_or(0);
        p99.max(self.config.recorder_threshold_us)
    }

    /// Renders the metrics registry, refreshing the scrape-time gauges.
    fn render_metrics(&self, queue: &BoundedQueue<Job>) -> String {
        self.metrics.queue_depth.set(queue.len() as u64);
        self.metrics
            .faults_injected
            .set(self.injector.as_ref().map_or(0, |i| i.injected()));
        let read_only = self
            .dbs
            .read()
            .unwrap()
            .values()
            .filter(|st| st.durable.as_ref().is_some_and(|d| d.read_only()))
            .count();
        self.metrics.read_only_dbs.set(read_only as u64);
        self.metrics.registry.render()
    }

    fn install_db(&self, name: &str, db: Database) -> u64 {
        let fingerprint = db.fingerprint();
        let (epoch, state) = {
            let mut dbs = self.dbs.write().unwrap();
            let old = dbs.get(name);
            let epoch = old.map_or(1, |old| old.epoch + 1);
            // Re-use the previous durable handle across reloads: the WAL
            // file and read-only status belong to the *name*, not the
            // epoch. An old-epoch record that slips in before the
            // post-install snapshot truncates the log is discarded at
            // replay by the epoch check — same semantics as the
            // in-memory reload (the old contents vanish).
            let durable = match old {
                Some(old) => old.durable.clone(),
                None => self
                    .durable_store
                    .as_ref()
                    .map(|s| Arc::new(s.open_db(name))),
            };
            let state = Arc::new(DbState {
                db: RwLock::new(db),
                epoch,
                fingerprint,
                durable,
            });
            dbs.insert(name.to_owned(), Arc::clone(&state));
            (epoch, state)
        };
        // The bump made every older-epoch artifact unaddressable; reclaim
        // the memory now instead of waiting for FIFO churn.
        self.counts.purge_epochs_below(name, epoch);
        self.materialized.purge_epochs_below(name, epoch);
        // Persist the new contents before acknowledging the reload: a
        // crash after the `Ok` must recover the *new* database. Under the
        // read lock — a mutation racing the install lands either before
        // the snapshot (included, its WAL record truncated) or after
        // (logged against the fresh, already-truncated WAL).
        if let Some(d) = &state.durable {
            let guard = state.db.read().unwrap();
            match d.sync_and_snapshot(&guard, epoch) {
                Ok(()) => self.metrics.snapshots.inc(),
                Err(e) => d.set_read_only(format!("reload snapshot failed: {e}")),
            }
        }
        epoch
    }

    /// Installs a recovered database at its pre-crash epoch with its
    /// durable handle, folding the recovery evidence into the metrics.
    fn install_recovered(
        &self,
        name: &str,
        rec: crate::snapshot::Recovered,
        handle: crate::durable::DbDurable,
    ) {
        let m = &self.metrics;
        m.wal_replayed.add(rec.replayed);
        m.recovery_snapshots.add(u64::from(rec.snapshot_loaded));
        m.recovery_torn.add(u64::from(rec.torn));
        m.recovery_corrupt
            .add(u64::from(rec.corrupt) + rec.snapshots_skipped);
        m.recovery_truncated_bytes.add(rec.truncated_bytes);
        eprintln!(
            "cqcountd: recovered db {name:?}: epoch {}, seq {}, {} tuples \
             (snapshot: {}, replayed {} records, truncated {} bytes{}{})",
            rec.epoch,
            rec.db.mutation_seq(),
            rec.db.total_tuples(),
            if rec.snapshot_loaded { "yes" } else { "no" },
            rec.replayed,
            rec.truncated_bytes,
            if rec.torn { ", torn tail" } else { "" },
            if rec.corrupt || rec.snapshots_skipped > 0 {
                ", CORRUPT records seen"
            } else {
                ""
            },
        );
        let state = Arc::new(DbState {
            fingerprint: rec.db.fingerprint(),
            db: RwLock::new(rec.db),
            epoch: rec.epoch.max(1),
            durable: Some(Arc::new(handle)),
        });
        self.dbs.write().unwrap().insert(name.to_owned(), state);
    }
}

/// A counting job queued for a worker. The response routes back to the
/// owning reactor shard via `(conn_id, seq)`.
pub(crate) struct Job {
    pub(crate) request: Request,
    /// Connection the request arrived on (shard = `conn_id % nshards`).
    pub(crate) conn_id: u64,
    /// Per-connection request sequence, assigned at decode.
    pub(crate) seq: u64,
    /// Faults drawn for this job at admission (default: none).
    pub(crate) faults: JobFaults,
    /// [`trace::now_ns`] at admission, for the root span's `wait_ns`.
    pub(crate) submitted_ns: u64,
    /// Time the reactor spent decoding the request payload.
    pub(crate) decode_ns: u64,
}

/// A running server. Dropping the handle stops it; [`ServerHandle::shutdown`]
/// does the same explicitly. Shutdown is idempotent and never blocks on the
/// network: reactors wake via their self-pipe regardless of traffic, so the
/// daemon winds down even if the listener has already died.
pub struct ServerHandle {
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<Job>>,
    addr: SocketAddr,
    set: Arc<ReactorSet>,
    reactor_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    /// Sampler + watchdog threads, woken early at shutdown via `aux_stop`.
    aux_threads: Vec<JoinHandle<()>>,
    aux_stop: Arc<(Mutex<bool>, Condvar)>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Installs (or replaces) a database directly, bypassing the protocol.
    pub fn install_db(&self, name: &str, db: Database) -> u64 {
        self.shared.install_db(name, db)
    }

    /// Faults injected so far (0 when no fault profile is active).
    pub fn faults_injected(&self) -> u64 {
        self.shared.injector.as_ref().map_or(0, |i| i.injected())
    }

    /// The fault injector's replayable event log (empty when inactive).
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        self.shared
            .injector
            .as_ref()
            .map_or_else(Vec::new, |i| i.events())
    }

    /// Stops accepting, drains workers, and joins every owned thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Idempotent shutdown core, shared by [`ServerHandle::shutdown`] and
    /// `Drop`. Order matters: workers drain and post their last
    /// completions *before* the reactors are woken, so a final drain on
    /// each shard delivers in-flight replies and flushes buffered trace
    /// lines before the threads exit.
    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        {
            let (lock, cvar) = &*self.aux_stop;
            *lock.lock().unwrap() = true;
            cvar.notify_all();
        }
        self.queue.close();
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        self.set.wake_all();
        for t in self.reactor_threads.drain(..) {
            let _ = t.join();
        }
        for t in self.aux_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(trace) = &self.shared.trace {
            trace.sync();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Resolves `config.reactors`: explicit value, or auto-sized.
fn reactor_count(config: &ServerConfig) -> usize {
    if config.reactors > 0 {
        return config.reactors;
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    (cores / 2).clamp(1, 4)
}

/// Binds, spawns the threads, and returns a handle. `initial` holds the
/// databases served from the start (more can arrive via `RELOAD`).
pub fn serve(
    config: ServerConfig,
    initial: Vec<(String, Database)>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // Non-blocking listener: it joins shard 0's poll set, so accepting is
    // readiness-driven and shutdown needs no wake-up connection.
    listener.set_nonblocking(true)?;
    let injector = config
        .fault_profile
        .is_active()
        .then(|| FaultInjector::new(config.fault_profile.clone(), config.fault_seed));
    // Append, never truncate: a daemon restart must not wipe the trace
    // history a previous run already paid to record.
    let trace = match &config.trace_log {
        Some(path) => Some(TraceSink {
            file: Mutex::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ),
        }),
        None => None,
    };
    let metrics = Metrics::new();
    metrics.attach_planner_counters();
    let materialized = crate::mutation::MaterializedSet::new(config.materialize_cap);
    let plans = PlanCache::with_counters(
        config.plan_cache_cap,
        metrics.plan_hits.clone(),
        metrics.plan_misses.clone(),
        metrics.plan_evictions.clone(),
    );
    let counts = CountCache::with_counters(
        config.count_cache_cap,
        metrics.count_hits.clone(),
        metrics.count_misses.clone(),
        metrics.count_evictions.clone(),
    );
    // Level 0 sized to the larger cache tier it fronts.
    let fingerprints = FingerprintCache::new(config.count_cache_cap.max(config.plan_cache_cap));
    let nshards = reactor_count(&config);
    let durable_store = config.data_dir.clone().map(|dir| {
        let crash = config.crash_plan.clone().or_else(|| {
            (config.fault_profile.label == "crash")
                .then(|| Arc::new(crate::faults::CrashPlan::from_seed(config.fault_seed)))
        });
        crate::durable::DurableStore::new(
            dir,
            config.durability,
            config.snapshot_every,
            config.wal_fail_after,
            crash,
            config.wal_fsync_stall,
        )
    });
    let recorder =
        (config.recorder_cap > 0).then(|| Arc::new(FlightRecorder::new(config.recorder_cap, 256)));
    let history = (config.history_interval_ms > 0).then(|| {
        Arc::new(MetricsHistory::new(
            config.history_cap,
            config.history_interval_ms,
        ))
    });
    let watchdog = (config.watchdog_stall_ms > 0).then(|| {
        Arc::new(Watchdog::new(
            config.watchdog_stall_ms.saturating_mul(1_000_000),
        ))
    });
    let shared = Arc::new(Shared {
        plans,
        counts,
        fingerprints,
        metrics,
        materialized,
        dbs: RwLock::new(HashMap::new()),
        injector,
        durable_store,
        stop: AtomicBool::new(false),
        trace,
        trace_seq: AtomicU64::new(0),
        recorder,
        history,
        watchdog,
        config,
    });
    // Crash recovery comes first and wins over `initial`: a database that
    // lived through mutations has state the boot-time facts file cannot
    // know about. Names only on the command line still install (and get
    // their first snapshot via `install_db`).
    let mut recovered_names = std::collections::HashSet::new();
    if let Some(store) = &shared.durable_store {
        for (name, rec, handle) in store.recover_all()? {
            recovered_names.insert(name.clone());
            shared.install_recovered(&name, rec, handle);
        }
    }
    for (name, db) in initial {
        if !recovered_names.contains(&name) {
            shared.install_db(&name, db);
        }
    }
    let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(shared.config.queue_cap));
    let (set, pipes) = ReactorSet::new(nshards)?;

    let worker_threads: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
        .map(|i| {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            let set = Arc::clone(&set);
            let heartbeat = shared.watchdog.as_ref().map(|dog| {
                dog.register(
                    format!("worker-{i}"),
                    HeartbeatKind::Worker,
                    trace::now_ns(),
                )
            });
            std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    shared.metrics.queue_depth.set(queue.len() as u64);
                    if let Some(hb) = &heartbeat {
                        let now = trace::now_ns();
                        hb.begin_work(now, job_deadline_ns(&shared, &job.request, now));
                    }
                    let (response, trace_line) = catch_unwind(AssertUnwindSafe(|| {
                        if job.faults.panic {
                            panic!("fault injection: forced worker panic");
                        }
                        execute_job(&shared, &job)
                    }))
                    .unwrap_or_else(|_| {
                        shared.metrics.panicked.inc();
                        (
                            Response::Error {
                                code: ErrorCode::Internal,
                                message: "internal error: worker panicked".into(),
                                retry_after_ms: 0,
                            },
                            None,
                        )
                    });
                    if let Some(hb) = &heartbeat {
                        hb.end_work();
                    }
                    set.post_completion(Completion {
                        conn_id: job.conn_id,
                        seq: job.seq,
                        response,
                        trace_line,
                    });
                }
            })
        })
        .collect();

    let aux_stop: Arc<(Mutex<bool>, Condvar)> = Arc::new((Mutex::new(false), Condvar::new()));
    let mut aux_threads = Vec::new();
    if let Some(history) = shared.history.clone() {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&aux_stop);
        let interval = Duration::from_millis(history.interval_ms().max(1));
        aux_threads.push(std::thread::spawn(move || {
            let (lock, cvar) = &*stop;
            let mut stopped = lock.lock().unwrap();
            while !*stopped {
                let (guard, _) = cvar.wait_timeout(stopped, interval).unwrap();
                stopped = guard;
                if *stopped {
                    break;
                }
                history.record(shared.metrics.registry());
                shared.metrics.history_samples.inc();
            }
        }));
    }
    if let Some(watchdog) = shared.watchdog.clone() {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&aux_stop);
        let stall_ms = shared.config.watchdog_stall_ms;
        // Scan a few times per stall window so a flagged member is caught
        // promptly, but never busier than every 10ms.
        let cadence = Duration::from_millis((stall_ms / 4).clamp(10, 250));
        aux_threads.push(std::thread::spawn(move || {
            let (lock, cvar) = &*stop;
            let mut stopped = lock.lock().unwrap();
            while !*stopped {
                let (guard, _) = cvar.wait_timeout(stopped, cadence).unwrap();
                stopped = guard;
                if *stopped {
                    break;
                }
                let report = watchdog.scan(trace::now_ns());
                let m = &shared.metrics;
                m.watchdog_stalled_shards.set(report.stalled_polled);
                m.watchdog_stalled_workers.set(report.stalled_workers);
                for name in &report.newly_stalled {
                    m.watchdog_stalls.inc();
                    if let Some(rec) = &shared.recorder {
                        rec.incident("stall", format!("{name} unresponsive past {stall_ms}ms"));
                        m.recorder_incidents.inc();
                    }
                }
            }
        }));
    }

    let mut listener = Some(listener);
    let reactor_threads: Vec<JoinHandle<()>> = pipes
        .into_iter()
        .enumerate()
        .map(|(shard, pipe)| {
            let cfg = ReactorConfig {
                shard,
                shared: Arc::clone(&shared),
                queue: Arc::clone(&queue),
                set: Arc::clone(&set),
                pipe,
                listener: listener.take(),
            };
            std::thread::spawn(move || run_reactor(cfg))
        })
        .collect();

    Ok(ServerHandle {
        shared,
        queue,
        addr,
        set,
        reactor_threads,
        worker_threads,
        aux_threads,
        aux_stop,
    })
}

/// The watchdog deadline for one job: double the request's wall-clock
/// budget (the grace is folded in here — a job slightly over budget
/// normally errors out on its own; the watchdog fires when it blows well
/// past). Unbudgeted ops (mutations, syncs) rely on the generic
/// busy-too-long rule instead.
fn job_deadline_ns(shared: &Shared, request: &Request, now_ns: u64) -> u64 {
    let budget_ms = match request {
        Request::Count { budget_ms, .. }
        | Request::Profile { budget_ms, .. }
        | Request::Enumerate { budget_ms, .. } => *budget_ms,
        _ => return 0,
    };
    let ms = if budget_ms == 0 {
        shared.config.default_budget_ms
    } else {
        budget_ms
    };
    if ms == 0 {
        return 0;
    }
    now_ns.saturating_add(ms.saturating_mul(2_000_000))
}

/// Answers an admin request inline (`None` for counting work). Admin
/// opcodes bypass admission control: they are cheap and must work
/// *especially* when the server is overloaded. `served` is bumped before
/// the body is built so a `STATS`/`METRICS` snapshot includes itself.
pub(crate) fn handle_admin(
    shared: &Shared,
    queue: &BoundedQueue<Job>,
    request: &Request,
) -> Option<Response> {
    Some(match request {
        Request::Stats => {
            shared.metrics.served.inc();
            Response::Stats(shared.stats())
        }
        Request::Metrics => {
            shared.metrics.served.inc();
            Response::Metrics {
                text: shared.render_metrics(queue),
            }
        }
        Request::Reload { db, text } => {
            shared.metrics.served.inc();
            match parse_database(text) {
                Ok(parsed) => Response::Ok {
                    epoch: shared.install_db(db, parsed),
                },
                Err(e) => Response::Error {
                    code: ErrorCode::Parse,
                    message: e.to_string(),
                    retry_after_ms: 0,
                },
            }
        }
        Request::Flush => {
            shared.metrics.served.inc();
            shared.plans.clear();
            shared.counts.clear();
            shared.fingerprints.clear();
            shared.materialized.clear();
            Response::Ok { epoch: 0 }
        }
        Request::History { since_seq, limit } => {
            shared.metrics.served.inc();
            let limit = if *limit == 0 {
                MAX_HISTORY_SAMPLES
            } else {
                (*limit as usize).min(MAX_HISTORY_SAMPLES)
            };
            match &shared.history {
                Some(history) => {
                    let (next_seq, samples) = history.since(*since_seq, limit);
                    Response::History(HistoryReply {
                        interval_ms: history.interval_ms(),
                        next_seq,
                        samples: samples
                            .into_iter()
                            .map(|s| HistorySampleReply {
                                seq: s.seq,
                                unix_ms: s.unix_ms,
                                uptime_ms: s.uptime_ms,
                                entries: s.entries.into_iter().take(MAX_HISTORY_ENTRIES).collect(),
                            })
                            .collect(),
                    })
                }
                // History disabled: an empty reply with interval 0, not an
                // error — a poller can tell the difference and move on.
                None => Response::History(HistoryReply::default()),
            }
        }
        Request::Flight { limit } => {
            shared.metrics.served.inc();
            let traces_limit = if *limit == 0 {
                MAX_FLIGHT_TRACES
            } else {
                (*limit as usize).min(MAX_FLIGHT_TRACES)
            };
            let incidents_limit = if *limit == 0 {
                MAX_FLIGHT_INCIDENTS
            } else {
                (*limit as usize).min(MAX_FLIGHT_INCIDENTS)
            };
            match &shared.recorder {
                Some(rec) => Response::Flight(FlightReply {
                    traces: rec
                        .traces(traces_limit)
                        .into_iter()
                        .map(|t| FlightTrace {
                            seq: t.seq,
                            op: t.op,
                            reason: t.reason.name().to_owned(),
                            latency_us: t.latency_us,
                            threshold_us: t.threshold_us,
                            unix_ms: t.unix_ms,
                            root: span_node_of(&t.root),
                        })
                        .collect(),
                    incidents: rec
                        .incidents(incidents_limit)
                        .into_iter()
                        .map(|i| FlightIncident {
                            seq: i.seq,
                            kind: i.kind,
                            detail: i.detail,
                            unix_ms: i.unix_ms,
                        })
                        .collect(),
                }),
                None => Response::Flight(FlightReply::default()),
            }
        }
        _ => return None,
    })
}

/// The reply for a counting request bounced by the bounded queue.
pub(crate) fn overload_response(shared: &Shared, queue: &BoundedQueue<Job>) -> Response {
    Response::Error {
        code: ErrorCode::Overloaded,
        message: format!("overloaded: request queue at capacity {}", queue.capacity()),
        retry_after_ms: shared.config.overload_retry_after_ms,
    }
}

/// The warm-hit fast path: answers a counting request on the reactor
/// thread when every required artifact is already cached, without parsing
/// the query or touching the worker queue.
///
/// Admission rules (anything else returns `None` and takes the queue):
///
/// * `COUNT` — the raw text is in the fingerprint cache (level 0) *and*
///   the count cache holds the canonical key at the database's current
///   epoch. Probes use `peek`: a hit is counted, an absence is **not** a
///   miss (the worker's own probe will record the miss), so cache
///   counters are identical to the pre-reactor behavior.
/// * `WIDTH_REPORT` at the default cap — level 0 hit, plan-cache peek
///   hit, and the entry's report slot already computed.
/// * Never `PROFILE` (needs a worker-side trace), never `ENUMERATE`
///   (rows are not cached), and never when the fault injector drew a
///   fault for the job (the caller checks; panics and cap trips must
///   reach a worker to fire).
///
/// Returns the response plus a pre-formatted `--trace-log` line when the
/// sink is active (fast-path hits are still counting requests).
pub(crate) fn try_fast_path(
    shared: &Shared,
    request: &Request,
) -> Option<(Response, Option<String>)> {
    match request {
        Request::Count { db, query, .. } => {
            let fpd = shared.fingerprints.get(query)?;
            let state = shared.dbs.read().unwrap().get(db).cloned()?;
            let key = (fpd.canonical.clone(), db.clone(), state.epoch);
            let value = shared.counts.peek(&key)?;
            Some(fast_traced(shared, "count", move || Response::Count {
                value: value.value.to_string(),
                plan: "cached".into(),
                cached: CacheTier::CountWarm,
                degraded: false,
                fingerprint: fpd.fingerprint,
            }))
        }
        Request::WidthReport { query, cap } => {
            let cap = if *cap == 0 {
                shared.config.width_cap
            } else {
                *cap as usize
            };
            if cap != shared.config.width_cap {
                return None;
            }
            let fpd = shared.fingerprints.get(query)?;
            let entry = shared.plans.peek(&fpd.canonical)?;
            let report = entry.report.get()?.clone();
            Some(fast_traced(shared, "width_report", move || {
                report_reply(&report)
            }))
        }
        _ => None,
    }
}

/// Runs a fast-path reply builder, under a reactor-side trace session
/// when `--trace-log` is active so warm hits still produce a `request`
/// root line (with a `server.cache_probe` hit child).
fn fast_traced(
    shared: &Shared,
    op: &'static str,
    build: impl FnOnce() -> Response,
) -> (Response, Option<String>) {
    if shared.trace.is_none() {
        return (build(), None);
    }
    let _session = trace::TraceSession::begin();
    let root = trace::span("request");
    let root_id = root.id();
    root.tag("op", op);
    let probe = trace::span("server.cache_probe");
    probe.tag("result", "hit");
    drop(probe);
    let response = build();
    drop(root);
    let tree = trace::build_tree(trace::collect(root_id), root_id);
    let line = tree.map(|t| {
        let seq = shared.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut line = String::new();
        write_trace_json(&mut line, seq, op, &t);
        line.push('\n');
        line
    });
    (response, line)
}

/// Ops that run on workers (as opposed to inline admin ops). Mutations
/// are worker ops: they take the database write lock and patch
/// materializations, which must never stall a reactor shard.
pub(crate) fn counting_op(r: &Request) -> bool {
    matches!(
        r,
        Request::Count { .. }
            | Request::Enumerate { .. }
            | Request::WidthReport { .. }
            | Request::Profile { .. }
            | Request::Insert { .. }
            | Request::Delete { .. }
            | Request::Mutate { .. }
            | Request::Sync { .. }
    )
}

/// Runs one queued job on a worker, under a `request` root span when a
/// trace consumer exists (a `PROFILE` request or an active `--trace-log`).
///
/// The root opens *on the worker* so the planner/kernel/pool spans nest
/// under it via the thread-local stack; queue wait and payload decode are
/// attached as root counters (`wait_ns`, `decode_ns`) because those
/// stretches happened before the root existed.
fn execute_job(shared: &Shared, job: &Job) -> (Response, Option<String>) {
    let profiling = matches!(job.request, Request::Profile { .. });
    // The flight recorder traces *every* worker request speculatively:
    // the session arms the thread-local rings, and the verdict below
    // decides whether the collected tree is retained or dropped.
    let _session = (profiling || shared.recorder.is_some() || shared.trace.is_some())
        .then(cqcount_obs::trace::TraceSession::begin);
    let root = trace::span("request");
    let root_id = root.id();
    let op = op_name(&job.request);
    root.tag("op", op);
    root.add("wait_ns", trace::now_ns().saturating_sub(job.submitted_ns));
    root.add("decode_ns", job.decode_ns);
    let fallbacks_before = shared.metrics.delta_fallbacks.get();
    let response = run_job(shared, &job.request, job.faults);
    drop(root);
    if root_id.is_none() {
        return (response, None);
    }
    let tree = trace::build_tree(trace::collect(root_id), root_id);
    if let (Some(recorder), Some(tree)) = (&shared.recorder, &tree) {
        let latency_us = trace::now_ns().saturating_sub(job.submitted_ns) / 1_000;
        let threshold_us = shared.retention_threshold_us(op);
        let delta_fault = shared.metrics.delta_fallbacks.get() > fallbacks_before;
        if let Some(reason) = retain_reason(&response, delta_fault, latency_us, threshold_us) {
            shared.metrics.recorder_retained.inc();
            recorder.retain(op, reason, latency_us, threshold_us, tree.clone());
        }
    }
    let mut trace_line = None;
    if let (Some(_sink), Some(tree)) = (&shared.trace, &tree) {
        let seq = shared.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut line = String::new();
        write_trace_json(&mut line, seq, op, tree);
        line.push('\n');
        trace_line = Some(line);
    }
    if !profiling {
        return (response, trace_line);
    }
    let response = match response {
        Response::Count {
            value,
            plan,
            cached,
            degraded,
            fingerprint,
        } => {
            let (total_ns, root_node) = match tree {
                Some(t) => (t.record.duration_ns(), span_node_of(&t)),
                // Ring overflow dropped the root; reply with an empty tree
                // rather than failing the count.
                None => (0, SpanNode::default()),
            };
            Response::Profile(ProfileReply {
                value,
                plan,
                cached,
                degraded,
                fingerprint,
                total_ns,
                dropped: trace::dropped(),
                root: root_node,
            })
        }
        other => other,
    };
    (response, trace_line)
}

/// The flight-recorder verdict for one finished request. Outcome reasons
/// (errors, degradation, delta fallback) outrank `Slow`: a request that is
/// both broken *and* slow files under what broke, which is what an
/// operator greps for.
fn retain_reason(
    response: &Response,
    delta_fault: bool,
    latency_us: u64,
    threshold_us: u64,
) -> Option<RetainReason> {
    match response {
        Response::Error { code, .. } => {
            return Some(if *code == ErrorCode::ReadOnly {
                RetainReason::ReadOnly
            } else {
                RetainReason::Error
            });
        }
        Response::Count { degraded: true, .. } => return Some(RetainReason::Degraded),
        Response::Profile(p) if p.degraded => return Some(RetainReason::Degraded),
        _ => {}
    }
    if delta_fault {
        return Some(RetainReason::DeltaFault);
    }
    (latency_us > threshold_us).then_some(RetainReason::Slow)
}

/// Converts a collected span tree into the wire form: times rebased to the
/// root's start, node count and depth clamped to the protocol caps.
fn span_node_of(tree: &trace::TreeNode) -> SpanNode {
    fn convert(node: &trace::TreeNode, base: u64, depth: usize, budget: &mut usize) -> SpanNode {
        *budget -= 1;
        let rec = &node.record;
        let mut children = Vec::new();
        if depth + 1 < MAX_SPAN_DEPTH {
            for c in &node.children {
                if *budget == 0 {
                    break;
                }
                children.push(convert(c, base, depth + 1, budget));
            }
        }
        SpanNode {
            name: rec.name.to_owned(),
            start_ns: rec.start_ns.saturating_sub(base),
            duration_ns: rec.duration_ns(),
            counters: rec
                .counters
                .iter()
                .take(MAX_SPAN_FIELDS)
                .map(|(k, v)| ((*k).to_owned(), *v))
                .collect(),
            tags: rec
                .tags
                .iter()
                .take(MAX_SPAN_FIELDS)
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
            children,
        }
    }
    let mut budget = MAX_SPAN_NODES;
    convert(tree, tree.record.start_ns, 0, &mut budget)
}

/// Minimal JSON string escaping for trace-log lines (names and tags are
/// ASCII identifiers in practice, but tags can carry arbitrary text).
fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// One trace-log line: `{"seq":N,"op":"count","total_ns":T,"root":{...}}`.
/// Node order is the tree's (children by start time), so two runs of the
/// same seeded workload produce structurally identical lines.
fn write_trace_json(out: &mut String, seq: u64, op: &str, tree: &trace::TreeNode) {
    use std::fmt::Write as _;
    fn node(out: &mut String, n: &trace::TreeNode, base: u64) {
        use std::fmt::Write as _;
        let rec = &n.record;
        out.push_str("{\"name\":\"");
        json_escape(out, rec.name);
        let _ = write!(
            out,
            "\",\"start_ns\":{},\"duration_ns\":{}",
            rec.start_ns.saturating_sub(base),
            rec.duration_ns()
        );
        if !rec.counters.is_empty() {
            out.push_str(",\"counters\":{");
            for (i, (k, v)) in rec.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(out, k);
                let _ = write!(out, "\":{v}");
            }
            out.push('}');
        }
        if !rec.tags.is_empty() {
            out.push_str(",\"tags\":{");
            for (i, (k, v)) in rec.tags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                json_escape(out, k);
                out.push_str("\":\"");
                json_escape(out, v);
                out.push('"');
            }
            out.push('}');
        }
        if !n.children.is_empty() {
            out.push_str(",\"children\":[");
            for (i, c) in n.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                node(out, c, base);
            }
            out.push(']');
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "{{\"seq\":{seq},\"op\":\"{op}\",\"total_ns\":{},\"root\":",
        tree.record.duration_ns()
    );
    node(out, tree, tree.record.start_ns);
    out.push('}');
}

fn plan_error_response(e: PlanError) -> Response {
    let code = match e {
        PlanError::BudgetExceeded { .. } => ErrorCode::BudgetExceeded,
        _ => ErrorCode::Plan,
    };
    Response::Error {
        code,
        message: e.to_string(),
        retry_after_ms: 0,
    }
}

/// Fetches (or computes and installs) the level-1 plan entry for `q`.
/// Returns the entry and whether it was a cache hit.
///
/// Planning runs under its own budget when `plan_budget_ms` is set,
/// otherwise it shares `request_budget`. A plan whose decomposition search
/// was cut short is **degraded**: it is returned for this request but
/// never cached, so a later request with headroom re-plans from scratch.
fn plan_for(
    shared: &Shared,
    canonical: &str,
    q: &ConjunctiveQuery,
    request_budget: &Budget,
) -> (Arc<PlanEntry>, bool) {
    let sp = trace::span("server.plan");
    if let Some(entry) = shared.plans.get(canonical) {
        sp.tag("cache", "hit");
        return (entry, true);
    }
    sp.tag("cache", "miss");
    let plan_budget = match shared.config.plan_budget_ms {
        Some(ms) => Budget::with_deadline(Duration::from_millis(ms)),
        None => request_budget.clone(),
    };
    let entry = Arc::new(PlanEntry {
        prepared: prepare_plan_budgeted(q, shared.config.width_cap, &plan_budget),
        report: OnceLock::new(),
    });
    if !entry.prepared.degraded {
        shared
            .plans
            .insert(canonical.to_owned(), Arc::clone(&entry));
    }
    (entry, false)
}

fn run_job(shared: &Shared, request: &Request, faults: JobFaults) -> Response {
    match request {
        Request::Count {
            db,
            query,
            budget_ms,
        }
        | Request::Profile {
            db,
            query,
            budget_ms,
        } => run_count(shared, db, query, *budget_ms, faults),
        Request::Enumerate {
            db,
            query,
            limit,
            budget_ms,
        } => run_enumerate(shared, db, query, *limit, *budget_ms, faults),
        Request::WidthReport { query, cap } => run_width_report(shared, query, *cap),
        Request::Insert { .. } | Request::Delete { .. } | Request::Mutate { .. } => {
            let (db, ops) = crate::mutation::ops_of(request).expect("mutation request");
            crate::mutation::run_mutation(shared, db, &ops)
        }
        Request::Sync { db } => crate::mutation::run_sync(shared, db),
        // Admin requests are answered inline by the connection thread.
        _ => Response::Error {
            code: ErrorCode::Internal,
            message: "internal error: admin request reached a worker".into(),
            retry_after_ms: 0,
        },
    }
}

fn budget_for(shared: &Shared, budget_ms: u64, faults: JobFaults) -> Budget {
    let ms = if budget_ms == 0 {
        shared.config.default_budget_ms
    } else {
        budget_ms
    };
    let budget = if ms == 0 && !faults.cap_trip {
        Budget::unlimited()
    } else if ms == 0 {
        Budget::cancellable()
    } else {
        Budget::with_deadline(Duration::from_millis(ms))
    };
    if faults.cap_trip {
        // Simulate a resource cap firing mid-request: the budget trips
        // before the job starts and the client sees `BudgetExceeded`.
        budget.cancel();
    }
    budget
}

pub(crate) fn lookup_db(shared: &Shared, name: &str) -> Result<Arc<DbState>, Box<Response>> {
    shared
        .dbs
        .read()
        .unwrap()
        .get(name)
        .cloned()
        .ok_or_else(|| {
            Box::new(Response::Error {
                code: ErrorCode::UnknownDb,
                message: format!("unknown database {name:?}"),
                retry_after_ms: 0,
            })
        })
}

fn run_count(
    shared: &Shared,
    db_name: &str,
    query: &str,
    budget_ms: u64,
    faults: JobFaults,
) -> Response {
    let parse_sp = trace::span("server.parse");
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
                retry_after_ms: 0,
            }
        }
    };
    let fp = fingerprint(&q);
    drop(parse_sp);
    // Install the level-0 mapping so the reactor's fast path can answer
    // this exact text without parsing next time.
    shared.fingerprints.insert(
        query.to_owned(),
        Arc::new(Fingerprinted {
            canonical: fp.text.clone(),
            fingerprint: fp.hash,
        }),
    );
    let state = match lookup_db(shared, db_name) {
        Ok(s) => s,
        Err(resp) => return *resp,
    };
    // Counts hold the read lock end to end: the data cannot shift under
    // the count, and the cache insert below is ordered against mutation
    // sweeps (which run under the write lock).
    let db = state.db.read().unwrap();

    // Level 2: an exact count cached under the current epoch.
    let probe_sp = trace::span("server.cache_probe");
    let key = (fp.text.clone(), db_name.to_owned(), state.epoch);
    let warm = shared.counts.get(&key);
    probe_sp.tag("result", if warm.is_some() { "hit" } else { "miss" });
    drop(probe_sp);
    if let Some(value) = warm {
        return Response::Count {
            value: value.value.to_string(),
            plan: "cached".into(),
            cached: CacheTier::CountWarm,
            degraded: false,
            fingerprint: fp.hash,
        };
    }

    // Level 1: the prepared plan (degraded plans skip the cache).
    let budget = budget_for(shared, budget_ms, faults);
    let (entry, plan_hit) = plan_for(shared, &fp.text, &q, &budget);
    match count_prepared_resilient(&q, &db, &entry.prepared, &budget) {
        Ok((n, plan, degraded)) => {
            // Exact regardless of degradation, so always cacheable.
            shared.counts.insert(
                key,
                Arc::new(crate::cache::CountInfo {
                    value: n.clone(),
                    rels: crate::mutation::query_relations(&q),
                }),
            );
            if !degraded {
                crate::mutation::maybe_materialize(shared, &q, &db, &fp.text, db_name, state.epoch);
            }
            let plan_label = match plan {
                cqcount_core::Plan::SharpPipeline { width } => {
                    format!("sharp-pipeline(width={width})")
                }
                cqcount_core::Plan::Hybrid { width, bound, .. } => {
                    format!("hybrid(width={width},bound={bound})")
                }
                cqcount_core::Plan::BruteForce { .. } => "brute-force".into(),
            };
            if degraded {
                // At this point the worker's span stack has unwound to the
                // root `request` span, so the reason tags the root — a
                // profiled degraded reply carries it on the tree's root.
                trace::tag_current(
                    "degraded",
                    format!("plan budget exhausted; fell back to {plan_label}"),
                );
            }
            Response::Count {
                value: n.to_string(),
                plan: plan_label,
                cached: if plan_hit {
                    CacheTier::PlanWarm
                } else {
                    CacheTier::Cold
                },
                degraded,
                fingerprint: fp.hash,
            }
        }
        Err(e) => plan_error_response(e),
    }
}

fn run_enumerate(
    shared: &Shared,
    db_name: &str,
    query: &str,
    limit: u64,
    budget_ms: u64,
    faults: JobFaults,
) -> Response {
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
                retry_after_ms: 0,
            }
        }
    };
    let state = match lookup_db(shared, db_name) {
        Ok(s) => s,
        Err(resp) => return *resp,
    };
    let db = state.db.read().unwrap();
    let budget = budget_for(shared, budget_ms, faults);
    let cap = (limit as usize).min(shared.config.max_enumerate);
    let free: Vec<Var> = q.free().into_iter().collect();
    // Any query decomposes at width = atom count, so enumeration is total.
    let width = shared.config.width_cap.max(q.atoms().len());
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut truncated = false;
    let mut tripped = false;
    let ok = for_each_answer(&q, &db, width, |answer| {
        if budget.is_exceeded() {
            tripped = true;
            return false;
        }
        if rows.len() >= cap {
            truncated = true;
            return false;
        }
        rows.push(
            free.iter()
                .map(|v| db.interner().name(answer[v]).to_owned())
                .collect(),
        );
        true
    });
    if tripped {
        return plan_error_response(PlanError::BudgetExceeded {
            elapsed_ms: budget.elapsed_ms().max(1),
        });
    }
    if !ok {
        return Response::Error {
            code: ErrorCode::Plan,
            message: "no decomposition found for enumeration".into(),
            retry_after_ms: 0,
        };
    }
    Response::Rows { rows, truncated }
}

fn run_width_report(shared: &Shared, query: &str, cap: u64) -> Response {
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
                retry_after_ms: 0,
            }
        }
    };
    let cap = if cap == 0 {
        shared.config.width_cap
    } else {
        cap as usize
    };
    let fp = fingerprint(&q);
    shared.fingerprints.insert(
        query.to_owned(),
        Arc::new(Fingerprinted {
            canonical: fp.text.clone(),
            fingerprint: fp.hash,
        }),
    );
    // Reports at the default cap share the plan entry's compute-once slot
    // (the reactor fast path reads the same slot lock-free); other caps
    // are computed fresh (rare, operator-driven).
    let report = if cap == shared.config.width_cap {
        // Width reports are operator-driven and cheap relative to counting;
        // plan under an unlimited budget so the cached entry is never
        // degraded.
        let (entry, _) = plan_for(shared, &fp.text, &q, &Budget::unlimited());
        entry
            .report
            .get_or_init(|| WidthReport::analyze(&q, cap))
            .clone()
    } else {
        WidthReport::analyze(&q, cap)
    };
    report_reply(&report)
}

/// Converts an analyzed [`WidthReport`] into its wire reply.
fn report_reply(report: &WidthReport) -> Response {
    Response::Report(ReportReply {
        acyclic: report.acyclic,
        ghw: report.ghw.map(|w| w as u64),
        sharp_width: report.sharp_width.map(|w| w as u64),
        star_size: report.star_size as u64,
        atoms: report.atoms as u64,
        vars: report.vars as u64,
        free: report.free as u64,
        cap: report.cap as u64,
    })
}
