//! The daemon: TCP accept loop, admission control, worker pool, caches.
//!
//! Threading model (std-only):
//!
//! * one **accept** thread owns the listener and spawns a reader thread
//!   per connection;
//! * each **connection** thread decodes frames; admin requests (`STATS`,
//!   `RELOAD`, `FLUSH`) are answered inline so operators can observe and
//!   heal an overloaded server, while counting work (`COUNT`,
//!   `ENUMERATE`, `WIDTH_REPORT`) is pushed onto a *bounded* queue — a
//!   full queue yields an immediate `Overloaded` error frame, never
//!   buffering;
//! * `workers` **worker** threads pop jobs, run them under the request's
//!   wall-clock [`Budget`], and send the response back to the connection
//!   thread over a per-job channel. Worker panics are caught, counted, and
//!   reported as `Internal` errors — a malformed request cannot take the
//!   daemon down.
//!
//! Resilience (PR 3): connections carry read/write deadlines and idle
//! peers are reaped; `Overloaded` errors carry a `retry_after_ms` hint;
//! when decomposition planning blows its budget the count *degrades* to a
//! cheaper exact plan instead of erroring (`degraded: true` in the reply);
//! and the whole stack can be wrapped in a seeded [`FaultInjector`]
//! (`--fault-profile`) for replayable chaos runs.

use crate::cache::{CountCache, PlanCache, PlanEntry};
use crate::faults::{ConnFaults, FaultEvent, FaultInjector, JobFaults};
use crate::protocol::{
    read_frame, CacheTier, DbSummary, ErrorCode, Frame, ReportReply, Request, Response, StatsReply,
};
use cqcount_core::planner::{
    count_prepared_resilient, prepare_plan_budgeted, WidthReport, WIDTH_CAP,
};
use cqcount_core::{for_each_answer, Budget, PlanError};
use cqcount_exec::BoundedQueue;
use cqcount_query::fingerprint::fingerprint;
use cqcount_query::{parse_database, parse_query, ConjunctiveQuery, Var};
use cqcount_relational::Database;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything tunable about a server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port — the tests' mode).
    pub addr: String,
    /// Worker threads executing counting jobs.
    pub workers: usize,
    /// Bounded request-queue capacity; beyond it, `Overloaded`.
    pub queue_cap: usize,
    /// Default per-request wall-clock budget (requests may lower or raise
    /// it; `0` in a request means this default).
    pub default_budget_ms: u64,
    /// Hard cap on rows an `ENUMERATE` may return.
    pub max_enumerate: usize,
    /// Width cap for plan searches and width reports.
    pub width_cap: usize,
    /// Plan-cache capacity (level 1).
    pub plan_cache_cap: usize,
    /// Count-cache capacity (level 2).
    pub count_cache_cap: usize,
    /// Per-connection read deadline in milliseconds (0 = none). A peer
    /// idle past this is reaped — the connection closes without a reply.
    pub read_timeout_ms: u64,
    /// Per-connection write deadline in milliseconds (0 = none); protects
    /// workers from clients that stop draining their socket.
    pub write_timeout_ms: u64,
    /// The `retry_after_ms` hint attached to `Overloaded` errors.
    pub overload_retry_after_ms: u64,
    /// Wall-clock budget for *planning* (the decomposition search).
    /// `None` shares the request budget; `Some(ms)` gives planning its own
    /// slice (`Some(0)` forces immediate degradation — the chaos tests'
    /// deterministic trigger).
    pub plan_budget_ms: Option<u64>,
    /// Fault-injection profile (default [`crate::faults::FaultProfile::off`]).
    pub fault_profile: crate::faults::FaultProfile,
    /// Seed for the fault injector (`CQCOUNT_FAULT_SEED`).
    pub fault_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            default_budget_ms: 10_000,
            max_enumerate: 10_000,
            width_cap: WIDTH_CAP,
            plan_cache_cap: 1024,
            count_cache_cap: 4096,
            read_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            overload_retry_after_ms: 100,
            plan_budget_ms: None,
            fault_profile: crate::faults::FaultProfile::off(),
            fault_seed: 0,
        }
    }
}

/// A loaded database at a specific epoch. Immutable once installed —
/// `RELOAD` swaps in a fresh `Arc`, so in-flight counts keep their
/// snapshot.
#[derive(Debug)]
pub struct DbState {
    /// The instance.
    pub db: Database,
    /// Bumped by every reload; part of the count-cache key.
    pub epoch: u64,
    /// Content fingerprint (observability only — correctness comes from
    /// the epoch).
    pub fingerprint: u64,
}

struct Shared {
    config: ServerConfig,
    dbs: RwLock<HashMap<String, Arc<DbState>>>,
    plans: PlanCache,
    counts: CountCache,
    served: AtomicU64,
    overloaded: AtomicU64,
    malformed: AtomicU64,
    budget_exceeded: AtomicU64,
    panicked: AtomicU64,
    reaped: AtomicU64,
    degraded: AtomicU64,
    injector: Option<Arc<FaultInjector>>,
    stop: AtomicBool,
}

impl Shared {
    /// Updates the per-`ErrorCode` observability counters for an outgoing
    /// response. Called once per response, just before it hits the wire.
    fn account(&self, response: &Response) {
        match response {
            Response::Error {
                code: ErrorCode::Protocol,
                ..
            } => {
                self.malformed.fetch_add(1, Ordering::Relaxed);
            }
            Response::Error {
                code: ErrorCode::BudgetExceeded,
                ..
            } => {
                self.budget_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            Response::Count { degraded: true, .. } => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    fn stats(&self) -> StatsReply {
        let (plan_hits, plan_misses) = self.plans.counters();
        let (count_hits, count_misses) = self.counts.counters();
        let mut dbs: Vec<DbSummary> = self
            .dbs
            .read()
            .unwrap()
            .iter()
            .map(|(name, st)| DbSummary {
                name: name.clone(),
                epoch: st.epoch,
                fingerprint: st.fingerprint,
                tuples: st.db.total_tuples() as u64,
            })
            .collect();
        dbs.sort_by(|a, b| a.name.cmp(&b.name));
        StatsReply {
            served: self.served.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            plan_hits,
            plan_misses,
            count_hits,
            count_misses,
            malformed: self.malformed.load(Ordering::Relaxed),
            budget_exceeded: self.budget_exceeded.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            reaped: self.reaped.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            faults_injected: self.injector.as_ref().map_or(0, |i| i.injected()),
            dbs,
        }
    }

    fn install_db(&self, name: &str, db: Database) -> u64 {
        let fingerprint = db.fingerprint();
        let mut dbs = self.dbs.write().unwrap();
        let epoch = dbs.get(name).map_or(1, |old| old.epoch + 1);
        dbs.insert(
            name.to_owned(),
            Arc::new(DbState {
                db,
                epoch,
                fingerprint,
            }),
        );
        epoch
    }
}

/// A counting job queued for a worker.
struct Job {
    request: Request,
    reply: mpsc::Sender<Response>,
    /// Faults drawn for this job at admission (default: none).
    faults: JobFaults,
}

/// A running server. Dropping the handle stops it; [`ServerHandle::shutdown`]
/// does the same explicitly. Shutdown is idempotent and never blocks on the
/// network: the accept loop polls a stop flag over a non-blocking listener,
/// so it winds down even if the listener has already died.
pub struct ServerHandle {
    shared: Arc<Shared>,
    queue: Arc<BoundedQueue<Job>>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Installs (or replaces) a database directly, bypassing the protocol.
    pub fn install_db(&self, name: &str, db: Database) -> u64 {
        self.shared.install_db(name, db)
    }

    /// Faults injected so far (0 when no fault profile is active).
    pub fn faults_injected(&self) -> u64 {
        self.shared.injector.as_ref().map_or(0, |i| i.injected())
    }

    /// The fault injector's replayable event log (empty when inactive).
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        self.shared
            .injector
            .as_ref()
            .map_or_else(Vec::new, |i| i.events())
    }

    /// Stops accepting, drains workers, and joins every owned thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    /// Idempotent shutdown core, shared by [`ServerHandle::shutdown`] and
    /// `Drop`. Never blocks on the network: the accept thread notices the
    /// stop flag within its poll interval regardless of traffic, and a
    /// thread that already died joins immediately.
    fn shutdown_inner(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.queue.close();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Binds, spawns the threads, and returns a handle. `initial` holds the
/// databases served from the start (more can arrive via `RELOAD`).
pub fn serve(
    config: ServerConfig,
    initial: Vec<(String, Database)>,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    // Non-blocking listener: the accept loop polls the stop flag instead
    // of relying on a wake-up connection, so shutdown works even when the
    // listener is wedged or already dead.
    listener.set_nonblocking(true)?;
    let injector = config
        .fault_profile
        .is_active()
        .then(|| FaultInjector::new(config.fault_profile.clone(), config.fault_seed));
    let shared = Arc::new(Shared {
        plans: PlanCache::new(config.plan_cache_cap),
        counts: CountCache::new(config.count_cache_cap),
        dbs: RwLock::new(HashMap::new()),
        served: AtomicU64::new(0),
        overloaded: AtomicU64::new(0),
        malformed: AtomicU64::new(0),
        budget_exceeded: AtomicU64::new(0),
        panicked: AtomicU64::new(0),
        reaped: AtomicU64::new(0),
        degraded: AtomicU64::new(0),
        injector,
        stop: AtomicBool::new(false),
        config,
    });
    for (name, db) in initial {
        shared.install_db(&name, db);
    }
    let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(shared.config.queue_cap));

    let worker_threads: Vec<JoinHandle<()>> = (0..shared.config.workers.max(1))
        .map(|_| {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                while let Some(job) = queue.pop() {
                    let resp = catch_unwind(AssertUnwindSafe(|| {
                        if job.faults.panic {
                            panic!("fault injection: forced worker panic");
                        }
                        run_job(&shared, &job.request, job.faults)
                    }))
                    .unwrap_or_else(|_| {
                        shared.panicked.fetch_add(1, Ordering::Relaxed);
                        Response::Error {
                            code: ErrorCode::Internal,
                            message: "internal error: worker panicked".into(),
                            retry_after_ms: 0,
                        }
                    });
                    let _ = job.reply.send(resp);
                }
            })
        })
        .collect();

    let accept_thread = {
        let queue = Arc::clone(&queue);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            if shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
                Err(_) => {
                    // Transient accept errors (EMFILE, aborted handshakes)
                    // should not kill the loop; back off and re-check stop.
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            };
            // Accepted sockets may inherit non-blocking mode; per-stream
            // deadlines come from timeouts, not O_NONBLOCK.
            if stream.set_nonblocking(false).is_err() {
                continue;
            }
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || serve_stream(stream, &shared, &queue));
        })
    };

    Ok(ServerHandle {
        shared,
        queue,
        addr,
        accept_thread: Some(accept_thread),
        worker_threads,
    })
}

/// Applies deadlines and (optionally) the fault injector to an accepted
/// stream, then runs the frame loop over the wrapped halves.
fn serve_stream(stream: TcpStream, shared: &Shared, queue: &BoundedQueue<Job>) {
    let timeout = |ms: u64| (ms > 0).then(|| Duration::from_millis(ms));
    let _ = stream.set_read_timeout(timeout(shared.config.read_timeout_ms));
    let _ = stream.set_write_timeout(timeout(shared.config.write_timeout_ms));
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    match &shared.injector {
        Some(injector) => {
            let conn = injector.connection();
            serve_connection(
                std::io::BufReader::new(conn.wrap(read_half)),
                std::io::BufWriter::new(conn.wrap(stream)),
                Some(conn),
                shared,
                queue,
            );
        }
        None => serve_connection(
            std::io::BufReader::new(read_half),
            std::io::BufWriter::new(stream),
            None,
            shared,
            queue,
        ),
    }
}

/// Is this I/O error a read/write deadline expiring? (Unix reports
/// `WouldBlock` for socket timeouts, Windows `TimedOut`.)
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn serve_connection<R: Read, W: Write>(
    mut reader: R,
    mut writer: W,
    conn: Option<Arc<ConnFaults>>,
    shared: &Shared,
    queue: &BoundedQueue<Job>,
) {
    loop {
        let frame: Frame = match read_frame(&mut reader) {
            Ok(Some(f)) => f,
            Ok(None) => return, // clean close
            Err(e) if is_timeout(&e) => {
                // Idle or stalled peer: reap the connection. No reply — a
                // peer that stopped talking mid-frame cannot parse one.
                shared.reaped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(e) => {
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("protocol error: {e}"),
                    retry_after_ms: 0,
                };
                shared.account(&resp);
                let _ = resp.write_to(&mut writer);
                return;
            }
        };
        let request = match Request::decode(&frame) {
            Ok(r) => r,
            Err(e) => {
                let resp = Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("protocol error: {e}"),
                    retry_after_ms: 0,
                };
                shared.account(&resp);
                if resp.write_to(&mut writer).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            // Admin requests bypass admission control: they are cheap and
            // must work *especially* when the server is overloaded.
            Request::Stats => {
                shared.served.fetch_add(1, Ordering::Relaxed);
                Response::Stats(shared.stats())
            }
            Request::Reload { ref db, ref text } => {
                shared.served.fetch_add(1, Ordering::Relaxed);
                match parse_database(text) {
                    Ok(parsed) => Response::Ok {
                        epoch: shared.install_db(db, parsed),
                    },
                    Err(e) => Response::Error {
                        code: ErrorCode::Parse,
                        message: e.to_string(),
                        retry_after_ms: 0,
                    },
                }
            }
            Request::Flush => {
                shared.served.fetch_add(1, Ordering::Relaxed);
                shared.plans.clear();
                shared.counts.clear();
                Response::Ok { epoch: 0 }
            }
            // Counting work goes through the bounded queue. Faults for the
            // job (forced panic / cap trip) are drawn here, at admission,
            // so one lane of the connection's RNG decides them in order.
            other => {
                let (tx, rx) = mpsc::channel();
                let faults = conn.as_ref().map_or_else(JobFaults::default, |c| {
                    if counting_op(&other) {
                        c.job_faults()
                    } else {
                        JobFaults::default()
                    }
                });
                match queue.try_push(Job {
                    request: other,
                    reply: tx,
                    faults,
                }) {
                    Ok(()) => match rx.recv() {
                        Ok(resp) => {
                            shared.served.fetch_add(1, Ordering::Relaxed);
                            resp
                        }
                        Err(_) => Response::Error {
                            code: ErrorCode::Internal,
                            message: "internal error: worker dropped the job".into(),
                            retry_after_ms: 0,
                        },
                    },
                    Err(_) => {
                        shared.overloaded.fetch_add(1, Ordering::Relaxed);
                        Response::Error {
                            code: ErrorCode::Overloaded,
                            message: format!(
                                "overloaded: request queue at capacity {}",
                                queue.capacity()
                            ),
                            retry_after_ms: shared.config.overload_retry_after_ms,
                        }
                    }
                }
            }
        };
        shared.account(&response);
        if response.write_to(&mut writer).is_err() {
            return;
        }
    }
}

/// Ops that run on workers (as opposed to inline admin ops).
fn counting_op(r: &Request) -> bool {
    matches!(
        r,
        Request::Count { .. } | Request::Enumerate { .. } | Request::WidthReport { .. }
    )
}

fn plan_error_response(e: PlanError) -> Response {
    let code = match e {
        PlanError::BudgetExceeded { .. } => ErrorCode::BudgetExceeded,
        _ => ErrorCode::Plan,
    };
    Response::Error {
        code,
        message: e.to_string(),
        retry_after_ms: 0,
    }
}

/// Fetches (or computes and installs) the level-1 plan entry for `q`.
/// Returns the entry and whether it was a cache hit.
///
/// Planning runs under its own budget when `plan_budget_ms` is set,
/// otherwise it shares `request_budget`. A plan whose decomposition search
/// was cut short is **degraded**: it is returned for this request but
/// never cached, so a later request with headroom re-plans from scratch.
fn plan_for(
    shared: &Shared,
    canonical: &str,
    q: &ConjunctiveQuery,
    request_budget: &Budget,
) -> (Arc<PlanEntry>, bool) {
    if let Some(entry) = shared.plans.get(canonical) {
        return (entry, true);
    }
    let plan_budget = match shared.config.plan_budget_ms {
        Some(ms) => Budget::with_deadline(Duration::from_millis(ms)),
        None => request_budget.clone(),
    };
    let entry = Arc::new(PlanEntry {
        prepared: prepare_plan_budgeted(q, shared.config.width_cap, &plan_budget),
        report: Mutex::new(None),
    });
    if !entry.prepared.degraded {
        shared
            .plans
            .insert(canonical.to_owned(), Arc::clone(&entry));
    }
    (entry, false)
}

fn run_job(shared: &Shared, request: &Request, faults: JobFaults) -> Response {
    match request {
        Request::Count {
            db,
            query,
            budget_ms,
        } => run_count(shared, db, query, *budget_ms, faults),
        Request::Enumerate {
            db,
            query,
            limit,
            budget_ms,
        } => run_enumerate(shared, db, query, *limit, *budget_ms, faults),
        Request::WidthReport { query, cap } => run_width_report(shared, query, *cap),
        // Admin requests are answered inline by the connection thread.
        _ => Response::Error {
            code: ErrorCode::Internal,
            message: "internal error: admin request reached a worker".into(),
            retry_after_ms: 0,
        },
    }
}

fn budget_for(shared: &Shared, budget_ms: u64, faults: JobFaults) -> Budget {
    let ms = if budget_ms == 0 {
        shared.config.default_budget_ms
    } else {
        budget_ms
    };
    let budget = if ms == 0 && !faults.cap_trip {
        Budget::unlimited()
    } else if ms == 0 {
        Budget::cancellable()
    } else {
        Budget::with_deadline(Duration::from_millis(ms))
    };
    if faults.cap_trip {
        // Simulate a resource cap firing mid-request: the budget trips
        // before the job starts and the client sees `BudgetExceeded`.
        budget.cancel();
    }
    budget
}

fn lookup_db(shared: &Shared, name: &str) -> Result<Arc<DbState>, Response> {
    shared
        .dbs
        .read()
        .unwrap()
        .get(name)
        .cloned()
        .ok_or_else(|| Response::Error {
            code: ErrorCode::UnknownDb,
            message: format!("unknown database {name:?}"),
            retry_after_ms: 0,
        })
}

fn run_count(
    shared: &Shared,
    db_name: &str,
    query: &str,
    budget_ms: u64,
    faults: JobFaults,
) -> Response {
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
                retry_after_ms: 0,
            }
        }
    };
    let fp = fingerprint(&q);
    let state = match lookup_db(shared, db_name) {
        Ok(s) => s,
        Err(resp) => return resp,
    };

    // Level 2: an exact count cached under the current epoch.
    let key = (fp.text.clone(), db_name.to_owned(), state.epoch);
    if let Some(value) = shared.counts.get(&key) {
        return Response::Count {
            value: value.to_string(),
            plan: "cached".into(),
            cached: CacheTier::CountWarm,
            degraded: false,
            fingerprint: fp.hash,
        };
    }

    // Level 1: the prepared plan (degraded plans skip the cache).
    let budget = budget_for(shared, budget_ms, faults);
    let (entry, plan_hit) = plan_for(shared, &fp.text, &q, &budget);
    match count_prepared_resilient(&q, &state.db, &entry.prepared, &budget) {
        Ok((n, plan, degraded)) => {
            // Exact regardless of degradation, so always cacheable.
            shared.counts.insert(key, n.clone());
            Response::Count {
                value: n.to_string(),
                plan: match plan {
                    cqcount_core::Plan::SharpPipeline { width } => {
                        format!("sharp-pipeline(width={width})")
                    }
                    cqcount_core::Plan::Hybrid { width, bound, .. } => {
                        format!("hybrid(width={width},bound={bound})")
                    }
                    cqcount_core::Plan::BruteForce { .. } => "brute-force".into(),
                },
                cached: if plan_hit {
                    CacheTier::PlanWarm
                } else {
                    CacheTier::Cold
                },
                degraded,
                fingerprint: fp.hash,
            }
        }
        Err(e) => plan_error_response(e),
    }
}

fn run_enumerate(
    shared: &Shared,
    db_name: &str,
    query: &str,
    limit: u64,
    budget_ms: u64,
    faults: JobFaults,
) -> Response {
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
                retry_after_ms: 0,
            }
        }
    };
    let state = match lookup_db(shared, db_name) {
        Ok(s) => s,
        Err(resp) => return resp,
    };
    let budget = budget_for(shared, budget_ms, faults);
    let cap = (limit as usize).min(shared.config.max_enumerate);
    let free: Vec<Var> = q.free().into_iter().collect();
    // Any query decomposes at width = atom count, so enumeration is total.
    let width = shared.config.width_cap.max(q.atoms().len());
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut truncated = false;
    let mut tripped = false;
    let ok = for_each_answer(&q, &state.db, width, |answer| {
        if budget.is_exceeded() {
            tripped = true;
            return false;
        }
        if rows.len() >= cap {
            truncated = true;
            return false;
        }
        rows.push(
            free.iter()
                .map(|v| state.db.interner().name(answer[v]).to_owned())
                .collect(),
        );
        true
    });
    if tripped {
        return plan_error_response(PlanError::BudgetExceeded {
            elapsed_ms: budget.elapsed_ms().max(1),
        });
    }
    if !ok {
        return Response::Error {
            code: ErrorCode::Plan,
            message: "no decomposition found for enumeration".into(),
            retry_after_ms: 0,
        };
    }
    Response::Rows { rows, truncated }
}

fn run_width_report(shared: &Shared, query: &str, cap: u64) -> Response {
    let q = match parse_query(query) {
        Ok(q) => q,
        Err(e) => {
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.to_string(),
                retry_after_ms: 0,
            }
        }
    };
    let cap = if cap == 0 {
        shared.config.width_cap
    } else {
        cap as usize
    };
    let fp = fingerprint(&q);
    // Reports at the default cap share the plan entry's lazy slot; other
    // caps are computed fresh (rare, operator-driven).
    let report = if cap == shared.config.width_cap {
        // Width reports are operator-driven and cheap relative to counting;
        // plan under an unlimited budget so the cached entry is never
        // degraded.
        let (entry, _) = plan_for(shared, &fp.text, &q, &Budget::unlimited());
        let mut slot = entry.report.lock().unwrap();
        slot.get_or_insert_with(|| WidthReport::analyze(&q, cap))
            .clone()
    } else {
        WidthReport::analyze(&q, cap)
    };
    Response::Report(ReportReply {
        acyclic: report.acyclic,
        ghw: report.ghw.map(|w| w as u64),
        sharp_width: report.sharp_width.map(|w| w as u64),
        star_size: report.star_size as u64,
        atoms: report.atoms as u64,
        vars: report.vars as u64,
        free: report.free as u64,
        cap: report.cap as u64,
    })
}
