//! The two cache levels behind the daemon.
//!
//! * **Level 1 — plans** ([`PlanCache`]): canonical query text →
//!   [`PreparedPlan`] (+ lazily computed width report). Keyed on the
//!   *canonical* form from `cqcount_query::fingerprint`, so clients that
//!   rename variables or reorder atoms share an entry. Plans are
//!   data-independent, so this level survives database reloads.
//! * **Level 2 — counts** ([`CountCache`]): (canonical text, database
//!   name, database *epoch*) → exact count. The epoch in the key is the
//!   invalidation mechanism: a `RELOAD` bumps the database's epoch, so
//!   stale counts simply stop being addressable (and age out FIFO).
//!
//! Both levels are bounded FIFO maps — eviction only needs to keep memory
//! flat under adversarial key churn, not maximize hit rate, so the cheap
//! policy wins over an LRU's extra bookkeeping.

use cqcount_arith::Natural;
use cqcount_core::planner::{PreparedPlan, WidthReport};
use cqcount_obs::metrics::Counter;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// A cached plan: the prepared decomposition plus a slot for the width
/// report (computed on the first `WIDTH_REPORT` request, not eagerly —
/// `COUNT` traffic never pays for `ghw` search).
#[derive(Debug)]
pub struct PlanEntry {
    /// The data-independent plan.
    pub prepared: PreparedPlan,
    /// Lazily filled structural report.
    pub report: Mutex<Option<WidthReport>>,
}

/// A bounded FIFO map with hit/miss counters, shared by both levels.
#[derive(Debug)]
struct FifoMap<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: std::hash::Hash + Eq + Clone, V> FifoMap<K, V> {
    fn new(capacity: usize) -> FifoMap<K, V> {
        FifoMap {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: std::hash::Hash + Eq + ?Sized,
    {
        self.map.get(k)
    }

    /// Inserts, returning how many old entries FIFO eviction removed.
    fn insert(&mut self, k: K, v: V) -> u64 {
        let mut evicted = 0;
        if self.map.insert(k.clone(), v).is_none() {
            self.order.push_back(k);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                    evicted += 1;
                }
            }
        }
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Level 1: canonical query text → [`PlanEntry`].
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<FifoMap<String, Arc<PlanEntry>>>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl PlanCache {
    /// A plan cache holding at most `capacity` entries, with private
    /// (unregistered) counters.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache::with_counters(
            capacity,
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
        )
    }

    /// A plan cache whose hit/miss/eviction counters are externally owned
    /// handles — the server passes registry-backed counters here so the
    /// cache's own bookkeeping *is* the exported metric.
    pub fn with_counters(
        capacity: usize,
        hits: Counter,
        misses: Counter,
        evictions: Counter,
    ) -> PlanCache {
        PlanCache {
            inner: Mutex::new(FifoMap::new(capacity)),
            hits,
            misses,
            evictions,
        }
    }

    /// Looks up a plan by canonical text, counting the hit or miss.
    pub fn get(&self, canonical: &str) -> Option<Arc<PlanEntry>> {
        let inner = self.inner.lock().unwrap();
        match inner.get(canonical) {
            Some(e) => {
                self.hits.inc();
                Some(Arc::clone(e))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Installs a plan (first writer wins; a racing duplicate is dropped).
    pub fn insert(&self, canonical: String, entry: Arc<PlanEntry>) {
        let mut inner = self.inner.lock().unwrap();
        if inner.get(&canonical).is_none() {
            self.evictions.add(inner.insert(canonical, entry));
        }
    }

    /// Drops every entry (counters survive).
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Entries evicted by the FIFO bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }
}

/// Level 2 key: canonical query text + database name + database epoch.
pub type CountKey = (String, String, u64);

/// Level 2: exact counts, invalidated by epoch bumps.
#[derive(Debug)]
pub struct CountCache {
    inner: Mutex<FifoMap<CountKey, Natural>>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl CountCache {
    /// A count cache holding at most `capacity` entries, with private
    /// (unregistered) counters.
    pub fn new(capacity: usize) -> CountCache {
        CountCache::with_counters(
            capacity,
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
        )
    }

    /// A count cache whose counters are externally owned handles (see
    /// [`PlanCache::with_counters`]).
    pub fn with_counters(
        capacity: usize,
        hits: Counter,
        misses: Counter,
        evictions: Counter,
    ) -> CountCache {
        CountCache {
            inner: Mutex::new(FifoMap::new(capacity)),
            hits,
            misses,
            evictions,
        }
    }

    /// Looks up a count, counting the hit or miss.
    pub fn get(&self, key: &CountKey) -> Option<Natural> {
        let inner = self.inner.lock().unwrap();
        match inner.get(key) {
            Some(n) => {
                self.hits.inc();
                Some(n.clone())
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Installs a count.
    pub fn insert(&self, key: CountKey, value: Natural) {
        let mut inner = self.inner.lock().unwrap();
        self.evictions.add(inner.insert(key, value));
    }

    /// Drops every entry (counters survive).
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Entries evicted by the FIFO bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_core::planner::prepare_plan;
    use cqcount_query::parse_query;

    fn entry() -> Arc<PlanEntry> {
        let q = parse_query("ans(X) :- r(X, Y).").unwrap();
        Arc::new(PlanEntry {
            prepared: prepare_plan(&q, 3),
            report: Mutex::new(None),
        })
    }

    #[test]
    fn plan_cache_hits_and_misses() {
        let c = PlanCache::new(8);
        assert!(c.get("k1").is_none());
        c.insert("k1".into(), entry());
        assert!(c.get("k1").is_some());
        assert_eq!(c.counters(), (1, 1));
        c.clear();
        assert!(c.get("k1").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn fifo_eviction_bounds_memory() {
        let c = CountCache::new(2);
        for i in 0..5u64 {
            c.insert((format!("q{i}"), "db".into(), 0), Natural::from(i));
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 3);
        // Oldest keys evicted, newest kept.
        assert!(c.get(&("q0".into(), "db".into(), 0)).is_none());
        assert_eq!(
            c.get(&("q4".into(), "db".into(), 0)),
            Some(Natural::from(4u64))
        );
    }

    #[test]
    fn external_counter_handles_observe_cache_traffic() {
        let hits = cqcount_obs::metrics::Counter::detached();
        let c =
            CountCache::with_counters(4, hits.clone(), Counter::detached(), Counter::detached());
        c.insert(("q".into(), "db".into(), 0), Natural::from(1u64));
        let _ = c.get(&("q".into(), "db".into(), 0));
        assert_eq!(hits.get(), 1);
        assert_eq!(c.counters().0, 1);
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let c = CountCache::new(8);
        c.insert(("q".into(), "db".into(), 1), Natural::from(7u64));
        assert!(c.get(&("q".into(), "db".into(), 2)).is_none());
        assert_eq!(
            c.get(&("q".into(), "db".into(), 1)),
            Some(Natural::from(7u64))
        );
    }

    #[test]
    fn reinsert_same_key_does_not_grow_order() {
        let c = CountCache::new(2);
        for _ in 0..10 {
            c.insert(("q".into(), "db".into(), 0), Natural::from(1u64));
        }
        c.insert(("r".into(), "db".into(), 0), Natural::from(2u64));
        assert_eq!(c.len(), 2);
        assert!(c.get(&("q".into(), "db".into(), 0)).is_some());
        assert!(c.get(&("r".into(), "db".into(), 0)).is_some());
    }
}
