//! The cache levels behind the daemon.
//!
//! * **Level 0 — fingerprints** ([`FingerprintCache`]): raw query text →
//!   (canonical text, fingerprint). Parsing and canonicalization are the
//!   one CPU cost a fully warm request would otherwise still pay; caching
//!   the mapping lets the reactor's fast path answer a repeated `COUNT`
//!   without ever parsing. Raw text is the key on purpose: two spellings
//!   of the same query get two L0 entries but share everything below.
//! * **Level 1 — plans** ([`PlanCache`]): canonical query text →
//!   [`PreparedPlan`] (+ lazily computed width report). Keyed on the
//!   *canonical* form from `cqcount_query::fingerprint`, so clients that
//!   rename variables or reorder atoms share an entry. Plans are
//!   data-independent, so this level survives database reloads.
//! * **Level 2 — counts** ([`CountCache`]): (canonical text, database
//!   name, database *epoch*) → exact count. The epoch in the key is the
//!   invalidation mechanism for wholesale replacement: a `RELOAD` bumps
//!   the database's epoch, so stale counts stop being addressable, and
//!   [`CountCache::purge_epochs_below`] evicts the dead entries eagerly
//!   rather than letting them squat in the FIFO until churn pushes them
//!   out. Single-tuple mutations (`INSERT`/`DELETE`) do **not** bump the
//!   epoch; each cached count carries the relation names its query
//!   mentions ([`CountInfo::rels`]) and
//!   [`CountCache::invalidate_relations`] surgically drops only the
//!   entries a mutated relation can affect — counts over untouched
//!   relations stay warm.
//!
//! Every level is a bounded FIFO map — eviction only needs to keep memory
//! flat under adversarial key churn, not maximize hit rate, so the cheap
//! policy wins over an LRU's extra bookkeeping — **sharded** 16 ways (the
//! concurrent-memo pattern from `decomp::ghw`): a key hashes to one shard
//! and only that shard's mutex is taken, so cache hits from many reactor
//! and worker threads never serialize on a global lock.
//!
//! Hit/miss accounting contract: [`PlanCache::get`]/[`CountCache::get`]
//! count both outcomes and are called exactly once per probe on the
//! worker path. The `peek` variants are for the reactor's fast path,
//! which only *opportunistically* checks for warm entries: a peek counts
//! a hit when it serves and counts **nothing** on absence, because the
//! request then goes to a worker whose own probe records the miss —
//! otherwise one cold request would count two misses.

use cqcount_arith::Natural;
use cqcount_core::planner::{PreparedPlan, WidthReport};
use cqcount_obs::metrics::Counter;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock};

/// A cached plan: the prepared decomposition plus a compute-once slot for
/// the width report (filled on the first `WIDTH_REPORT` request, not
/// eagerly — `COUNT` traffic never pays for `ghw` search). `OnceLock`
/// makes the warm path a lock-free load: after the first fill, readers
/// never contend, and a reactor thread can serve the report inline.
#[derive(Debug)]
pub struct PlanEntry {
    /// The data-independent plan.
    pub prepared: PreparedPlan,
    /// Lazily filled structural report.
    pub report: OnceLock<WidthReport>,
}

/// A bounded FIFO map, the single-shard building block of every level.
#[derive(Debug)]
struct FifoMap<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> FifoMap<K, V> {
    fn new(capacity: usize) -> FifoMap<K, V> {
        FifoMap {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    fn get<Q>(&self, k: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get(k)
    }

    /// Inserts, returning how many old entries FIFO eviction removed.
    fn insert(&mut self, k: K, v: V) -> u64 {
        let mut evicted = 0;
        if self.map.insert(k.clone(), v).is_none() {
            self.order.push_back(k);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                    evicted += 1;
                }
            }
        }
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Drops every entry failing the predicate, returning how many died.
    /// The FIFO order keeps only surviving keys, so later evictions stay
    /// exact.
    fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) -> u64 {
        let before = self.map.len();
        self.map.retain(|k, v| keep(k, v));
        if self.map.len() != before {
            let map = &self.map;
            self.order.retain(|k| map.contains_key(k));
        }
        (before - self.map.len()) as u64
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Most shards per cache; small caches get fewer so each shard still
/// holds a meaningful slice of the budget (see [`MIN_SHARD_CAPACITY`]).
const MAX_SHARDS: usize = 16;

/// A cache only splits into shards once each shard would hold at least
/// this many entries. Sharding a tiny cache would turn the global FIFO
/// bound into per-shard bounds so small that unlucky hash collisions
/// evict entries well before the configured capacity is reached — the
/// e2e tests (and small deployments) rely on a cap-N cache actually
/// holding N entries.
const MIN_SHARD_CAPACITY: usize = 64;

/// A sharded bounded FIFO map: a key owns one shard, chosen by its hash
/// under `DefaultHasher` with the default (fixed) keys — deterministic
/// across threads and runs, unlike a `RandomState`-seeded pick.
#[derive(Debug)]
struct ShardedFifo<K, V> {
    shards: Vec<Mutex<FifoMap<K, V>>>,
}

impl<K: Hash + Eq + Clone, V> ShardedFifo<K, V> {
    fn new(capacity: usize) -> ShardedFifo<K, V> {
        let capacity = capacity.max(1);
        let nshards = (capacity / MIN_SHARD_CAPACITY).clamp(1, MAX_SHARDS);
        let per_shard = capacity / nshards; // ≥ 1 because nshards ≤ capacity
        ShardedFifo {
            shards: (0..nshards)
                .map(|_| Mutex::new(FifoMap::new(per_shard)))
                .collect(),
        }
    }

    fn shard<Q>(&self, k: &Q) -> &Mutex<FifoMap<K, V>>
    where
        Q: Hash + ?Sized,
    {
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    fn get<Q>(&self, k: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
        V: Clone,
    {
        self.shard(k).lock().unwrap().get(k).cloned()
    }

    /// Inserts, returning the number of evictions. `keep_first` makes a
    /// racing duplicate a no-op (first writer wins).
    fn insert(&self, k: K, v: V, keep_first: bool) -> u64 {
        let mut shard = self.shard(&k).lock().unwrap();
        if keep_first && shard.get(&k).is_some() {
            return 0;
        }
        shard.insert(k, v)
    }

    fn clear(&self) {
        for s in &self.shards {
            s.lock().unwrap().clear();
        }
    }

    /// Applies [`FifoMap::retain`] to every shard, returning the total
    /// number of entries dropped. One shard lock at a time — concurrent
    /// hits on other shards proceed.
    fn retain(&self, mut keep: impl FnMut(&K, &V) -> bool) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().retain(&mut keep))
            .sum()
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }
}

/// Level 0 value: the canonical text and fingerprint of a parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprinted {
    /// Canonical text (the L1 key and part of the L2 key).
    pub canonical: String,
    /// The 64-bit canonical fingerprint.
    pub fingerprint: u64,
}

/// Level 0: raw query text → canonical text + fingerprint, so a warm
/// request skips the parser entirely. Installed by workers after they
/// parse; probed by the reactor before admission. No hit/miss counters:
/// this level is an internal shortcut, not part of the exported cache
/// contract (the L1/L2 counters keep their exact meanings).
#[derive(Debug)]
pub struct FingerprintCache {
    inner: ShardedFifo<String, Arc<Fingerprinted>>,
}

impl FingerprintCache {
    /// A fingerprint cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> FingerprintCache {
        FingerprintCache {
            inner: ShardedFifo::new(capacity),
        }
    }

    /// Looks up the canonical form of a raw query text.
    pub fn get(&self, raw: &str) -> Option<Arc<Fingerprinted>> {
        self.inner.get(raw)
    }

    /// Installs a mapping (first writer wins).
    pub fn insert(&self, raw: String, value: Arc<Fingerprinted>) {
        self.inner.insert(raw, value, true);
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.inner.clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Level 1: canonical query text → [`PlanEntry`].
#[derive(Debug)]
pub struct PlanCache {
    inner: ShardedFifo<String, Arc<PlanEntry>>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl PlanCache {
    /// A plan cache holding at most `capacity` entries, with private
    /// (unregistered) counters.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache::with_counters(
            capacity,
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
        )
    }

    /// A plan cache whose hit/miss/eviction counters are externally owned
    /// handles — the server passes registry-backed counters here so the
    /// cache's own bookkeeping *is* the exported metric.
    pub fn with_counters(
        capacity: usize,
        hits: Counter,
        misses: Counter,
        evictions: Counter,
    ) -> PlanCache {
        PlanCache {
            inner: ShardedFifo::new(capacity),
            hits,
            misses,
            evictions,
        }
    }

    /// Looks up a plan by canonical text, counting the hit or miss.
    pub fn get(&self, canonical: &str) -> Option<Arc<PlanEntry>> {
        match self.inner.get(canonical) {
            Some(e) => {
                self.hits.inc();
                Some(e)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Fast-path probe: counts a hit when the entry is present, counts
    /// *nothing* when absent (see the module-level accounting contract).
    pub fn peek(&self, canonical: &str) -> Option<Arc<PlanEntry>> {
        let e = self.inner.get(canonical)?;
        self.hits.inc();
        Some(e)
    }

    /// Installs a plan (first writer wins; a racing duplicate is dropped).
    pub fn insert(&self, canonical: String, entry: Arc<PlanEntry>) {
        self.evictions
            .add(self.inner.insert(canonical, entry, true));
    }

    /// Drops every entry (counters survive).
    pub fn clear(&self) {
        self.inner.clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Entries evicted by the FIFO bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }
}

/// Level 2 key: canonical query text + database name + database epoch.
pub type CountKey = (String, String, u64);

/// Level 2 value: the exact count plus the invalidation scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountInfo {
    /// The exact count.
    pub value: Natural,
    /// Relation names the query mentions, sorted + deduped. A mutation
    /// touching none of them cannot change `value`, so the entry
    /// survives; a mutation touching any of them kills it (unless the
    /// mutation itself re-publishes a maintained count).
    pub rels: Vec<String>,
}

impl CountInfo {
    /// Does the query behind this count mention `rel`?
    pub fn mentions(&self, rel: &str) -> bool {
        self.rels.binary_search_by(|r| r.as_str().cmp(rel)).is_ok()
    }
}

/// Level 2: exact counts, invalidated by epoch bumps (reloads) or
/// per-relation sweeps (mutations).
#[derive(Debug)]
pub struct CountCache {
    inner: ShardedFifo<CountKey, Arc<CountInfo>>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl CountCache {
    /// A count cache holding at most `capacity` entries, with private
    /// (unregistered) counters.
    pub fn new(capacity: usize) -> CountCache {
        CountCache::with_counters(
            capacity,
            Counter::detached(),
            Counter::detached(),
            Counter::detached(),
        )
    }

    /// A count cache whose counters are externally owned handles (see
    /// [`PlanCache::with_counters`]).
    pub fn with_counters(
        capacity: usize,
        hits: Counter,
        misses: Counter,
        evictions: Counter,
    ) -> CountCache {
        CountCache {
            inner: ShardedFifo::new(capacity),
            hits,
            misses,
            evictions,
        }
    }

    /// Looks up a count, counting the hit or miss.
    pub fn get(&self, key: &CountKey) -> Option<Arc<CountInfo>> {
        match self.inner.get(key) {
            Some(n) => {
                self.hits.inc();
                Some(n)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Fast-path probe: counts a hit when the count is present, counts
    /// *nothing* when absent (see the module-level accounting contract).
    pub fn peek(&self, key: &CountKey) -> Option<Arc<CountInfo>> {
        let n = self.inner.get(key)?;
        self.hits.inc();
        Some(n)
    }

    /// Installs a count.
    pub fn insert(&self, key: CountKey, value: Arc<CountInfo>) {
        self.evictions.add(self.inner.insert(key, value, false));
    }

    /// Eagerly drops every entry for `db` cached under an epoch older
    /// than `current` (they became unaddressable when the reload bumped
    /// the epoch; this reclaims their slots immediately). Returns how
    /// many entries died. Counted as evictions: the FIFO bound and the
    /// purge are the only two ways a live entry leaves the cache.
    pub fn purge_epochs_below(&self, db: &str, current: u64) -> u64 {
        let dead = self
            .inner
            .retain(|(_, d, epoch), _| d != db || *epoch >= current);
        self.evictions.add(dead);
        dead
    }

    /// Drops every entry for `db` at `epoch` whose query mentions any of
    /// `rels` — the surgical sweep after a mutation. Entries for other
    /// databases, other epochs, or queries over untouched relations
    /// survive. Returns how many entries died.
    pub fn invalidate_relations(&self, db: &str, epoch: u64, rels: &[String]) -> u64 {
        let dead = self.inner.retain(|(_, d, e), info| {
            d != db || *e != epoch || !rels.iter().any(|r| info.mentions(r))
        });
        self.evictions.add(dead);
        dead
    }

    /// Drops every entry (counters survive).
    pub fn clear(&self) {
        self.inner.clear();
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }

    /// Entries evicted by the FIFO bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqcount_core::planner::prepare_plan;
    use cqcount_query::parse_query;

    fn entry() -> Arc<PlanEntry> {
        let q = parse_query("ans(X) :- r(X, Y).").unwrap();
        Arc::new(PlanEntry {
            prepared: prepare_plan(&q, 3),
            report: OnceLock::new(),
        })
    }

    fn info(n: u64) -> Arc<CountInfo> {
        info_over(n, &["r"])
    }

    fn info_over(n: u64, rels: &[&str]) -> Arc<CountInfo> {
        Arc::new(CountInfo {
            value: Natural::from(n),
            rels: rels.iter().map(|r| (*r).to_owned()).collect(),
        })
    }

    #[test]
    fn plan_cache_hits_and_misses() {
        let c = PlanCache::new(8);
        assert!(c.get("k1").is_none());
        c.insert("k1".into(), entry());
        assert!(c.get("k1").is_some());
        assert_eq!(c.counters(), (1, 1));
        c.clear();
        assert!(c.get("k1").is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn peek_counts_hits_but_never_misses() {
        let c = PlanCache::new(8);
        assert!(c.peek("k1").is_none());
        assert_eq!(c.counters(), (0, 0), "a failed peek records nothing");
        c.insert("k1".into(), entry());
        assert!(c.peek("k1").is_some());
        assert_eq!(c.counters(), (1, 0));

        let cc = CountCache::new(8);
        let key: CountKey = ("q".into(), "db".into(), 0);
        assert!(cc.peek(&key).is_none());
        assert_eq!(cc.counters(), (0, 0));
        cc.insert(key.clone(), info(3));
        assert_eq!(cc.peek(&key).unwrap().value, Natural::from(3u64));
        assert_eq!(cc.counters(), (1, 0));
    }

    #[test]
    fn fifo_eviction_bounds_memory() {
        // Capacity 2 shards into 2 × 1; which early keys die depends on
        // the hash split, but the bound and the accounting are exact and
        // the newest key always survives (it just landed in its shard).
        let c = CountCache::new(2);
        for i in 0..5u64 {
            c.insert((format!("q{i}"), "db".into(), 0), info(i));
        }
        assert!(c.len() <= 2, "capacity bound violated: {}", c.len());
        assert_eq!(c.evictions(), 5 - c.len() as u64);
        assert_eq!(
            c.get(&("q4".into(), "db".into(), 0)).unwrap().value,
            Natural::from(4u64)
        );
    }

    #[test]
    fn sharded_capacity_bound_holds_under_churn() {
        // A capacity big enough to use all 16 shards: total occupancy
        // never exceeds the configured bound, however keys distribute.
        let c = CountCache::new(64);
        for i in 0..1000u64 {
            c.insert((format!("q{i}"), "db".into(), 0), info(i));
        }
        assert!(c.len() <= 64, "capacity bound violated: {}", c.len());
        assert_eq!(c.evictions(), 1000 - c.len() as u64);
    }

    #[test]
    fn external_counter_handles_observe_cache_traffic() {
        let hits = cqcount_obs::metrics::Counter::detached();
        let c =
            CountCache::with_counters(4, hits.clone(), Counter::detached(), Counter::detached());
        c.insert(("q".into(), "db".into(), 0), info(1));
        let _ = c.get(&("q".into(), "db".into(), 0));
        assert_eq!(hits.get(), 1);
        assert_eq!(c.counters().0, 1);
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let c = CountCache::new(8);
        c.insert(("q".into(), "db".into(), 1), info(7));
        assert!(c.get(&("q".into(), "db".into(), 2)).is_none());
        assert_eq!(
            c.get(&("q".into(), "db".into(), 1)).unwrap().value,
            Natural::from(7u64)
        );
    }

    #[test]
    fn reinsert_same_key_does_not_grow_order() {
        let c = CountCache::new(2);
        for _ in 0..10 {
            c.insert(("q".into(), "db".into(), 0), info(1));
        }
        c.insert(("r".into(), "db".into(), 0), info(2));
        assert!(c.len() <= 2);
        assert!(c.get(&("q".into(), "db".into(), 0)).is_some());
        assert!(c.get(&("r".into(), "db".into(), 0)).is_some());
    }

    #[test]
    fn epoch_purge_evicts_dead_entries_eagerly() {
        let c = CountCache::new(64);
        // Two dbs, several epochs each; a reload of "a" to epoch 3 must
        // kill exactly a@1 and a@2.
        for (db, epoch) in [("a", 1), ("a", 2), ("a", 3), ("b", 1), ("b", 2)] {
            c.insert(("q".into(), db.into(), epoch), info(epoch));
        }
        let before = c.evictions();
        assert_eq!(c.purge_epochs_below("a", 3), 2);
        assert_eq!(c.len(), 3);
        assert_eq!(
            c.evictions(),
            before + 2,
            "purged entries count as evictions"
        );
        assert!(c.get(&("q".into(), "a".into(), 3)).is_some());
        assert!(c.get(&("q".into(), "b".into(), 1)).is_some());
        assert!(c.get(&("q".into(), "b".into(), 2)).is_some());
        assert!(c.get(&("q".into(), "a".into(), 1)).is_none());
        // The purge must leave the FIFO order consistent: filling past
        // capacity afterwards still bounds memory.
        for i in 0..200u64 {
            c.insert((format!("q{i}"), "a".into(), 3), info(i));
        }
        assert!(c.len() <= 64, "capacity bound violated after purge");
    }

    #[test]
    fn relation_sweep_spares_unrelated_queries() {
        let c = CountCache::new(64);
        c.insert(("q_r".into(), "db".into(), 1), info_over(1, &["r"]));
        c.insert(("q_s".into(), "db".into(), 1), info_over(2, &["s"]));
        c.insert(("q_rs".into(), "db".into(), 1), info_over(3, &["r", "s"]));
        c.insert(
            ("q_r_other_epoch".into(), "db".into(), 2),
            info_over(4, &["r"]),
        );
        c.insert(
            ("q_r_other_db".into(), "db2".into(), 1),
            info_over(5, &["r"]),
        );

        assert_eq!(c.invalidate_relations("db", 1, &["r".to_owned()]), 2);
        assert!(c.get(&("q_r".into(), "db".into(), 1)).is_none());
        assert!(c.get(&("q_rs".into(), "db".into(), 1)).is_none());
        assert!(c.get(&("q_s".into(), "db".into(), 1)).is_some());
        assert!(c.get(&("q_r_other_epoch".into(), "db".into(), 2)).is_some());
        assert!(c.get(&("q_r_other_db".into(), "db2".into(), 1)).is_some());

        // A sweep over a relation nobody mentions is a no-op.
        assert_eq!(c.invalidate_relations("db", 1, &["zzz".to_owned()]), 0);
    }

    #[test]
    fn fingerprint_cache_maps_raw_to_canonical() {
        let c = FingerprintCache::new(8);
        assert!(c.get("ans(X) :- r(X, Y).").is_none());
        let v = Arc::new(Fingerprinted {
            canonical: "ans(V0) :- r(V0, V1).".into(),
            fingerprint: 0xfeed,
        });
        c.insert("ans(X) :- r(X, Y).".into(), Arc::clone(&v));
        // Two raw spellings, two entries, shared canonical value.
        c.insert("ans(A) :- r(A, B).".into(), Arc::clone(&v));
        assert_eq!(c.get("ans(X) :- r(X, Y).").unwrap().fingerprint, 0xfeed);
        assert_eq!(c.get("ans(A) :- r(A, B).").unwrap().canonical, v.canonical);
        assert_eq!(c.len(), 2);
        c.clear();
        assert!(c.is_empty());
    }
}
