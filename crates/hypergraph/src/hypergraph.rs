//! Hypergraphs and the covers relation.

use crate::{Node, NodeSet};
use std::fmt;

/// A hypergraph `(V, H)` over interned node ids.
///
/// The node universe is implicit: it is the union of the hyperedges plus any
/// isolated nodes registered with [`Hypergraph::add_node`]. Duplicate
/// hyperedges are allowed on input but deduplicated by [`Hypergraph::reduced`].
///
/// ```
/// use cqcount_hypergraph::Hypergraph;
/// let h = Hypergraph::from_edges([vec![0, 1], vec![1, 2]]);
/// assert_eq!(h.num_edges(), 2);
/// assert!(h.nodes().contains(2));
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Hypergraph {
    edges: Vec<NodeSet>,
    nodes: NodeSet,
}

impl Hypergraph {
    /// The empty hypergraph.
    pub fn new() -> Hypergraph {
        Hypergraph::default()
    }

    /// Builds a hypergraph from edge node-lists.
    pub fn from_edges<I, E>(edges: I) -> Hypergraph
    where
        I: IntoIterator<Item = E>,
        E: IntoIterator<Item = Node>,
    {
        let mut h = Hypergraph::new();
        for e in edges {
            h.add_edge(e.into_iter().collect());
        }
        h
    }

    /// Adds a hyperedge (empty edges are ignored: they carry no constraint
    /// and are trivially covered).
    pub fn add_edge(&mut self, edge: NodeSet) {
        if edge.is_empty() {
            return;
        }
        self.nodes.union_with(&edge);
        self.edges.push(edge);
    }

    /// Registers a node even if no edge mentions it.
    pub fn add_node(&mut self, node: Node) {
        self.nodes.insert(node);
    }

    /// The set of nodes.
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// The hyperedges, in insertion order.
    pub fn edges(&self) -> &[NodeSet] {
        &self.edges
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Size of the largest hyperedge (0 if there are none).
    pub fn max_edge_size(&self) -> usize {
        self.edges.iter().map(NodeSet::len).max().unwrap_or(0)
    }

    /// The covers relation of Section 2: `self ≤ other` iff every hyperedge
    /// of `self` is a subset of some hyperedge of `other`.
    pub fn covered_by(&self, other: &Hypergraph) -> bool {
        self.edges
            .iter()
            .all(|e| other.edges.iter().any(|f| e.is_subset(f)))
    }

    /// Returns `true` iff some hyperedge contains `set`.
    pub fn covers_set(&self, set: &NodeSet) -> bool {
        self.edges.iter().any(|e| set.is_subset(e))
    }

    /// The *reduction*: drops duplicate hyperedges and hyperedges strictly
    /// contained in another hyperedge. Reduction preserves acyclicity, join
    /// trees (up to attaching absorbed edges), the covers relation in both
    /// directions, and `[W̄]`-components.
    pub fn reduced(&self) -> Hypergraph {
        let mut kept: Vec<NodeSet> = Vec::new();
        // Sort by descending size so any absorbing edge is seen first.
        let mut sorted: Vec<&NodeSet> = self.edges.iter().collect();
        sorted.sort_by_key(|e| std::cmp::Reverse(e.len()));
        for e in sorted {
            if !kept.iter().any(|f| e.is_subset(f)) {
                kept.push(e.clone());
            }
        }
        Hypergraph {
            edges: kept,
            nodes: self.nodes.clone(),
        }
    }

    /// The sub-hypergraph induced by intersecting every edge with `keep`
    /// (empty intersections are dropped). Used e.g. to restrict a
    /// decomposition to the free variables (proof of Theorem 3.7).
    pub fn restrict(&self, keep: &NodeSet) -> Hypergraph {
        let mut h = Hypergraph::new();
        for e in &self.edges {
            h.add_edge(e.intersection(keep));
        }
        h.nodes = self.nodes.intersection(keep);
        h
    }

    /// Union of two hypergraphs (concatenates edge lists, unions nodes).
    pub fn merge(&self, other: &Hypergraph) -> Hypergraph {
        let mut h = self.clone();
        for e in &other.edges {
            h.add_edge(e.clone());
        }
        h.nodes.union_with(&other.nodes);
        h
    }

    /// The edges that intersect `set` (the `edges(C)` operator of Sec. 3.1).
    pub fn edges_touching(&self, set: &NodeSet) -> Vec<&NodeSet> {
        self.edges.iter().filter(|e| e.intersects(set)).collect()
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(edges: &[&[Node]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    #[test]
    fn basic_accessors() {
        let g = h(&[&[0, 1, 2], &[2, 3]]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.max_edge_size(), 3);
    }

    #[test]
    fn covers_relation() {
        let small = h(&[&[0, 1], &[2]]);
        let big = h(&[&[0, 1, 2]]);
        assert!(small.covered_by(&big));
        assert!(!big.covered_by(&small));
        // reflexivity
        assert!(small.covered_by(&small));
        // transitivity witness
        let mid = h(&[&[0, 1], &[1, 2]]);
        assert!(mid.covered_by(&big));
    }

    #[test]
    fn covers_set() {
        let g = h(&[&[0, 1, 2], &[3, 4]]);
        assert!(g.covers_set(&[1, 2].into()));
        assert!(!g.covers_set(&[2, 3].into()));
        assert!(g.covers_set(&NodeSet::new()));
    }

    #[test]
    fn reduction_drops_subsumed() {
        let g = h(&[&[0, 1], &[0, 1, 2], &[1], &[0, 1, 2], &[3]]);
        let r = g.reduced();
        assert_eq!(r.num_edges(), 2); // {0,1,2} and {3}
        assert!(r.covers_set(&[0, 1, 2].into()));
        assert!(r.covers_set(&[3].into()));
        // reduction preserves the node universe
        assert_eq!(r.nodes(), g.nodes());
    }

    #[test]
    fn restriction() {
        let g = h(&[&[0, 1, 2], &[2, 3], &[4]]);
        let r = g.restrict(&[0, 2, 3].into());
        assert_eq!(r.num_edges(), 2); // {0,2}, {2,3}; {4} vanishes
        assert_eq!(r.nodes(), &[0, 2, 3].into());
    }

    #[test]
    fn isolated_nodes_and_empty_edges() {
        let mut g = Hypergraph::new();
        g.add_node(7);
        g.add_edge(NodeSet::new()); // ignored
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn merge_concatenates() {
        let a = h(&[&[0, 1]]);
        let b = h(&[&[1, 2]]);
        let m = a.merge(&b);
        assert_eq!(m.num_edges(), 2);
        assert_eq!(m.num_nodes(), 3);
    }

    #[test]
    fn edges_touching() {
        let g = h(&[&[0, 1], &[1, 2], &[3]]);
        let touching = g.edges_touching(&[1].into());
        assert_eq!(touching.len(), 2);
    }
}
