//! α-acyclicity and join trees.
//!
//! Two independent implementations are provided and cross-checked in tests:
//! the GYO reduction ([`is_acyclic`]) and maximum-weight spanning forests of
//! the intersection graph ([`join_forest`], Bernstein–Goodman: a hypergraph
//! is α-acyclic iff a maximum-weight spanning forest of its intersection
//! graph is a join forest, which is cheap to verify).

use crate::{Hypergraph, NodeSet};

/// Decides α-acyclicity by GYO reduction: repeatedly delete nodes occurring
/// in a single hyperedge and hyperedges contained in another hyperedge; the
/// hypergraph is acyclic iff everything can be eliminated.
pub fn is_acyclic(h: &Hypergraph) -> bool {
    let mut edges: Vec<Option<NodeSet>> = h.edges().iter().cloned().map(Some).collect();
    loop {
        let mut changed = false;

        // Rule 1: remove nodes that occur in exactly one live edge.
        let mut seen = NodeSet::new();
        let mut twice = NodeSet::new();
        for e in edges.iter().flatten() {
            twice.union_with(&seen.intersection(e));
            seen.union_with(e);
        }
        let lonely = seen.difference(&twice);
        if !lonely.is_empty() {
            for e in edges.iter_mut().flatten() {
                let trimmed = e.difference(&lonely);
                if &trimmed != e {
                    *e = trimmed;
                    changed = true;
                }
            }
        }

        // Rule 2: remove edges contained in another live edge (and empties).
        for i in 0..edges.len() {
            let Some(ei) = edges[i].clone() else { continue };
            if ei.is_empty() {
                edges[i] = None;
                changed = true;
                continue;
            }
            let absorbed = edges
                .iter()
                .enumerate()
                .any(|(j, ej)| j != i && ej.as_ref().is_some_and(|ej| ei.is_subset(ej)));
            if absorbed {
                edges[i] = None;
                changed = true;
            }
        }

        if !changed {
            return edges.iter().all(Option::is_none);
        }
    }
}

/// A rooted join forest over the hyperedges of a hypergraph.
///
/// Vertex `i` of the forest corresponds to edge `i` of the source hypergraph.
/// `order` lists vertices with children before parents, which is the
/// traversal every bottom-up counting pass needs.
#[derive(Clone, Debug)]
pub struct JoinForest {
    /// `parent[i]` is the parent vertex of `i`, or `None` for roots.
    pub parent: Vec<Option<usize>>,
    /// Children lists, consistent with `parent`.
    pub children: Vec<Vec<usize>>,
    /// Root vertices, one per connected component.
    pub roots: Vec<usize>,
    /// Bottom-up order: every vertex appears after all of its children.
    pub order: Vec<usize>,
}

impl JoinForest {
    /// Number of vertices (= hyperedges of the source hypergraph).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` iff the forest has no vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Verifies the join-forest property w.r.t. `h`: for every node `X`, the
    /// vertices whose edges contain `X` induce a connected subtree.
    pub fn verify(&self, h: &Hypergraph) -> bool {
        if self.len() != h.num_edges() {
            return false;
        }
        for x in h.nodes().iter() {
            let holders: Vec<usize> = (0..h.num_edges())
                .filter(|&i| h.edges()[i].contains(x))
                .collect();
            if holders.is_empty() {
                continue;
            }
            // In a forest, the subgraph induced by `holders` is connected iff
            // it has exactly |holders| - 1 internal edges.
            let internal = holders
                .iter()
                .filter(|&&i| self.parent[i].is_some_and(|p| h.edges()[p].contains(x)))
                .count();
            if internal != holders.len() - 1 {
                return false;
            }
        }
        true
    }
}

/// Builds a join forest for `h` if it is α-acyclic, `None` otherwise.
pub fn join_forest(h: &Hypergraph) -> Option<JoinForest> {
    let n = h.num_edges();
    if n == 0 {
        return Some(JoinForest {
            parent: vec![],
            children: vec![],
            roots: vec![],
            order: vec![],
        });
    }

    // Kruskal maximum spanning forest over intersection weights.
    let mut pairs: Vec<(usize, usize, usize)> = Vec::new();
    for i in 0..n {
        for j in i + 1..n {
            let w = h.edges()[i].intersection(&h.edges()[j]).len();
            if w > 0 {
                pairs.push((w, i, j));
            }
        }
    }
    pairs.sort_by_key(|&(w, _, _)| std::cmp::Reverse(w));

    let mut uf = UnionFind::new(n);
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (_, i, j) in pairs {
        if uf.union(i, j) {
            adj[i].push(j);
            adj[j].push(i);
        }
    }

    // Root each component and collect a bottom-up order.
    let mut parent = vec![None; n];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut roots = Vec::new();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        roots.push(start);
        // Iterative DFS producing reverse-topological (bottom-up) order.
        let mut stack = vec![start];
        visited[start] = true;
        let mut dfs_order = Vec::new();
        while let Some(v) = stack.pop() {
            dfs_order.push(v);
            for &u in &adj[v] {
                if !visited[u] {
                    visited[u] = true;
                    parent[u] = Some(v);
                    children[v].push(u);
                    stack.push(u);
                }
            }
        }
        order.extend(dfs_order.into_iter().rev());
    }

    let forest = JoinForest {
        parent,
        children,
        roots,
        order,
    };
    forest.verify(h).then_some(forest)
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> UnionFind {
        UnionFind {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            false
        } else {
            self.parent[ra] = rb;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Node;

    fn h(edges: &[&[Node]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    #[test]
    fn empty_and_single_edge() {
        assert!(is_acyclic(&Hypergraph::new()));
        assert!(is_acyclic(&h(&[&[0, 1, 2]])));
        assert!(join_forest(&h(&[&[0, 1, 2]])).is_some());
    }

    #[test]
    fn path_is_acyclic() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3]]);
        assert!(is_acyclic(&g));
        let f = join_forest(&g).unwrap();
        assert!(f.verify(&g));
        assert_eq!(f.roots.len(), 1);
        assert_eq!(f.order.len(), 3);
    }

    #[test]
    fn triangle_graph_is_cyclic() {
        let g = h(&[&[0, 1], &[1, 2], &[0, 2]]);
        assert!(!is_acyclic(&g));
        assert!(join_forest(&g).is_none());
    }

    #[test]
    fn triangle_with_covering_edge_is_acyclic() {
        // α-acyclicity: adding the big edge {0,1,2} makes the triangle acyclic.
        let g = h(&[&[0, 1], &[1, 2], &[0, 2], &[0, 1, 2]]);
        assert!(is_acyclic(&g));
        assert!(join_forest(&g).is_some());
    }

    #[test]
    fn four_cycle_is_cyclic() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 0]]);
        assert!(!is_acyclic(&g));
        assert!(join_forest(&g).is_none());
    }

    #[test]
    fn star_query_is_acyclic() {
        // Example C.1 shape: big guard edge plus satellite binary edges.
        let g = h(&[
            &[0, 10, 11, 12],
            &[9, 10, 11, 12],
            &[1, 10],
            &[2, 11],
            &[3, 12],
        ]);
        assert!(is_acyclic(&g));
        let f = join_forest(&g).unwrap();
        assert!(f.verify(&g));
    }

    #[test]
    fn disconnected_components_give_forest() {
        let g = h(&[&[0, 1], &[2, 3]]);
        assert!(is_acyclic(&g));
        let f = join_forest(&g).unwrap();
        assert_eq!(f.roots.len(), 2);
        assert!(f.verify(&g));
    }

    #[test]
    fn duplicate_edges_are_fine() {
        let g = h(&[&[0, 1], &[0, 1], &[1, 2]]);
        assert!(is_acyclic(&g));
        let f = join_forest(&g).unwrap();
        assert!(f.verify(&g));
    }

    #[test]
    fn bottom_up_order_respects_children() {
        let g = h(&[&[0, 1], &[1, 2], &[2, 3], &[1, 4]]);
        let f = join_forest(&g).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; f.len()];
            for (idx, &v) in f.order.iter().enumerate() {
                p[v] = idx;
            }
            p
        };
        for v in 0..f.len() {
            if let Some(p) = f.parent[v] {
                assert!(pos[v] < pos[p], "child {v} must precede parent {p}");
            }
        }
    }

    #[test]
    fn gyo_and_mst_agree_on_tricky_cases() {
        let cases: Vec<Hypergraph> = vec![
            h(&[&[0, 1, 2], &[2, 3, 4], &[4, 5, 0]]), // hyper-triangle: cyclic
            h(&[&[0, 1, 2], &[1, 2, 3], &[2, 3, 4]]), // overlapping path: acyclic
            h(&[&[0, 1], &[1, 2], &[0, 2], &[0, 1, 2], &[2, 5]]), // covered triangle + tail
            h(&[&[0], &[0, 1], &[1]]),                // singletons
        ];
        for (i, g) in cases.iter().enumerate() {
            assert_eq!(
                is_acyclic(g),
                join_forest(g).is_some(),
                "case {i}: GYO vs MST disagree"
            );
        }
    }
}
