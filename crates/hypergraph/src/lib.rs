//! Hypergraph machinery for structural decomposition methods.
//!
//! This crate implements the combinatorial substrate of the paper:
//!
//! * [`NodeSet`] — a compact bitset over interned node ids, the workhorse for
//!   every hyperedge / bag / separator manipulation;
//! * [`Hypergraph`] — hypergraphs with the *covers* relation `≤` of Section 2
//!   ("each hyperedge of H₁ is contained in at least one hyperedge of H₂");
//! * [`acyclic`] — α-acyclicity via GYO reduction and join-tree construction
//!   via maximum-weight spanning trees (Bernstein–Goodman), plus join-tree
//!   verification;
//! * [`components`] — `[W̄]`-adjacency, `[W̄]`-connectivity and
//!   `[W̄]`-components (Section 3.1);
//! * [`frontier`] — frontiers `Fr(Y, W̄, H)` and the frontier hypergraph
//!   `FH(Q', W̄)` of Definition 3.3;
//! * [`primal`] — primal (Gaifman) graphs, maximum independent sets (used by
//!   the quantified star size of Appendix A) and clique helpers.
//!
//! Nodes are plain `u32` ids; callers (the query crate) keep the mapping from
//! variables to ids.

pub mod acyclic;
pub mod components;
pub mod frontier;
pub mod hypergraph;
pub mod nodeset;
pub mod primal;

pub use acyclic::{is_acyclic, join_forest, JoinForest};
pub use components::{w_components, WComponent};
pub use frontier::{frontier_hypergraph, frontier_of};
pub use hypergraph::Hypergraph;
pub use nodeset::NodeSet;

/// An interned node (variable) identifier.
pub type Node = u32;
