//! Frontiers and the frontier hypergraph (Definition 3.3).
//!
//! For a node `Y` outside `W̄`, the frontier `Fr(Y, W̄, H)` is the set of
//! `W̄`-nodes seen by the `[W̄]`-component of `Y`:
//! `W̄ ∩ nodes(edges(C))` where `C` is the component containing `Y`. The
//! frontier hypergraph `FH(Q', W̄)` has as hyperedges all frontiers plus the
//! hyperedges of `H` already contained in `W̄`.

use crate::components::w_components;
use crate::{Hypergraph, Node, NodeSet};

/// The frontier `Fr(Y, W̄, H)` of a single node (empty if `Y ∈ W̄`).
pub fn frontier_of(h: &Hypergraph, y: Node, wbar: &NodeSet) -> NodeSet {
    if wbar.contains(y) {
        return NodeSet::new();
    }
    for c in w_components(h, wbar) {
        if c.nodes.contains(y) {
            return c.edge_nodes(h).intersection(wbar);
        }
    }
    NodeSet::new()
}

/// The frontier hypergraph `FH(H, W̄)` of Definition 3.3.
///
/// Its node set is `nodes(H) ∪ W̄`; its hyperedges are the frontiers of all
/// nodes of `H` (computed once per `[W̄]`-component, since all nodes of a
/// component share the same frontier) plus every hyperedge of `H` contained
/// in `W̄`. Empty frontiers are dropped (an empty hyperedge is covered by
/// anything) and duplicates are deduplicated.
pub fn frontier_hypergraph(h: &Hypergraph, wbar: &NodeSet) -> Hypergraph {
    let mut edges: Vec<NodeSet> = Vec::new();
    let mut push = |e: NodeSet| {
        if !e.is_empty() && !edges.contains(&e) {
            edges.push(e);
        }
    };

    for c in w_components(h, wbar) {
        push(c.edge_nodes(h).intersection(wbar));
    }
    for e in h.edges() {
        if e.is_subset(wbar) {
            push(e.clone());
        }
    }

    let mut out = Hypergraph::new();
    for e in edges {
        out.add_edge(e);
    }
    for n in h.nodes().union(wbar).iter() {
        out.add_node(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(edges: &[&[Node]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    /// Q0 of Example 1.1: A=0, B=1, C=2, D=3, E=4, F=5, G=6, H=7, I=8.
    fn q0() -> Hypergraph {
        h(&[
            &[0, 1, 8],
            &[1, 3],
            &[1, 4],
            &[2, 3],
            &[3, 5],
            &[3, 6],
            &[6, 7],
            &[5, 7],
            &[3, 7],
        ])
    }

    #[test]
    fn example_3_2_frontiers() {
        // Fr(A, {D,E,G}) = {D,E} and Fr(H, {D,E,G}) = {D,G}.
        let g = q0();
        let wbar: NodeSet = [3, 4, 6].into();
        assert_eq!(frontier_of(&g, 0, &wbar), [3, 4].into());
        assert_eq!(frontier_of(&g, 7, &wbar), [3, 6].into());
    }

    #[test]
    fn frontier_of_wbar_node_is_empty() {
        let g = q0();
        assert_eq!(frontier_of(&g, 3, &[3, 4, 6].into()), NodeSet::new());
    }

    #[test]
    fn q0_frontier_hypergraph_matches_figure_1b() {
        // FH(Q0, {A,B,C}): frontiers are {A,B} (for I), {B} (for E),
        // {B,C} (for D,F,G,H); no hyperedge of Q0 is within {A,B,C}.
        let g = q0();
        let fh = frontier_hypergraph(&g, &[0, 1, 2].into());
        let mut edges: Vec<NodeSet> = fh.edges().to_vec();
        edges.sort();
        let mut expected = vec![
            NodeSet::from([0, 1]), // {A,B}
            NodeSet::from([1]),    // {B}
            NodeSet::from([1, 2]), // {B,C}
        ];
        expected.sort();
        assert_eq!(edges, expected);
    }

    #[test]
    fn colored_q0_includes_free_singletons() {
        // color(Q0) adds singleton hyperedges {A},{B},{C}; those are covered
        // by {A,B,C} and must appear in the frontier hypergraph.
        let mut g = q0();
        for v in [0, 1, 2] {
            g.add_edge(NodeSet::singleton(v));
        }
        let fh = frontier_hypergraph(&g, &[0, 1, 2].into());
        for v in [0u32, 1, 2] {
            assert!(
                fh.edges().contains(&NodeSet::singleton(v)),
                "singleton {{{v}}} missing"
            );
        }
    }

    #[test]
    fn example_6_5_pseudo_free_d_shrinks_frontier() {
        // With W̄ = {A,B,C,D}: components {E}, {I}, {F,G,H}.
        // Fr(E)={B}, Fr(I)={A,B}, Fr(F/G/H)={D}; edges within W̄: {B,D},{C,D}.
        // Figure 5(b): all frontier edges are subsets of original hyperedges.
        let g = q0();
        let wbar: NodeSet = [0, 1, 2, 3].into();
        let fh = frontier_hypergraph(&g, &wbar);
        let mut edges: Vec<NodeSet> = fh.edges().to_vec();
        edges.sort();
        let mut expected = vec![
            NodeSet::from([0, 1]), // {A,B}
            NodeSet::from([1]),    // {B}
            NodeSet::from([1, 3]), // {B,D}
            NodeSet::from([2, 3]), // {C,D}
            NodeSet::from([3]),    // {D}
        ];
        expected.sort();
        assert_eq!(edges, expected);
        // The key consequence in the paper: the original hypergraph covers
        // this frontier hypergraph, so no extra constraint is needed.
        assert!(fh.covered_by(&g));
        // ...whereas with W̄ = {A,B,C} it does not ({B,C} is not covered).
        let fh_free = frontier_hypergraph(&g, &[0, 1, 2].into());
        assert!(!fh_free.covered_by(&g));
    }

    #[test]
    fn same_component_nodes_share_frontier() {
        let g = q0();
        let wbar: NodeSet = [0, 1, 2].into();
        for y in [3u32, 5, 6, 7] {
            assert_eq!(frontier_of(&g, y, &wbar), [1, 2].into(), "node {y}");
        }
    }

    #[test]
    fn frontier_hypergraph_nodes_include_wbar() {
        let g = h(&[&[0, 1]]);
        let fh = frontier_hypergraph(&g, &[5].into());
        assert!(fh.nodes().contains(5));
        assert!(fh.nodes().contains(0));
    }
}
