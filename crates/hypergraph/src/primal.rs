//! Primal (Gaifman) graphs and small exact graph algorithms.
//!
//! The quantified star size of Appendix A is the size of a maximum
//! independent set inside a frontier, measured in the primal graph of the
//! query; the Section 5 hardness machinery manipulates `graph(Q)`. Queries
//! are small, so exact branch-and-bound is the right tool here.

use crate::{Hypergraph, Node, NodeSet};

/// The primal graph of a hypergraph: nodes are the hypergraph's nodes, and
/// two nodes are adjacent iff some hyperedge contains both.
#[derive(Clone, Debug)]
pub struct PrimalGraph {
    nodes: NodeSet,
    /// Dense adjacency indexed by node id.
    adj: Vec<NodeSet>,
}

impl PrimalGraph {
    /// Builds the primal graph of `h`.
    pub fn of(h: &Hypergraph) -> PrimalGraph {
        let max = h.nodes().iter().max().map_or(0, |m| m as usize + 1);
        let mut adj = vec![NodeSet::new(); max];
        for e in h.edges() {
            for u in e.iter() {
                let mut others = e.clone();
                others.remove(u);
                adj[u as usize].union_with(&others);
            }
        }
        PrimalGraph {
            nodes: h.nodes().clone(),
            adj,
        }
    }

    /// The node set.
    pub fn nodes(&self) -> &NodeSet {
        &self.nodes
    }

    /// Neighbours of `v`.
    pub fn neighbours(&self, v: Node) -> &NodeSet {
        &self.adj[v as usize]
    }

    /// Returns `true` iff `u` and `v` are adjacent.
    pub fn adjacent(&self, u: Node, v: Node) -> bool {
        self.adj.get(u as usize).is_some_and(|n| n.contains(v))
    }

    /// Returns `true` iff `set` is a clique.
    pub fn is_clique(&self, set: &NodeSet) -> bool {
        let vs = set.to_vec();
        vs.iter()
            .enumerate()
            .all(|(i, &u)| vs[i + 1..].iter().all(|&v| self.adjacent(u, v)))
    }

    /// Returns `true` iff `set` is an independent set.
    pub fn is_independent(&self, set: &NodeSet) -> bool {
        set.iter().all(|u| !self.adj[u as usize].intersects(set))
    }

    /// Size of a maximum independent set within `candidates`, by
    /// branch-and-bound (exact; exponential in `|candidates|`, which is a
    /// frontier of a fixed query in our use).
    pub fn max_independent_set(&self, candidates: &NodeSet) -> usize {
        fn bb(g: &PrimalGraph, remaining: NodeSet, current: usize, best: &mut usize) {
            if current + remaining.len() <= *best {
                return; // cannot beat the incumbent
            }
            let Some(v) = remaining.first() else {
                *best = (*best).max(current);
                return;
            };
            // Branch 1: take v (drop v and its neighbours).
            let mut without_v_and_nbrs = remaining.clone();
            without_v_and_nbrs.remove(v);
            let taken = without_v_and_nbrs.difference(&g.adj[v as usize]);
            bb(g, taken, current + 1, best);
            // Branch 2: skip v.
            let mut skip = remaining;
            skip.remove(v);
            bb(g, skip, current, best);
        }
        let mut best = 0;
        bb(self, candidates.clone(), 0, &mut best);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(edges: &[&[Node]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    #[test]
    fn adjacency_from_hyperedges() {
        let g = PrimalGraph::of(&h(&[&[0, 1, 2], &[2, 3]]));
        assert!(g.adjacent(0, 1));
        assert!(g.adjacent(0, 2));
        assert!(g.adjacent(2, 3));
        assert!(!g.adjacent(0, 3));
        assert!(!g.adjacent(1, 3));
    }

    #[test]
    fn hyperedges_become_cliques() {
        let g = PrimalGraph::of(&h(&[&[0, 1, 2, 3]]));
        assert!(g.is_clique(&[0, 1, 2, 3].into()));
        assert!(g.is_clique(&[1, 3].into()));
        assert!(g.is_clique(&NodeSet::new()));
    }

    #[test]
    fn independence() {
        let g = PrimalGraph::of(&h(&[&[0, 1], &[1, 2], &[2, 3]]));
        assert!(g.is_independent(&[0, 2].into()));
        assert!(g.is_independent(&[0, 3].into()));
        assert!(!g.is_independent(&[0, 1].into()));
    }

    #[test]
    fn mis_on_path() {
        // Path 0-1-2-3-4: MIS = {0,2,4}, size 3.
        let g = PrimalGraph::of(&h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 4]]));
        assert_eq!(g.max_independent_set(g.nodes()), 3);
    }

    #[test]
    fn mis_on_clique_is_one() {
        let g = PrimalGraph::of(&h(&[&[0, 1, 2, 3, 4]]));
        assert_eq!(g.max_independent_set(g.nodes()), 1);
    }

    #[test]
    fn mis_restricted_to_candidates() {
        let g = PrimalGraph::of(&h(&[&[0, 1], &[1, 2], &[2, 3], &[3, 4]]));
        // Only 1 and 3 allowed: they are non-adjacent, so MIS = 2.
        assert_eq!(g.max_independent_set(&[1, 3].into()), 2);
        assert_eq!(g.max_independent_set(&NodeSet::new()), 0);
    }

    #[test]
    fn mis_on_two_triangles() {
        let g = PrimalGraph::of(&h(&[&[0, 1, 2], &[3, 4, 5]]));
        assert_eq!(g.max_independent_set(g.nodes()), 2);
    }
}
