//! A compact, normalized bitset over node ids.

use crate::Node;
use std::fmt;

/// A set of nodes backed by 64-bit blocks.
///
/// The representation is normalized (no trailing zero blocks), so equality
/// and hashing are structural. All set operations are linear in the number
/// of blocks, which is tiny for query-sized node universes.
///
/// ```
/// use cqcount_hypergraph::NodeSet;
/// let a: NodeSet = [1, 3, 5].into_iter().collect();
/// let b: NodeSet = [3, 5, 9].into_iter().collect();
/// assert_eq!(a.intersection(&b), [3, 5].into_iter().collect());
/// assert!(a.intersection(&b).is_subset(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct NodeSet {
    blocks: Vec<u64>,
}

impl NodeSet {
    /// The empty set.
    pub fn new() -> NodeSet {
        NodeSet { blocks: Vec::new() }
    }

    /// The set `{0, 1, ..., n-1}`.
    pub fn full(n: u32) -> NodeSet {
        let mut s = NodeSet::new();
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Builds a set from a single node.
    pub fn singleton(node: Node) -> NodeSet {
        let mut s = NodeSet::new();
        s.insert(node);
        s
    }

    fn normalize(&mut self) {
        while self.blocks.last() == Some(&0) {
            self.blocks.pop();
        }
    }

    /// Inserts a node; returns `true` if it was not already present.
    pub fn insert(&mut self, node: Node) -> bool {
        let (b, bit) = (node as usize / 64, node as usize % 64);
        if b >= self.blocks.len() {
            self.blocks.resize(b + 1, 0);
        }
        let fresh = self.blocks[b] & (1 << bit) == 0;
        self.blocks[b] |= 1 << bit;
        fresh
    }

    /// Removes a node; returns `true` if it was present.
    pub fn remove(&mut self, node: Node) -> bool {
        let (b, bit) = (node as usize / 64, node as usize % 64);
        if b >= self.blocks.len() {
            return false;
        }
        let present = self.blocks[b] & (1 << bit) != 0;
        self.blocks[b] &= !(1 << bit);
        self.normalize();
        present
    }

    /// Membership test.
    pub fn contains(&self, node: Node) -> bool {
        let (b, bit) = (node as usize / 64, node as usize % 64);
        self.blocks.get(b).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Set union.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let (long, short) = if self.blocks.len() >= other.blocks.len() {
            (&self.blocks, &other.blocks)
        } else {
            (&other.blocks, &self.blocks)
        };
        let mut blocks = long.clone();
        for (i, w) in short.iter().enumerate() {
            blocks[i] |= w;
        }
        NodeSet { blocks }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (i, w) in other.blocks.iter().enumerate() {
            self.blocks[i] |= w;
        }
    }

    /// Empties the set, keeping its allocation for reuse.
    pub fn clear(&mut self) {
        self.blocks.clear();
    }

    /// Replaces the contents with a copy of `other`, reusing the
    /// allocation.
    pub fn copy_from(&mut self, other: &NodeSet) {
        self.blocks.clear();
        self.blocks.extend_from_slice(&other.blocks);
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        self.blocks.truncate(other.blocks.len());
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
        self.normalize();
    }

    /// In-place difference `self \ other`.
    pub fn difference_with(&mut self, other: &NodeSet) {
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
        self.normalize();
    }

    /// Returns `true` iff `self ⊆ a ∩ b`, without materializing the
    /// intersection.
    pub fn subset_of_intersection(&self, a: &NodeSet, b: &NodeSet) -> bool {
        self.blocks.iter().enumerate().all(|(i, w)| {
            let ab = a.blocks.get(i).unwrap_or(&0) & b.blocks.get(i).unwrap_or(&0);
            w & !ab == 0
        })
    }

    /// Set intersection.
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let n = self.blocks.len().min(other.blocks.len());
        let mut blocks: Vec<u64> = (0..n).map(|i| self.blocks[i] & other.blocks[i]).collect();
        while blocks.last() == Some(&0) {
            blocks.pop();
        }
        NodeSet { blocks }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut blocks = self.blocks.clone();
        for (i, w) in other.blocks.iter().enumerate().take(blocks.len()) {
            blocks[i] &= !w;
        }
        while blocks.last() == Some(&0) {
            blocks.pop();
        }
        NodeSet { blocks }
    }

    /// Returns `true` iff `self ⊆ other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        if self.blocks.len() > other.blocks.len() {
            return false;
        }
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Returns `true` iff the sets share at least one node.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Iterates over the nodes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Node> + '_ {
        self.blocks.iter().enumerate().flat_map(|(i, &block)| {
            let mut w = block;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros();
                    w &= w - 1;
                    Some(i as u32 * 64 + bit)
                }
            })
        })
    }

    /// The smallest node, if any.
    pub fn first(&self) -> Option<Node> {
        self.iter().next()
    }

    /// Collects the nodes into a sorted vector.
    pub fn to_vec(&self) -> Vec<Node> {
        self.iter().collect()
    }
}

impl FromIterator<Node> for NodeSet {
    fn from_iter<I: IntoIterator<Item = Node>>(iter: I) -> NodeSet {
        let mut s = NodeSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl<const N: usize> From<[Node; N]> for NodeSet {
    fn from(nodes: [Node; N]) -> NodeSet {
        nodes.into_iter().collect()
    }
}

impl From<&[Node]> for NodeSet {
    fn from(nodes: &[Node]) -> NodeSet {
        nodes.iter().copied().collect()
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(s.insert(200)); // multi-block
        assert_eq!(s.len(), 2);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.contains(200));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn normalization_makes_eq_structural() {
        let mut a = NodeSet::new();
        a.insert(300);
        a.remove(300);
        assert_eq!(a, NodeSet::new());
        assert!(a.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a: NodeSet = [0, 1, 64, 128].into();
        let b: NodeSet = [1, 64, 200].into();
        assert_eq!(a.union(&b), [0, 1, 64, 128, 200].into());
        assert_eq!(a.intersection(&b), [1, 64].into());
        assert_eq!(a.difference(&b), [0, 128].into());
        assert_eq!(b.difference(&a), [200].into());
        assert!(a.intersection(&b).is_subset(&a));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&NodeSet::singleton(7)));
    }

    #[test]
    fn in_place_ops_match_allocating_ops() {
        let a: NodeSet = [0, 1, 64, 128].into();
        let b: NodeSet = [1, 64, 200].into();
        let mut x = a.clone();
        x.intersect_with(&b);
        assert_eq!(x, a.intersection(&b));
        let mut y = a.clone();
        y.difference_with(&b);
        assert_eq!(y, a.difference(&b));
        // Normalization survives in-place edits: high blocks zeroed out.
        let mut z: NodeSet = [300].into();
        z.intersect_with(&[1].into());
        assert!(z.is_empty());
        let mut w: NodeSet = [300].into();
        w.difference_with(&[300].into());
        assert_eq!(w, NodeSet::new());
        let mut c = NodeSet::new();
        c.copy_from(&a);
        assert_eq!(c, a);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn subset_of_intersection_matches_materialized() {
        let a: NodeSet = [0, 1, 64, 128].into();
        let b: NodeSet = [1, 64, 200].into();
        for probe in [
            NodeSet::from([1, 64]),
            NodeSet::from([1]),
            NodeSet::from([1, 200]),
            NodeSet::from([300]),
            NodeSet::new(),
        ] {
            assert_eq!(
                probe.subset_of_intersection(&a, &b),
                probe.is_subset(&a.intersection(&b)),
                "{probe:?}"
            );
        }
    }

    #[test]
    fn subset_with_different_lengths() {
        let small: NodeSet = [1, 2].into();
        let big: NodeSet = [1, 2, 500].into();
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
        assert!(NodeSet::new().is_subset(&small));
        assert!(small.is_subset(&small));
    }

    #[test]
    fn iteration_is_sorted() {
        let s: NodeSet = [128, 5, 63, 64, 0].into();
        assert_eq!(s.to_vec(), vec![0, 5, 63, 64, 128]);
        assert_eq!(s.first(), Some(0));
        assert_eq!(NodeSet::new().first(), None);
    }

    #[test]
    fn full_set() {
        let s = NodeSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(0) && s.contains(69) && !s.contains(70));
    }

    #[test]
    fn union_with_grows() {
        let mut a: NodeSet = [1].into();
        a.union_with(&[300].into());
        assert_eq!(a, [1, 300].into());
    }
}
