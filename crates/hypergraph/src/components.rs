//! `[W̄]`-components (Section 3.1).
//!
//! Two nodes are `[W̄]`-adjacent if some hyperedge contains both of them
//! outside `W̄`; `[W̄]`-components are the maximal `[W̄]`-connected sets of
//! nodes not in `W̄`. They partition the existential variables when
//! `W̄ = free(Q)` and each component has a unique frontier (Theorem 3.7).

use crate::{Hypergraph, Node, NodeSet};

/// A `[W̄]`-component of a hypergraph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WComponent {
    /// The nodes of the component (all outside `W̄`).
    pub nodes: NodeSet,
    /// Indices (into the source hypergraph's edge list) of the edges with at
    /// least one node in the component — the `edges(C)` of Section 3.1.
    pub touching_edges: Vec<usize>,
}

impl WComponent {
    /// `nodes(edges(C))`: union of all edges touching the component.
    pub fn edge_nodes(&self, h: &Hypergraph) -> NodeSet {
        let mut out = NodeSet::new();
        for &i in &self.touching_edges {
            out.union_with(&h.edges()[i]);
        }
        out
    }
}

/// Computes all `[wbar]`-components of `h`.
///
/// The result is deterministic: components are sorted by their minimum node.
pub fn w_components(h: &Hypergraph, wbar: &NodeSet) -> Vec<WComponent> {
    let outside: Vec<Node> = h.nodes().difference(wbar).to_vec();
    if outside.is_empty() {
        return vec![];
    }
    let index_of = |n: Node| outside.binary_search(&n).expect("node is outside wbar");

    let mut uf: Vec<usize> = (0..outside.len()).collect();
    fn find(uf: &mut [usize], mut x: usize) -> usize {
        while uf[x] != x {
            uf[x] = uf[uf[x]];
            x = uf[x];
        }
        x
    }

    for e in h.edges() {
        let visible = e.difference(wbar);
        let mut it = visible.iter();
        if let Some(first) = it.next() {
            let fr = find(&mut uf, index_of(first));
            for other in it {
                let or = find(&mut uf, index_of(other));
                uf[or] = fr;
            }
        }
    }

    // Collect classes in order of the representative's minimum node.
    let mut comps: Vec<(Node, NodeSet)> = Vec::new();
    let mut class_of = std::collections::HashMap::new();
    for (i, &node) in outside.iter().enumerate() {
        let root = find(&mut uf, i);
        let idx = *class_of.entry(root).or_insert_with(|| {
            comps.push((node, NodeSet::new()));
            comps.len() - 1
        });
        comps[idx].1.insert(node);
    }
    comps.sort_by_key(|&(min, _)| min);

    comps
        .into_iter()
        .map(|(_, nodes)| {
            let touching_edges = (0..h.num_edges())
                .filter(|&i| h.edges()[i].intersects(&nodes))
                .collect();
            WComponent {
                nodes,
                touching_edges,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(edges: &[&[Node]]) -> Hypergraph {
        Hypergraph::from_edges(edges.iter().map(|e| e.iter().copied()))
    }

    /// The running example Q0 of the paper (Example 1.1) with the node ids
    /// A=0, B=1, C=2, D=3, E=4, F=5, G=6, H=7, I=8.
    fn q0() -> Hypergraph {
        h(&[
            &[0, 1, 8], // mw(A,B,I)
            &[1, 3],    // wt(B,D)
            &[1, 4],    // wi(B,E)
            &[2, 3],    // pt(C,D)
            &[3, 5],    // st(D,F)
            &[3, 6],    // st(D,G)
            &[6, 7],    // rr(G,H)
            &[5, 7],    // rr(F,H)
            &[3, 7],    // rr(D,H)
        ])
    }

    #[test]
    fn q0_free_components_match_paper() {
        // Removing {A,B,C} splits Q0 into {I}, {E} and {D,F,G,H} (Sec. 1.2).
        let comps = w_components(&q0(), &[0, 1, 2].into());
        let node_sets: Vec<NodeSet> = comps.iter().map(|c| c.nodes.clone()).collect();
        assert_eq!(
            node_sets,
            vec![
                [3, 5, 6, 7].into(), // {D,F,G,H}
                [4].into(),          // {E}
                [8].into(),          // {I}
            ]
        );
    }

    #[test]
    fn q0_example_3_2_component_of_a() {
        // [{D,E,G}]-component of A is {A,B,I}, with edges mw, wt, wi touching.
        let comps = w_components(&q0(), &[3, 4, 6].into());
        let a_comp = comps
            .iter()
            .find(|c| c.nodes.contains(0))
            .expect("component containing A");
        assert_eq!(a_comp.nodes, [0, 1, 8].into());
        assert_eq!(a_comp.touching_edges, vec![0, 1, 2]);
        assert_eq!(a_comp.edge_nodes(&q0()), [0, 1, 3, 4, 8].into());
    }

    #[test]
    fn empty_wbar_gives_hypergraph_components() {
        let g = h(&[&[0, 1], &[2, 3]]);
        let comps = w_components(&g, &NodeSet::new());
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].nodes, [0, 1].into());
        assert_eq!(comps[1].nodes, [2, 3].into());
    }

    #[test]
    fn all_nodes_in_wbar_gives_no_components() {
        let g = h(&[&[0, 1]]);
        assert!(w_components(&g, &[0, 1].into()).is_empty());
    }

    #[test]
    fn components_partition_outside_nodes() {
        let g = q0();
        let wbar: NodeSet = [1, 3].into();
        let comps = w_components(&g, &wbar);
        let mut seen = NodeSet::new();
        for c in &comps {
            assert!(!c.nodes.intersects(&seen), "components must be disjoint");
            assert!(!c.nodes.intersects(&wbar), "components avoid wbar");
            seen.union_with(&c.nodes);
        }
        assert_eq!(seen, g.nodes().difference(&wbar));
    }

    #[test]
    fn isolated_node_forms_own_component() {
        let mut g = h(&[&[0, 1]]);
        g.add_node(9);
        let comps = w_components(&g, &NodeSet::new());
        assert!(comps.iter().any(|c| c.nodes == [9].into()));
    }
}
