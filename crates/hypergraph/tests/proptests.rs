//! Property tests for the hypergraph toolkit, generated with the workspace
//! PRNG from fixed seeds; `exhaustive-tests` raises the case count.

use cqcount_arith::prng::Rng;
use cqcount_hypergraph::{
    frontier_hypergraph, frontier_of, is_acyclic, join_forest, w_components, Hypergraph, NodeSet,
};

const CASES: usize = if cfg!(feature = "exhaustive-tests") {
    2048
} else {
    256
};

fn arb_hypergraph(rng: &mut Rng) -> Hypergraph {
    // Up to 8 nodes, up to 8 edges of size 1..4.
    let edges = rng.range_usize(0, 8);
    Hypergraph::from_edges((0..edges).map(|_| {
        let size = rng.range_usize(1, 4);
        (0..size).map(|_| rng.range_u32(0, 8)).collect::<Vec<_>>()
    }))
}

fn arb_nodeset(rng: &mut Rng) -> NodeSet {
    let size = rng.range_usize(0, 6);
    (0..size).map(|_| rng.range_u32(0, 8)).collect()
}

/// GYO reduction and the spanning-forest join-tree construction are two
/// independent acyclicity deciders; they must always agree.
#[test]
fn gyo_agrees_with_join_forest() {
    let mut rng = Rng::seed_from_u64(0x21);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let gyo = is_acyclic(&h);
        let forest = join_forest(&h);
        assert_eq!(gyo, forest.is_some());
        if let Some(f) = forest {
            assert!(f.verify(&h));
        }
    }
}

/// Reduction preserves acyclicity.
#[test]
fn reduction_preserves_acyclicity() {
    let mut rng = Rng::seed_from_u64(0x22);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        assert_eq!(is_acyclic(&h), is_acyclic(&h.reduced()));
    }
}

/// Reduction preserves the covers relation in both directions.
#[test]
fn reduction_preserves_covering() {
    let mut rng = Rng::seed_from_u64(0x23);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let r = h.reduced();
        assert!(h.covered_by(&r));
        assert!(r.covered_by(&h));
    }
}

/// [W̄]-components partition the nodes outside W̄.
#[test]
fn components_partition() {
    let mut rng = Rng::seed_from_u64(0x24);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let wbar = arb_nodeset(&mut rng);
        let comps = w_components(&h, &wbar);
        let mut seen = NodeSet::new();
        for c in &comps {
            assert!(!c.nodes.is_empty());
            assert!(!c.nodes.intersects(&wbar));
            assert!(!c.nodes.intersects(&seen));
            seen.union_with(&c.nodes);
        }
        assert_eq!(seen, h.nodes().difference(&wbar));
    }
}

/// All nodes of one [W̄]-component share the same frontier, and the
/// frontier is always a subset of W̄.
#[test]
fn frontier_constant_on_components() {
    let mut rng = Rng::seed_from_u64(0x25);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let wbar = arb_nodeset(&mut rng);
        for c in w_components(&h, &wbar) {
            let mut iter = c.nodes.iter();
            let first = frontier_of(&h, iter.next().unwrap(), &wbar);
            assert!(first.is_subset(&wbar));
            for y in iter {
                assert_eq!(frontier_of(&h, y, &wbar), first.clone());
            }
        }
    }
}

/// Every hyperedge of the frontier hypergraph is a subset of W̄, and the
/// frontier hypergraph of W̄ = all nodes is exactly the sub-W̄ edges.
#[test]
fn frontier_hypergraph_edges_in_wbar() {
    let mut rng = Rng::seed_from_u64(0x26);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let wbar = arb_nodeset(&mut rng);
        let fh = frontier_hypergraph(&h, &wbar);
        for e in fh.edges() {
            assert!(e.is_subset(&wbar));
        }
    }
}

/// With every node free there are no existential components, so the
/// frontier hypergraph is the (deduplicated) original edge set.
#[test]
fn frontier_hypergraph_all_free() {
    let mut rng = Rng::seed_from_u64(0x27);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let fh = frontier_hypergraph(&h, h.nodes());
        assert!(fh.covered_by(&h));
        assert!(h.covered_by(&fh) || h.num_edges() == 0);
    }
}

/// Enlarging W̄ (Section 6 intuition: promoting existential variables to
/// pseudo-free) never enlarges another node's frontier beyond W̄ — more
/// precisely, frontiers w.r.t. a larger W̄' restricted to the old W̄ are
/// contained in the old frontier.
#[test]
fn growing_wbar_shrinks_restricted_frontiers() {
    let mut rng = Rng::seed_from_u64(0x28);
    for _ in 0..CASES {
        let h = arb_hypergraph(&mut rng);
        let wbar = arb_nodeset(&mut rng);
        let extra = arb_nodeset(&mut rng);
        let bigger = wbar.union(&extra);
        for y in h.nodes().difference(&bigger).iter() {
            let old = frontier_of(&h, y, &wbar);
            let new = frontier_of(&h, y, &bigger);
            assert!(new.intersection(&wbar).is_subset(&old));
        }
    }
}

/// covers is reflexive and transitive on the generated instances.
#[test]
fn covers_preorder() {
    let mut rng = Rng::seed_from_u64(0x29);
    for _ in 0..CASES {
        let a = arb_hypergraph(&mut rng);
        let b = arb_hypergraph(&mut rng);
        let c = arb_hypergraph(&mut rng);
        assert!(a.covered_by(&a));
        if a.covered_by(&b) && b.covered_by(&c) {
            assert!(a.covered_by(&c));
        }
    }
}
