//! Property tests for the hypergraph toolkit.

use cqcount_hypergraph::{
    frontier_hypergraph, frontier_of, is_acyclic, join_forest, w_components, Hypergraph, NodeSet,
};
use proptest::prelude::*;

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    // Up to 8 nodes, up to 8 edges of size 1..4.
    proptest::collection::vec(proptest::collection::vec(0u32..8, 1..4), 0..8)
        .prop_map(Hypergraph::from_edges)
}

fn arb_nodeset() -> impl Strategy<Value = NodeSet> {
    proptest::collection::vec(0u32..8, 0..6).prop_map(|v| v.into_iter().collect())
}

proptest! {
    /// GYO reduction and the spanning-forest join-tree construction are two
    /// independent acyclicity deciders; they must always agree.
    #[test]
    fn gyo_agrees_with_join_forest(h in arb_hypergraph()) {
        let gyo = is_acyclic(&h);
        let forest = join_forest(&h);
        prop_assert_eq!(gyo, forest.is_some());
        if let Some(f) = forest {
            prop_assert!(f.verify(&h));
        }
    }

    /// Reduction preserves acyclicity.
    #[test]
    fn reduction_preserves_acyclicity(h in arb_hypergraph()) {
        prop_assert_eq!(is_acyclic(&h), is_acyclic(&h.reduced()));
    }

    /// Reduction preserves the covers relation in both directions.
    #[test]
    fn reduction_preserves_covering(h in arb_hypergraph()) {
        let r = h.reduced();
        prop_assert!(h.covered_by(&r));
        prop_assert!(r.covered_by(&h));
    }

    /// [W̄]-components partition the nodes outside W̄.
    #[test]
    fn components_partition(h in arb_hypergraph(), wbar in arb_nodeset()) {
        let comps = w_components(&h, &wbar);
        let mut seen = NodeSet::new();
        for c in &comps {
            prop_assert!(!c.nodes.is_empty());
            prop_assert!(!c.nodes.intersects(&wbar));
            prop_assert!(!c.nodes.intersects(&seen));
            seen.union_with(&c.nodes);
        }
        prop_assert_eq!(seen, h.nodes().difference(&wbar));
    }

    /// All nodes of one [W̄]-component share the same frontier, and the
    /// frontier is always a subset of W̄.
    #[test]
    fn frontier_constant_on_components(h in arb_hypergraph(), wbar in arb_nodeset()) {
        for c in w_components(&h, &wbar) {
            let mut iter = c.nodes.iter();
            let first = frontier_of(&h, iter.next().unwrap(), &wbar);
            prop_assert!(first.is_subset(&wbar));
            for y in iter {
                prop_assert_eq!(frontier_of(&h, y, &wbar), first.clone());
            }
        }
    }

    /// Every hyperedge of the frontier hypergraph is a subset of W̄, and the
    /// frontier hypergraph of W̄ = all nodes is exactly the sub-W̄ edges.
    #[test]
    fn frontier_hypergraph_edges_in_wbar(h in arb_hypergraph(), wbar in arb_nodeset()) {
        let fh = frontier_hypergraph(&h, &wbar);
        for e in fh.edges() {
            prop_assert!(e.is_subset(&wbar));
        }
    }

    /// With every node free there are no existential components, so the
    /// frontier hypergraph is the (deduplicated) original edge set.
    #[test]
    fn frontier_hypergraph_all_free(h in arb_hypergraph()) {
        let fh = frontier_hypergraph(&h, h.nodes());
        prop_assert!(fh.covered_by(&h));
        prop_assert!(h.covered_by(&fh) || h.num_edges() == 0);
    }

    /// Enlarging W̄ (Section 6 intuition: promoting existential variables to
    /// pseudo-free) never enlarges another node's frontier beyond W̄ — more
    /// precisely, frontiers w.r.t. a larger W̄' restricted to the old W̄ are
    /// contained in the old frontier.
    #[test]
    fn growing_wbar_shrinks_restricted_frontiers(
        h in arb_hypergraph(),
        wbar in arb_nodeset(),
        extra in arb_nodeset(),
    ) {
        let bigger = wbar.union(&extra);
        for y in h.nodes().difference(&bigger).iter() {
            let old = frontier_of(&h, y, &wbar);
            let new = frontier_of(&h, y, &bigger);
            prop_assert!(new.intersection(&wbar).is_subset(&old));
        }
    }

    /// covers is reflexive and transitive on the generated instances.
    #[test]
    fn covers_preorder(a in arb_hypergraph(), b in arb_hypergraph(), c in arb_hypergraph()) {
        prop_assert!(a.covered_by(&a));
        if a.covered_by(&b) && b.covered_by(&c) {
            prop_assert!(a.covered_by(&c));
        }
    }
}
