//! Hybrid decompositions in action (Section 6, Example 6.3/6.5).
//!
//! The family Q̄2ʰ has *no* bounded #-hypertree width — the frontier of the
//! existential variables is a clique on all h+1 free variables — so the
//! purely structural method needs width h+1 and the textbook algorithms
//! blow up. But the data has keys: every answer extends uniquely to the
//! Y-variables. Promoting them to pseudo-free (S̄ = free ∪ {Y₀..Yₕ})
//! yields a width-2 #₁-hypertree decomposition, and counting becomes
//! polynomial (Theorems 6.6/6.7).
//!
//! Run with: `cargo run --release --example hybrid_keys [h]`

use cqcount::prelude::*;
use cqcount::workloads::paper::{hybrid_database, hybrid_expected_count, hybrid_query};
use std::time::Instant;

fn main() {
    let h: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let q = hybrid_query(h);
    let db = hybrid_database(h);
    println!(
        "Q̄2^{h}: {} atoms, m = 2^{h} = {}",
        q.atoms().len(),
        1u64 << h
    );
    println!("database: {} tuples\n", db.total_tuples());

    // The purely structural view: the #-hypertree width equals h+1.
    let t0 = Instant::now();
    let sharp_w = sharp_hypertree_width(&q, h + 1);
    println!(
        "#-hypertree width: {:?} (search took {:?}) — grows with h: no bounded-width class",
        sharp_w,
        t0.elapsed()
    );

    // The hybrid view: width 2 with degree bound 1.
    let t0 = Instant::now();
    let hd = hybrid_decomposition(&q, &db, 2, usize::MAX).expect("hybrid width 2 exists");
    let t_search = t0.elapsed();
    let promoted: Vec<&str> = hd
        .sbar
        .iter()
        .filter(|v| !q.free().contains(v))
        .map(|v| q.var_name(*v))
        .collect();
    println!(
        "hybrid: width {} with S̄ = free ∪ {{{}}}, degree bound {} (search {:?})",
        hd.sharp.width,
        promoted.join(", "),
        hd.bound,
        t_search
    );

    let t0 = Instant::now();
    let n = count_hybrid_with_report(&q, &db, &hd);
    let t_count = t0.elapsed();
    println!("\nhybrid count:  {n} in {t_count:?}");

    let t0 = Instant::now();
    let nb = count_brute_force(&q, &db);
    let t_brute = t0.elapsed();
    println!("brute force:   {nb} in {t_brute:?}");

    assert_eq!(n, nb);
    assert_eq!(n, hybrid_expected_count(h).into());
    println!("\nexpected 2^{h} = {} answers ✓", hybrid_expected_count(h));
}

fn count_hybrid_with_report(
    q: &ConjunctiveQuery,
    db: &Database,
    hd: &cqcount::core::hybrid::HybridDecomposition,
) -> Natural {
    cqcount::core::hybrid::count_hybrid_with(q, db, hd)
}
