//! The Section 5 hardness direction, executed: counting k-cliques of a
//! random graph through the `#Clique → #CQ` reduction, cross-checked
//! against direct clique counting — and a timing sweep showing the cost
//! growing with k (the W[1] frontier).
//!
//! Run with: `cargo run --release --example clique_reduction [n] [p]`

use cqcount::prelude::*;
use cqcount::reductions::count_cliques_via_cq_with;
use cqcount::workloads::graphs::{count_cliques_direct, random_graph};
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let p: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.4);
    let g = random_graph(n, p, 2026);
    println!("G(n = {n}, p = {p}): {} edges\n", g.edges.len());
    println!(
        "{:>3} {:>14} {:>14} {:>12} {:>12}",
        "k", "#cliques", "via #CQ", "t_direct", "t_reduction"
    );

    for k in 2..=5 {
        let t0 = Instant::now();
        let direct = count_cliques_direct(&g, k);
        let t_direct = t0.elapsed();

        let t0 = Instant::now();
        let via_cq = count_cliques_via_cq_with(&g, k, count_brute_force);
        let t_red = t0.elapsed();

        assert_eq!(direct, via_cq, "reduction must agree at k = {k}");
        println!(
            "{k:>3} {:>14} {:>14} {:>12?} {:>12?}",
            direct, via_cq, t_direct, t_red
        );
    }

    // The structural reason this is the hard case: the clique query's
    // width grows with k.
    println!("\nclique-query widths (why this family is the hardness frontier):");
    for k in 2..=4 {
        let q = cqcount::workloads::graphs::clique_query(k);
        let report = WidthReport::analyze(&q, 4);
        println!(
            "  k = {k}: ghw = {}, #-htw = {}",
            report.ghw.map_or("> 4".into(), |w| w.to_string()),
            report
                .sharp_width
                .map_or("> 4".into(), |w: usize| w.to_string())
        );
    }
}
