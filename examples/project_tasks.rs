//! The introduction's scenario at realistic scale: machines, workers,
//! tasks, projects, subtasks and resources with the degree profile of
//! Example 1.5 (workers on few tasks, projects with few main tasks, but
//! wide subtask/resource fan-out).
//!
//! Counts the answer triples of Q0 with all applicable algorithms and
//! reports wall-clock times, demonstrating the headline claim: the
//! structural pipeline scales with the data while enumeration scales with
//! the number of embeddings.
//!
//! Run with: `cargo run --release --example project_tasks [scale]`

use cqcount::prelude::*;
use cqcount::workloads::intro::{intro_instance, IntroScale};
use std::time::Instant;

fn main() {
    let scale_factor: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let scale = IntroScale {
        workers: 25 * scale_factor,
        machines: 10 * scale_factor,
        projects: 6 * scale_factor,
        tasks: 15 * scale_factor,
        subtasks_per_task: 4,
        resources: 8 * scale_factor,
    };
    let (q, db) = intro_instance(&scale, 2026);
    println!(
        "instance: {} workers, {} machines, {} projects, {} tasks, {} tuples total\n",
        scale.workers,
        scale.machines,
        scale.projects,
        scale.tasks,
        db.total_tuples()
    );

    let t0 = Instant::now();
    let (n, sd) = count_via_sharp_decomposition(&q, &db, 3).expect("width 2");
    let t_pipeline = t0.elapsed();
    println!(
        "#-pipeline (width {}):   {:>10}   in {:?}",
        sd.width, n, t_pipeline
    );

    let t0 = Instant::now();
    let (nh, hd) = count_hybrid(&q, &db, 3, usize::MAX).expect("hybrid");
    let t_hybrid = t0.elapsed();
    println!(
        "hybrid (bound {}):       {:>10}   in {:?}",
        hd.bound, nh, t_hybrid
    );

    let t0 = Instant::now();
    let nb = count_brute_force(&q, &db);
    let t_brute = t0.elapsed();
    println!("brute force:            {nb:>10}   in {t_brute:?}");

    let t0 = Instant::now();
    let nj = count_via_full_join(&q, &db);
    let t_join = t0.elapsed();
    println!("full join + project:    {nj:>10}   in {t_join:?}");

    assert_eq!(n, nb);
    assert_eq!(nh, nb);
    assert_eq!(nj, nb);
    println!("\nall algorithms agree on {n} distinct ⟨machine, worker, project⟩ triples ✓");
}
