//! Quickstart: the paper's running example (Example 1.1) end to end.
//!
//! Builds the query Q0 over the machines/workers/projects schema, a small
//! database, and counts the answer triples ⟨machine, worker, project⟩ with
//! every algorithm in the library.
//!
//! Run with: `cargo run --example quickstart`

use cqcount::prelude::*;

fn main() {
    // The query of Example 1.1 — free variables A (machine), B (worker),
    // C (project); everything else is existential.
    let (q, db) = parse_program(
        "
        % machine-worker assignments (machine, worker, hours)
        mw(press, ada, 40).    mw(lathe, ada, 10).    mw(press, bo, 25).
        mw(drill, cy, 12).
        % worker-task assignments and worker info
        wt(ada, etl).  wt(bo, etl).  wt(cy, ui).
        wi(ada, senior). wi(bo, junior). wi(cy, junior).
        % projects and their tasks
        pt(atlas, etl). pt(atlas, ui). pt(borealis, etl).
        % subtasks and resource requirements
        st(etl, extract). st(etl, load). st(ui, wireframe).
        rr(extract, cluster). rr(load, cluster). rr(etl, cluster).
        rr(wireframe, figma). rr(ui, figma).
        % count distinct ⟨machine, worker, project⟩ triples
        ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D),
                        st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H).
        ",
    )
    .expect("valid program");
    let q = q.expect("program contains a rule");

    println!("query: {q}\n");

    // Structural analysis (Sections 3-4 of the paper).
    let report = WidthReport::analyze(&q, 3);
    println!("acyclic:             {}", report.acyclic);
    println!("ghw(H_Q):            {:?}", report.ghw);
    println!("#-hypertree width:   {:?}", report.sharp_width);
    println!("quantified star size: {}\n", report.star_size);

    // Count with the Theorem 1.3 pipeline, showing the decomposition.
    let (n, sd) = count_via_sharp_decomposition(&q, &db, 3).expect("Q0 has #-hypertree width 2");
    println!("answers (Theorem 1.3 pipeline, width {}): {n}", sd.width);
    println!(
        "core of color(Q0) kept {} of {} atoms (the redundant st/rr branch folds away)",
        sd.qprime.atoms().len(),
        q.atoms().len()
    );
    println!("frontier hyperedges: {}", sd.frontier);

    // Cross-check against every other algorithm.
    let brute = count_brute_force(&q, &db);
    let auto = count_auto(&q, &db);
    let (hybrid, hd) = count_hybrid(&q, &db, 3, usize::MAX).expect("hybrid applies");
    println!(
        "\nbrute force: {brute}   planner: {auto}   hybrid: {hybrid} (degree bound {})",
        hd.bound
    );
    assert_eq!(n, brute);
    assert_eq!(auto, brute);
    assert_eq!(hybrid, brute);
    println!("\nall algorithms agree ✓");
}
