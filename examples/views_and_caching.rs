//! The tree-projection framework with explicit views (Section 3,
//! Definition 1.4, Corollary 3.8): when materialized views / solved
//! subproblems are already available, counting can run *from the views
//! alone* — the paper's "broader framework" where structural decomposition
//! methods are just one way of generating resources.
//!
//! Run with: `cargo run --release --example views_and_caching`

use cqcount::core::views::{count_with_view_set, ViewSet};
use cqcount::prelude::*;
use std::time::Instant;

fn main() {
    // The star query: ans(X1, X2) :- r(Y, X1), s(Y, X2).
    // Acyclic, but its frontier {X1, X2} makes plain counting #P-hard as a
    // class (Pichler–Skritek); with a cached view over {Y, X1, X2} it
    // becomes #-covered and counting is easy.
    let (q, db) = parse_program(
        "
        r(y1, a). r(y1, b). r(y2, b). r(y2, c). r(y3, a).
        s(y1, u). s(y1, v). s(y2, v). s(y3, w).
        ans(X1, X2) :- r(Y, X1), s(Y, X2).
        ",
    )
    .unwrap();
    let q = q.unwrap();

    println!("query: {q}\n");

    // Only the query views: not #-covered (no view spans the frontier).
    let bare = ViewSet::for_query(&q);
    let bare_rels = bare.standard_extension(&q, &db);
    println!(
        "with query views only, #-covered: {}",
        count_with_view_set(&q, &bare, &bare_rels).is_some()
    );

    // Add a cached subproblem over {Y, X1, X2} (e.g. a materialized join).
    let mut vs = ViewSet::for_query(&q);
    let (y, x1, x2) = (
        q.find_var("Y").unwrap(),
        q.find_var("X1").unwrap(),
        q.find_var("X2").unwrap(),
    );
    vs.add_view("cache_yx1x2", vec![y, x1, x2]);
    let rels = vs.standard_extension(&q, &db);
    assert!(vs.is_legal(&q, &db, &rels), "standard extension is legal");

    let t0 = Instant::now();
    let (n, sd) = count_with_view_set(&q, &vs, &rels).expect("#-covered with the cache");
    println!(
        "with the cached view, #-covered: true (tree projection width {}), count = {n} in {:?}",
        sd.width,
        t0.elapsed()
    );

    let brute = count_brute_force(&q, &db);
    assert_eq!(n, brute);
    println!("brute force agrees: {brute} ✓");

    // The paper's point about legality: views may be *larger* than the
    // exact subproblem solutions (e.g. a stale cache with extra tuples) —
    // counting stays correct as long as they are not more restrictive.
    let mut padded = rels.clone();
    let extra = {
        let mut row = Vec::new();
        for (name, _) in [("y9", y), ("a", x1), ("w", x2)] {
            // values must exist in the db interner for display; intern fresh
            let _ = name;
            row.push(cqcount::relational::Value(999_000 + row.len() as u32));
        }
        row
    };
    let last = padded.len() - 1;
    let mut rows: Vec<Vec<cqcount::relational::Value>> =
        padded[last].rows().iter().map(|t| t.to_vec()).collect();
    rows.push(extra);
    padded[last] = Bindings::from_rows(padded[last].cols().to_vec(), rows);
    let (n2, _) = count_with_view_set(&q, &vs, &padded).unwrap();
    println!("with a padded (still legal) cache the count is unchanged: {n2} ✓");
    assert_eq!(n2, brute);
}
