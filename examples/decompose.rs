//! Structural analysis tool: parse a query (from a file, or the built-in
//! Q0), print its core, frontier hypergraph, widths and a `#`-hypertree
//! decomposition as an ASCII tree.
//!
//! Run with: `cargo run --example decompose [path/to/query.cq]`

use cqcount::prelude::*;
use std::fmt::Write as _;

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        }),
        None => "ans(A, B, C) :- mw(A, B, I), wt(B, D), wi(B, E), pt(C, D), \
                 st(D, F), st(D, G), rr(G, H), rr(F, H), rr(D, H)."
            .to_owned(),
    };
    let q = match parse_query(&src) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };

    println!("query: {q}");
    println!(
        "variables: {} ({} free), atoms: {}\n",
        q.vars_in_atoms().len(),
        q.free().len(),
        q.atoms().len()
    );

    let report = WidthReport::analyze(&q, 4);
    println!("α-acyclic:            {}", report.acyclic);
    println!("ghw (≤4 search):      {}", fmt_width(report.ghw));
    println!("#-hypertree width:    {}", fmt_width(report.sharp_width));
    println!("quantified star size: {}", report.star_size);
    if let Some((dm_w, star)) = count_free_dm(&q) {
        println!("Durand–Mengel width:  {dm_w} (star size {star})");
    }
    println!();

    let Some(sd) = (1..=4).find_map(|k| cqcount::core::sharp::sharp_hypertree_decomposition(&q, k))
    else {
        println!("no #-hypertree decomposition of width ≤ 4 found");
        return;
    };

    println!(
        "core of color(Q): kept {}/{} atoms → Q' = {}",
        sd.qprime.atoms().len(),
        q.atoms().len(),
        sd.qprime
    );
    println!(
        "frontier hypergraph FH(Q', free): {}",
        show_edges(&q, &sd.frontier)
    );
    println!("\nwidth-{} #-hypertree decomposition:", sd.width);
    print_tree(&q, &sd);
}

fn fmt_width(w: Option<usize>) -> String {
    w.map_or("> 4".to_owned(), |v| v.to_string())
}

fn count_free_dm(q: &ConjunctiveQuery) -> Option<(usize, usize)> {
    cqcount::core::durand_mengel::durand_mengel_width(q, 6)
}

fn show_edges(q: &ConjunctiveQuery, h: &Hypergraph) -> String {
    let mut out = String::from("{ ");
    for (i, e) in h.edges().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let names: Vec<&str> = e.iter().map(|n| q.var_name(Var(n))).collect();
        let _ = write!(out, "{{{}}}", names.join(","));
    }
    out.push_str(" }");
    out
}

fn print_tree(q: &ConjunctiveQuery, sd: &cqcount::core::sharp::SharpDecomposition) {
    let ht = &sd.hypertree;
    fn rec(
        q: &ConjunctiveQuery,
        sd: &cqcount::core::sharp::SharpDecomposition,
        v: usize,
        prefix: &str,
        last: bool,
    ) {
        let ht = &sd.hypertree;
        let bag: Vec<&str> = ht.chi[v].iter().map(|n| q.var_name(Var(n))).collect();
        let atoms: Vec<String> = ht.lambda[v]
            .iter()
            .map(|&a| {
                let atom = &sd.qprime.atoms()[a];
                let args: Vec<String> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => q.var_name(*v).to_owned(),
                        Term::Const(c) => c.clone(),
                    })
                    .collect();
                format!("{}({})", atom.rel, args.join(","))
            })
            .collect();
        let connector = if ht.parent[v].is_none() {
            ""
        } else if last {
            "└── "
        } else {
            "├── "
        };
        println!(
            "{prefix}{connector}χ = {{{}}}   λ = {{{}}}",
            bag.join(","),
            atoms.join(", ")
        );
        let child_prefix = if ht.parent[v].is_none() {
            String::new()
        } else {
            format!("{prefix}{}", if last { "    " } else { "│   " })
        };
        let kids = &ht.children[v];
        for (i, &c) in kids.iter().enumerate() {
            rec(q, sd, c, &child_prefix, i + 1 == kids.len());
        }
    }
    for &root in &ht.roots {
        rec(q, sd, root, "", true);
    }
}
